#include "src/sync/lock_registry.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "src/base/log.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

// Guards the registry's shared state. The per-thread held stack needs no lock.
std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

thread_local std::vector<LockClassId> t_held_stack;

// ---------------------------------------------------------------------------
// Validated-edge cache
// ---------------------------------------------------------------------------
// Once "held before acquired" has been checked against the class graph and
// found acyclic, the verdict never changes (edges are only ever added, and
// adding edges cannot make an existing edge newly safe or unsafe — a
// violating pair is never inserted). So each validated pair is remembered in
// a fixed-size lock-free open-addressed table; steady-state OnAcquire is a
// handful of relaxed loads and never touches RegistryMutex(). Violating
// pairs are deliberately NOT cached: every repetition must re-report.

constexpr size_t kEdgeCacheSlots = 1 << 13;  // 64 KiB of u64 slots
constexpr size_t kEdgeProbeLimit = 16;
static_assert((kEdgeCacheSlots & (kEdgeCacheSlots - 1)) == 0);

using EdgeCacheTable = std::array<std::atomic<uint64_t>, kEdgeCacheSlots>;

EdgeCacheTable& EdgeCache() {
  static EdgeCacheTable* cache = new EdgeCacheTable();  // zero-initialized
  return *cache;
}

// 0 is the empty-slot sentinel; +1 on both halves keeps real keys nonzero.
uint64_t EdgeKey(LockClassId held, LockClassId acquired) {
  return ((static_cast<uint64_t>(held) + 1) << 32) | (static_cast<uint64_t>(acquired) + 1);
}

uint64_t MixEdge(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool EdgeSeen(LockClassId held, LockClassId acquired) {
  EdgeCacheTable& cache = EdgeCache();
  const uint64_t key = EdgeKey(held, acquired);
  size_t slot = MixEdge(key) & (kEdgeCacheSlots - 1);
  for (size_t i = 0; i < kEdgeProbeLimit; ++i) {
    uint64_t value = cache[(slot + i) & (kEdgeCacheSlots - 1)].load(std::memory_order_relaxed);
    if (value == key) {
      return true;
    }
    if (value == 0) {
      return false;
    }
  }
  return false;
}

void EdgeRemember(LockClassId held, LockClassId acquired) {
  EdgeCacheTable& cache = EdgeCache();
  const uint64_t key = EdgeKey(held, acquired);
  size_t slot = MixEdge(key) & (kEdgeCacheSlots - 1);
  for (size_t i = 0; i < kEdgeProbeLimit; ++i) {
    std::atomic<uint64_t>& cell = cache[(slot + i) & (kEdgeCacheSlots - 1)];
    uint64_t expected = 0;
    if (cell.compare_exchange_strong(expected, key, std::memory_order_relaxed)) {
      return;
    }
    if (expected == key) {
      return;  // another thread cached it first
    }
  }
  // Probe window full: skip caching. Correctness is unaffected — the pair
  // will simply keep taking the slow path.
}

void EdgeCacheReset() {
  for (std::atomic<uint64_t>& cell : EdgeCache()) {
    cell.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Per-class contention profiles
// ---------------------------------------------------------------------------
// Indexed by class id, allocated lazily on a class's first blocking
// acquisition (most classes never block). Slots are published with a CAS and
// never freed, so OnContended and TopContended read them lock-free.

struct ClassContention {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> max_ns{0};
  obs::Histogram wait_hist;
};

using ContentionTable = std::array<std::atomic<ClassContention*>, kMaxLockClasses>;

ContentionTable& Contention() {
  static ContentionTable* table = new ContentionTable();  // zero-initialized
  return *table;
}

ClassContention& ContentionSlot(LockClassId cls) {
  std::atomic<ClassContention*>& slot = Contention()[cls];
  ClassContention* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) {
    return *existing;
  }
  auto fresh = std::make_unique<ClassContention>();
  ClassContention* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(), std::memory_order_acq_rel)) {
    return *fresh.release();
  }
  return *expected;  // another thread won; `fresh` is discarded
}

void ContentionReset() {
  for (std::atomic<ClassContention*>& slot : Contention()) {
    ClassContention* c = slot.load(std::memory_order_acquire);
    if (c != nullptr) {
      c->count.store(0, std::memory_order_relaxed);
      c->total_ns.store(0, std::memory_order_relaxed);
      c->max_ns.store(0, std::memory_order_relaxed);
      c->wait_hist.ResetForTesting();
    }
  }
}

}  // namespace

LockRegistry& LockRegistry::Get() {
  static LockRegistry* registry = new LockRegistry();
  return *registry;
}

LockClassId LockRegistry::RegisterClass(const std::string& name) {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  auto it = class_by_name_.find(name);
  if (it != class_by_name_.end()) {
    return it->second;
  }
  uint32_t id = class_count_.load(std::memory_order_relaxed);
  SKERN_CHECK_MSG(id < kMaxLockClasses, "lock class table full (kMaxLockClasses)");
  class_names_[id] = name;
  class_by_name_[name] = id;
  // Publish: a reader that acquire-loads class_count_ > id sees the name.
  class_count_.store(id + 1, std::memory_order_release);
  return id;
}

const std::string& LockRegistry::ClassName(LockClassId id) const {
  static const std::string kUnknown = "<unknown>";
  if (id >= class_count_.load(std::memory_order_acquire)) {
    return kUnknown;
  }
  return class_names_[id];
}

bool LockRegistry::CreatesCycleLocked(LockClassId from, LockClassId to) const {
  // Adding edge from->to creates a cycle iff `from` is reachable from `to`.
  std::vector<LockClassId> stack{to};
  std::set<LockClassId> seen;
  while (!stack.empty()) {
    LockClassId cur = stack.back();
    stack.pop_back();
    if (cur == from) {
      return true;
    }
    if (!seen.insert(cur).second) {
      continue;
    }
    auto it = edges_.find(cur);
    if (it != edges_.end()) {
      for (LockClassId next : it->second) {
        stack.push_back(next);
      }
    }
  }
  return false;
}

void LockRegistry::ReportViolation(const LockOrderViolation& violation) {
  SKERN_COUNTER_INC("sync.lock.order_violations");
  SKERN_TRACE("sync", "order_violation", violation.held, violation.acquired);
  bool should_panic;
  {
    std::lock_guard<std::mutex> guard(RegistryMutex());
    violations_.push_back(violation);
    should_panic = panic_on_violation_;
  }
  const bool self = violation.held == violation.acquired;
  SKERN_ERROR() << (self ? "lock self-deadlock: re-acquiring " : "lock-order violation: ")
                << violation.held_name << (self ? "" : " -> " + violation.acquired_name);
  if (should_panic) {
    if (self) {
      Panic("lock self-deadlock: \"" + violation.held_name + "\" re-acquired by holder");
    }
    Panic("lock-order violation: " + violation.held_name + " then " + violation.acquired_name);
  }
}

void LockRegistry::OnAcquire(LockClassId cls) {
  SKERN_COUNTER_INC("sync.lock.acquires");
  if (CurrentThreadHolds(cls)) [[unlikely]] {
    // Re-acquiring a class this thread already holds would block on itself
    // (these locks are not recursive). Register the hold first so release
    // bookkeeping stays balanced in record-only mode.
    t_held_stack.push_back(cls);
    ReportViolation(LockOrderViolation{cls, cls, ClassName(cls), ClassName(cls)});
    return;
  }
  if (t_held_stack.empty()) {
    // Fast path: no locks held means no ordering edges to record, so the
    // global registry mutex can be skipped entirely. This is what keeps
    // independently-striped locks (buffer-cache shards) from serializing on
    // the registry when acquired from lock-free contexts.
    t_held_stack.push_back(cls);
    return;
  }
  bool all_validated = true;
  for (LockClassId held : t_held_stack) {
    if (!EdgeSeen(held, cls)) {
      all_validated = false;
      break;
    }
  }
  if (all_validated) {
    // Every (held, cls) pair has been through the cycle check before; the
    // verdict is immutable, so nothing to record and no mutex to take.
    t_held_stack.push_back(cls);
    return;
  }
  bool violated = false;
  LockOrderViolation violation;
  {
    std::lock_guard<std::mutex> guard(RegistryMutex());
    for (LockClassId held : t_held_stack) {
      if (CreatesCycleLocked(held, cls)) {
        violated = true;
        violation = LockOrderViolation{held, cls, class_names_[held], class_names_[cls]};
      } else {
        edges_[held].insert(cls);
      }
    }
  }
  if (!violated) {
    for (LockClassId held : t_held_stack) {
      EdgeRemember(held, cls);
    }
  }
  t_held_stack.push_back(cls);
  if (violated) {
    ReportViolation(violation);
  }
}

void LockRegistry::OnContended(LockClassId cls, uint64_t wait_ns) {
  if (cls >= kMaxLockClasses) {
    return;
  }
  ClassContention& c = ContentionSlot(cls);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.total_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  uint64_t seen = c.max_ns.load(std::memory_order_relaxed);
  while (wait_ns > seen &&
         !c.max_ns.compare_exchange_weak(seen, wait_ns, std::memory_order_relaxed)) {
  }
  c.wait_hist.Observe(wait_ns);
  SKERN_TRACE("sync", "lock_wait", cls, wait_ns);
}

std::vector<LockContentionSnapshot> LockRegistry::TopContended(size_t n) const {
  std::vector<LockContentionSnapshot> out;
  const uint32_t classes = class_count_.load(std::memory_order_acquire);
  for (LockClassId cls = 0; cls < classes; ++cls) {
    ClassContention* c = Contention()[cls].load(std::memory_order_acquire);
    if (c == nullptr) {
      continue;
    }
    uint64_t count = c->count.load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    LockContentionSnapshot snap;
    snap.cls = cls;
    snap.name = class_names_[cls];
    snap.count = count;
    snap.total_wait_ns = c->total_ns.load(std::memory_order_relaxed);
    snap.max_wait_ns = c->max_ns.load(std::memory_order_relaxed);
    obs::Histogram::Snapshot hist = c->wait_hist.GetSnapshot();
    snap.p50_ns = hist.p50;
    snap.p95_ns = hist.p95;
    snap.p99_ns = hist.p99;
    out.push_back(std::move(snap));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LockContentionSnapshot& a, const LockContentionSnapshot& b) {
                     return a.total_wait_ns > b.total_wait_ns;
                   });
  if (out.size() > n) {
    out.resize(n);
  }
  return out;
}

void LockRegistry::OnRelease(LockClassId cls) {
  auto it = std::find(t_held_stack.rbegin(), t_held_stack.rend(), cls);
  SKERN_CHECK_MSG(it != t_held_stack.rend(), "releasing lock class not held by this thread");
  t_held_stack.erase(std::next(it).base());
}

bool LockRegistry::CurrentThreadHolds(LockClassId cls) const {
  return std::find(t_held_stack.begin(), t_held_stack.end(), cls) != t_held_stack.end();
}

size_t LockRegistry::CurrentThreadHeldCount() const { return t_held_stack.size(); }

std::vector<LockOrderViolation> LockRegistry::Violations() const {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  return violations_;
}

uint64_t LockRegistry::violation_count() const {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  return violations_.size();
}

void LockRegistry::set_panic_on_violation(bool value) {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  panic_on_violation_ = value;
}

void LockRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  edges_.clear();
  violations_.clear();
  EdgeCacheReset();
  ContentionReset();
}

}  // namespace skern
