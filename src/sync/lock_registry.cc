#include "src/sync/lock_registry.h"

#include <algorithm>
#include <mutex>

#include "src/base/log.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

// Guards the registry's shared state. The per-thread held stack needs no lock.
std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

thread_local std::vector<LockClassId> t_held_stack;

}  // namespace

LockRegistry& LockRegistry::Get() {
  static LockRegistry* registry = new LockRegistry();
  return *registry;
}

LockClassId LockRegistry::RegisterClass(const std::string& name) {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  auto it = class_by_name_.find(name);
  if (it != class_by_name_.end()) {
    return it->second;
  }
  LockClassId id = static_cast<LockClassId>(class_names_.size());
  class_names_.push_back(name);
  class_by_name_[name] = id;
  return id;
}

std::string LockRegistry::ClassName(LockClassId id) const {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  if (id >= class_names_.size()) {
    return "<unknown>";
  }
  return class_names_[id];
}

bool LockRegistry::CreatesCycleLocked(LockClassId from, LockClassId to) const {
  // Adding edge from->to creates a cycle iff `from` is reachable from `to`.
  std::vector<LockClassId> stack{to};
  std::set<LockClassId> seen;
  while (!stack.empty()) {
    LockClassId cur = stack.back();
    stack.pop_back();
    if (cur == from) {
      return true;
    }
    if (!seen.insert(cur).second) {
      continue;
    }
    auto it = edges_.find(cur);
    if (it != edges_.end()) {
      for (LockClassId next : it->second) {
        stack.push_back(next);
      }
    }
  }
  return false;
}

void LockRegistry::OnAcquire(LockClassId cls) {
  SKERN_COUNTER_INC("sync.lock.acquires");
  if (t_held_stack.empty()) {
    // Fast path: no locks held means no ordering edges to record, so the
    // global registry mutex can be skipped entirely. This is what keeps
    // independently-striped locks (buffer-cache shards) from serializing on
    // the registry when acquired from lock-free contexts.
    t_held_stack.push_back(cls);
    return;
  }
  bool violated = false;
  LockOrderViolation violation;
  {
    std::lock_guard<std::mutex> guard(RegistryMutex());
    for (LockClassId held : t_held_stack) {
      if (held == cls) {
        continue;  // recursive same-class acquisitions are the lock's concern
      }
      if (CreatesCycleLocked(held, cls)) {
        violated = true;
        violation = LockOrderViolation{held, cls, class_names_[held], class_names_[cls]};
        violations_.push_back(violation);
      } else {
        edges_[held].insert(cls);
      }
    }
  }
  t_held_stack.push_back(cls);
  if (violated) {
    SKERN_COUNTER_INC("sync.lock.order_violations");
    SKERN_TRACE("sync", "order_violation", violation.held, violation.acquired);
    SKERN_ERROR() << "lock-order violation: " << violation.held_name << " -> "
                  << violation.acquired_name;
    bool should_panic;
    {
      std::lock_guard<std::mutex> guard(RegistryMutex());
      should_panic = panic_on_violation_;
    }
    if (should_panic) {
      Panic("lock-order violation: " + violation.held_name + " then " + violation.acquired_name);
    }
  }
}

void LockRegistry::OnRelease(LockClassId cls) {
  auto it = std::find(t_held_stack.rbegin(), t_held_stack.rend(), cls);
  SKERN_CHECK_MSG(it != t_held_stack.rend(), "releasing lock class not held by this thread");
  t_held_stack.erase(std::next(it).base());
}

bool LockRegistry::CurrentThreadHolds(LockClassId cls) const {
  return std::find(t_held_stack.begin(), t_held_stack.end(), cls) != t_held_stack.end();
}

size_t LockRegistry::CurrentThreadHeldCount() const { return t_held_stack.size(); }

std::vector<LockOrderViolation> LockRegistry::Violations() const {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  return violations_;
}

uint64_t LockRegistry::violation_count() const {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  return violations_.size();
}

void LockRegistry::set_panic_on_violation(bool value) {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  panic_on_violation_ = value;
}

void LockRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> guard(RegistryMutex());
  edges_.clear();
  violations_.clear();
}

}  // namespace skern
