// Lock bookkeeping: held-lock tracking and lock-order checking.
//
// §4.3: Linux data structures are "accessed concurrently by different sections
// of the kernel, often with complicated specifications on which fields can be
// accessed when, by which functions, and when which locks need to be held...
// the only thing preventing incorrect access is vigilant code review."
// This registry makes that review mechanical: every tracked lock registers a
// class; acquisitions record ordering edges between classes; a cycle in the
// class graph is an ordering violation (potential deadlock) and is reported.
#ifndef SKERN_SRC_SYNC_LOCK_REGISTRY_H_
#define SKERN_SRC_SYNC_LOCK_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace skern {

// Identifies a lock *class* (e.g. "inode.i_lock"), not an instance — the same
// granularity lockdep uses.
using LockClassId = uint32_t;

// Upper bound on distinct lock classes. Classes are named by string literals
// at lock construction sites, so the population is small and fixed; the bound
// buys a read-mostly name table that OnAcquire/ClassName can use without the
// registry mutex (lockdep's MAX_LOCKDEP_KEYS plays the same role).
inline constexpr size_t kMaxLockClasses = 1024;

struct LockOrderViolation {
  LockClassId held;      // class already held
  LockClassId acquired;  // class being acquired, closing a cycle
  std::string held_name;
  std::string acquired_name;
};

// One lock class's contention profile (lockstat's waittime columns): how
// often acquirers of this class actually blocked, and for how long.
// Quantiles come from a per-class log2 wait-time histogram.
struct LockContentionSnapshot {
  LockClassId cls = 0;
  std::string name;
  uint64_t count = 0;          // blocking acquisitions
  uint64_t total_wait_ns = 0;  // summed wall time spent blocked
  uint64_t max_wait_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
};

class LockRegistry {
 public:
  static LockRegistry& Get();

  // Registers (or finds) a lock class by name.
  LockClassId RegisterClass(const std::string& name);

  // Name of a registered class. Lock-free: ids are published with release
  // semantics into an append-only table, so the hot paths (panic messages,
  // procfs renders) never touch the registry mutex.
  const std::string& ClassName(LockClassId id) const;

  // Called by tracked locks. Records ordering edges from all classes held by
  // the current thread to `cls`, and flags newly created cycles. Re-acquiring
  // a class this thread already holds is a self-deadlock violation. Edges
  // already validated once are remembered in a lock-free cache, so steady
  // state acquisition never touches the registry mutex.
  void OnAcquire(LockClassId cls);
  void OnRelease(LockClassId cls);

  // Called by tracked locks after a blocking acquisition completes: records
  // `wait_ns` of wall time spent blocked on class `cls` into the per-class
  // contention profile, and emits a "sync.lock_wait" trace event so span
  // trees can show which lock an operation stalled on. Lock-free (relaxed
  // counters + a lazily allocated per-class histogram).
  void OnContended(LockClassId cls, uint64_t wait_ns);

  // The `n` most contended classes by total wait, descending (procfs
  // /contention). Classes that never blocked are omitted.
  std::vector<LockContentionSnapshot> TopContended(size_t n) const;

  // True if the current thread holds any lock of class `cls`.
  bool CurrentThreadHolds(LockClassId cls) const;
  // Number of locks currently held by this thread (any class).
  size_t CurrentThreadHeldCount() const;

  // Violations recorded so far (process-wide).
  std::vector<LockOrderViolation> Violations() const;
  uint64_t violation_count() const;

  // If true (default), an ordering violation panics; otherwise it is only
  // recorded. The fault-injection harness runs in record-only mode.
  void set_panic_on_violation(bool value);

  // Drops the recorded edge graph, violations, and contention profiles
  // (test isolation).
  void ResetForTesting();

 private:
  LockRegistry() = default;

  bool CreatesCycleLocked(LockClassId from, LockClassId to) const;
  // Records `violation`, then panics if strict mode is on.
  void ReportViolation(const LockOrderViolation& violation);

  mutable std::map<LockClassId, std::set<LockClassId>> edges_;  // "from held before to"
  std::vector<LockOrderViolation> violations_;
  std::map<std::string, LockClassId> class_by_name_;
  // Append-only name table: slot [id] is written once under the registry
  // mutex, then published by the release-store of class_count_; readers that
  // acquire-load the count may touch any published slot lock-free.
  std::array<std::string, kMaxLockClasses> class_names_;
  std::atomic<uint32_t> class_count_{0};
  bool panic_on_violation_ = true;
};

}  // namespace skern

#endif  // SKERN_SRC_SYNC_LOCK_REGISTRY_H_
