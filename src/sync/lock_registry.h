// Lock bookkeeping: held-lock tracking and lock-order checking.
//
// §4.3: Linux data structures are "accessed concurrently by different sections
// of the kernel, often with complicated specifications on which fields can be
// accessed when, by which functions, and when which locks need to be held...
// the only thing preventing incorrect access is vigilant code review."
// This registry makes that review mechanical: every tracked lock registers a
// class; acquisitions record ordering edges between classes; a cycle in the
// class graph is an ordering violation (potential deadlock) and is reported.
#ifndef SKERN_SRC_SYNC_LOCK_REGISTRY_H_
#define SKERN_SRC_SYNC_LOCK_REGISTRY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace skern {

// Identifies a lock *class* (e.g. "inode.i_lock"), not an instance — the same
// granularity lockdep uses.
using LockClassId = uint32_t;

struct LockOrderViolation {
  LockClassId held;      // class already held
  LockClassId acquired;  // class being acquired, closing a cycle
  std::string held_name;
  std::string acquired_name;
};

class LockRegistry {
 public:
  static LockRegistry& Get();

  // Registers (or finds) a lock class by name.
  LockClassId RegisterClass(const std::string& name);
  std::string ClassName(LockClassId id) const;

  // Called by tracked locks. Records ordering edges from all classes held by
  // the current thread to `cls`, and flags newly created cycles.
  void OnAcquire(LockClassId cls);
  void OnRelease(LockClassId cls);

  // True if the current thread holds any lock of class `cls`.
  bool CurrentThreadHolds(LockClassId cls) const;
  // Number of locks currently held by this thread (any class).
  size_t CurrentThreadHeldCount() const;

  // Violations recorded so far (process-wide).
  std::vector<LockOrderViolation> Violations() const;
  uint64_t violation_count() const;

  // If true (default), an ordering violation panics; otherwise it is only
  // recorded. The fault-injection harness runs in record-only mode.
  void set_panic_on_violation(bool value);

  // Drops the recorded edge graph and violations (test isolation).
  void ResetForTesting();

 private:
  LockRegistry() = default;

  bool CreatesCycleLocked(LockClassId from, LockClassId to) const;

  mutable std::map<LockClassId, std::set<LockClassId>> edges_;  // "from held before to"
  std::vector<LockOrderViolation> violations_;
  std::map<std::string, LockClassId> class_by_name_;
  std::vector<std::string> class_names_;
  bool panic_on_violation_ = true;
};

}  // namespace skern

#endif  // SKERN_SRC_SYNC_LOCK_REGISTRY_H_
