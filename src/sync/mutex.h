// Tracked synchronization primitives.
//
// TrackedMutex / TrackedSpinLock / TrackedRwLock wrap the standard
// primitives and report acquisitions to the LockRegistry so lock ordering is
// checked and "is this lock held?" assertions (SKERN_ASSERT_HELD) are
// possible — the machine-checkable version of Linux's lockdep_assert_held.
//
// Every lock type is a clang Thread-Safety-Analysis capability
// (src/sync/annotations.h): fields declared SKERN_GUARDED_BY one of these
// locks are compile-time checked under clang and lint-checked everywhere.
#ifndef SKERN_SRC_SYNC_MUTEX_H_
#define SKERN_SRC_SYNC_MUTEX_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sync/annotations.h"
#include "src/sync/lock_registry.h"
#include "src/sync/spinlock.h"

namespace skern {

namespace sync_internal {

// Shared tail of every blocking-lock contended path: profile the wait into
// the per-class histogram (lockstat) and charge it to the enclosing span, if
// one is open, so a p99 outlier names the lock it stalled on. `BlockingLock`
// is the primitive's blocking acquire, timed only on this already-slow path.
// Compiled out with the rest of the obs plane: the baseline configuration
// falls back to the plain blocking call.
template <typename BlockingLock>
inline void ContendedLock(LockClassId cls, BlockingLock&& block) {
#ifndef SKERN_OBS_COMPILED_OUT
  const uint64_t wait_start = obs::MonotonicNowNs();
  block();
  const uint64_t wait_ns = obs::MonotonicNowNs() - wait_start;
  LockRegistry::Get().OnContended(cls, wait_ns);
  obs::CurrentSpanAddLockWait(wait_ns);
#else
  (void)cls;
  block();
#endif
}

}  // namespace sync_internal

class SKERN_CAPABILITY("mutex") TrackedMutex {
 public:
  explicit TrackedMutex(const std::string& class_name)
      : class_id_(LockRegistry::Get().RegisterClass(class_name)) {}

  void Lock() SKERN_ACQUIRE() {
    LockRegistry::Get().OnAcquire(class_id_);
    // Uncontended acquisition is the fast path: one try_lock. Only when that
    // fails — another thread holds the mutex and we are about to block —
    // does the contention counter move (lockstat's "contentions" column).
    if (!mutex_.try_lock()) [[unlikely]] {
      contended_.fetch_add(1, std::memory_order_relaxed);
      SKERN_COUNTER_INC("sync.lock.contended");
      sync_internal::ContendedLock(class_id_, [this] { mutex_.lock(); });
    }
  }

  void Unlock() SKERN_RELEASE() {
    mutex_.unlock();
    LockRegistry::Get().OnRelease(class_id_);
  }

  bool TryLock() SKERN_TRY_ACQUIRE(true) {
    if (mutex_.try_lock()) {
      LockRegistry::Get().OnAcquire(class_id_);
      return true;
    }
    return false;
  }

  bool HeldByCurrentThread() const {
    return LockRegistry::Get().CurrentThreadHolds(class_id_);
  }

  LockClassId class_id() const { return class_id_; }

  // Times this instance found the mutex held and had to block.
  uint64_t contended_count() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  LockClassId class_id_;
  std::mutex mutex_;
  std::atomic<uint64_t> contended_{0};
};

// RAII guard for TrackedMutex.
class SKERN_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(TrackedMutex& mutex) SKERN_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->Lock();
  }
  ~MutexGuard() SKERN_RELEASE() {
    if (mutex_ != nullptr) {
      mutex_->Unlock();
    }
  }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

  // Releases before scope end (for hand-over-hand patterns).
  void Release() SKERN_RELEASE() {
    mutex_->Unlock();
    mutex_ = nullptr;
  }

 private:
  TrackedMutex* mutex_;
};

// Registry-tracked FIFO ticket spinlock, for short critical sections on hot,
// lock-striped structures (the buffer-cache shards). Same lockdep
// integration as TrackedMutex; instances sharing one class name form one
// lock class, so striped siblings never generate ordering edges against each
// other (they are never nested).
class SKERN_CAPABILITY("spinlock") TrackedSpinLock {
 public:
  explicit TrackedSpinLock(const std::string& class_name)
      : class_id_(LockRegistry::Get().RegisterClass(class_name)) {}

  void Lock() SKERN_ACQUIRE() {
    LockRegistry::Get().OnAcquire(class_id_);
    lock_.Lock();
  }

  void Unlock() SKERN_RELEASE() {
    lock_.Unlock();
    LockRegistry::Get().OnRelease(class_id_);
  }

  bool TryLock() SKERN_TRY_ACQUIRE(true) {
    if (lock_.TryLock()) {
      LockRegistry::Get().OnAcquire(class_id_);
      return true;
    }
    return false;
  }

  bool HeldByCurrentThread() const {
    return LockRegistry::Get().CurrentThreadHolds(class_id_);
  }

  LockClassId class_id() const { return class_id_; }

 private:
  LockClassId class_id_;
  TicketSpinlock lock_;
};

// RAII guard for TrackedSpinLock.
class SKERN_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(TrackedSpinLock& lock) SKERN_ACQUIRE(lock) : lock_(&lock) {
    lock_->Lock();
  }
  ~SpinLockGuard() SKERN_RELEASE() {
    if (lock_ != nullptr) {
      lock_->Unlock();
    }
  }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

  void Release() SKERN_RELEASE() {
    lock_->Unlock();
    lock_ = nullptr;
  }

 private:
  TrackedSpinLock* lock_;
};

class SKERN_CAPABILITY("rwlock") TrackedRwLock {
 public:
  explicit TrackedRwLock(const std::string& class_name)
      : class_id_(LockRegistry::Get().RegisterClass(class_name)) {}

  void LockShared() SKERN_ACQUIRE_SHARED() {
    LockRegistry::Get().OnAcquire(class_id_);
    // Same lockstat idiom as TrackedMutex: the counter only moves when the
    // acquisition actually has to wait (here: a writer holds or is queued).
    if (!mutex_.try_lock_shared()) [[unlikely]] {
      contended_.fetch_add(1, std::memory_order_relaxed);
      SKERN_COUNTER_INC("sync.rwlock.contended");
      sync_internal::ContendedLock(class_id_, [this] { mutex_.lock_shared(); });
    }
  }
  void UnlockShared() SKERN_RELEASE_SHARED() {
    mutex_.unlock_shared();
    LockRegistry::Get().OnRelease(class_id_);
  }
  void LockExclusive() SKERN_ACQUIRE() {
    LockRegistry::Get().OnAcquire(class_id_);
    if (!mutex_.try_lock()) [[unlikely]] {
      contended_.fetch_add(1, std::memory_order_relaxed);
      SKERN_COUNTER_INC("sync.rwlock.contended");
      sync_internal::ContendedLock(class_id_, [this] { mutex_.lock(); });
    }
  }
  void UnlockExclusive() SKERN_RELEASE() {
    mutex_.unlock();
    LockRegistry::Get().OnRelease(class_id_);
  }

  bool HeldByCurrentThread() const {
    return LockRegistry::Get().CurrentThreadHolds(class_id_);
  }

  LockClassId class_id() const { return class_id_; }

  // Times this instance found the lock unavailable and had to block.
  uint64_t contended_count() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  LockClassId class_id_;
  std::shared_mutex mutex_;
  std::atomic<uint64_t> contended_{0};
};

class SKERN_SCOPED_CAPABILITY ReadGuard {
 public:
  explicit ReadGuard(TrackedRwLock& lock) SKERN_ACQUIRE_SHARED(lock) : lock_(lock) {
    lock_.LockShared();
  }
  ~ReadGuard() SKERN_RELEASE() { lock_.UnlockShared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  TrackedRwLock& lock_;
};

class SKERN_SCOPED_CAPABILITY WriteGuard {
 public:
  explicit WriteGuard(TrackedRwLock& lock) SKERN_ACQUIRE(lock) : lock_(lock) {
    lock_.LockExclusive();
  }
  ~WriteGuard() SKERN_RELEASE() { lock_.UnlockExclusive(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  TrackedRwLock& lock_;
};

// Always-on held assertions (lockdep_assert_held): panic if the calling
// thread does not hold `lock`. Under clang TSA the assertion also teaches
// the analysis that the capability is held from here on, which is how
// lock-assumed private helpers (SKERN_REQUIRES) can be called from paths the
// analysis cannot see through.
inline void AssertHeld(const TrackedMutex& lock) SKERN_ASSERT_CAPABILITY(lock) {
  if (!lock.HeldByCurrentThread()) [[unlikely]] {
    Panic("SKERN_ASSERT_HELD: \"" + LockRegistry::Get().ClassName(lock.class_id()) +
          "\" not held by current thread");
  }
}

inline void AssertHeld(const TrackedSpinLock& lock) SKERN_ASSERT_CAPABILITY(lock) {
  if (!lock.HeldByCurrentThread()) [[unlikely]] {
    Panic("SKERN_ASSERT_HELD: \"" + LockRegistry::Get().ClassName(lock.class_id()) +
          "\" not held by current thread");
  }
}

inline void AssertHeld(const TrackedRwLock& lock) SKERN_ASSERT_CAPABILITY(lock) {
  if (!lock.HeldByCurrentThread()) [[unlikely]] {
    Panic("SKERN_ASSERT_HELD: \"" + LockRegistry::Get().ClassName(lock.class_id()) +
          "\" not held by current thread");
  }
}

}  // namespace skern

// Asserts (always, debug and release) that the current thread holds `mutex`.
#define SKERN_ASSERT_HELD(mutex) ::skern::AssertHeld(mutex)

#endif  // SKERN_SRC_SYNC_MUTEX_H_
