// Tracked synchronization primitives.
//
// TrackedMutex / TrackedRwLock wrap the standard primitives and report
// acquisitions to the LockRegistry so lock ordering is checked and "is this
// lock held?" assertions (SKERN_ASSERT_HELD) are possible — the machine-
// checkable version of Linux's lockdep_assert_held.
#ifndef SKERN_SRC_SYNC_MUTEX_H_
#define SKERN_SRC_SYNC_MUTEX_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/sync/lock_registry.h"
#include "src/sync/spinlock.h"

namespace skern {

class TrackedMutex {
 public:
  explicit TrackedMutex(const std::string& class_name)
      : class_id_(LockRegistry::Get().RegisterClass(class_name)) {}

  void Lock() {
    LockRegistry::Get().OnAcquire(class_id_);
    mutex_.lock();
    contended_.fetch_add(0, std::memory_order_relaxed);
  }

  void Unlock() {
    mutex_.unlock();
    LockRegistry::Get().OnRelease(class_id_);
  }

  bool TryLock() {
    if (mutex_.try_lock()) {
      LockRegistry::Get().OnAcquire(class_id_);
      return true;
    }
    return false;
  }

  bool HeldByCurrentThread() const {
    return LockRegistry::Get().CurrentThreadHolds(class_id_);
  }

  LockClassId class_id() const { return class_id_; }

 private:
  LockClassId class_id_;
  std::mutex mutex_;
  std::atomic<uint64_t> contended_{0};
};

// RAII guard for TrackedMutex.
class MutexGuard {
 public:
  explicit MutexGuard(TrackedMutex& mutex) : mutex_(&mutex) { mutex_->Lock(); }
  ~MutexGuard() {
    if (mutex_ != nullptr) {
      mutex_->Unlock();
    }
  }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

  // Releases before scope end (for hand-over-hand patterns).
  void Release() {
    mutex_->Unlock();
    mutex_ = nullptr;
  }

 private:
  TrackedMutex* mutex_;
};

// Registry-tracked FIFO ticket spinlock, for short critical sections on hot,
// lock-striped structures (the buffer-cache shards). Same lockdep
// integration as TrackedMutex; instances sharing one class name form one
// lock class, so striped siblings never generate ordering edges against each
// other (they are never nested).
class TrackedSpinLock {
 public:
  explicit TrackedSpinLock(const std::string& class_name)
      : class_id_(LockRegistry::Get().RegisterClass(class_name)) {}

  void Lock() {
    LockRegistry::Get().OnAcquire(class_id_);
    lock_.Lock();
  }

  void Unlock() {
    lock_.Unlock();
    LockRegistry::Get().OnRelease(class_id_);
  }

  bool TryLock() {
    if (lock_.TryLock()) {
      LockRegistry::Get().OnAcquire(class_id_);
      return true;
    }
    return false;
  }

  bool HeldByCurrentThread() const {
    return LockRegistry::Get().CurrentThreadHolds(class_id_);
  }

  LockClassId class_id() const { return class_id_; }

 private:
  LockClassId class_id_;
  TicketSpinlock lock_;
};

// RAII guard for TrackedSpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(TrackedSpinLock& lock) : lock_(&lock) { lock_->Lock(); }
  ~SpinLockGuard() {
    if (lock_ != nullptr) {
      lock_->Unlock();
    }
  }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

  void Release() {
    lock_->Unlock();
    lock_ = nullptr;
  }

 private:
  TrackedSpinLock* lock_;
};

class TrackedRwLock {
 public:
  explicit TrackedRwLock(const std::string& class_name)
      : class_id_(LockRegistry::Get().RegisterClass(class_name)) {}

  void LockShared() {
    LockRegistry::Get().OnAcquire(class_id_);
    mutex_.lock_shared();
  }
  void UnlockShared() {
    mutex_.unlock_shared();
    LockRegistry::Get().OnRelease(class_id_);
  }
  void LockExclusive() {
    LockRegistry::Get().OnAcquire(class_id_);
    mutex_.lock();
  }
  void UnlockExclusive() {
    mutex_.unlock();
    LockRegistry::Get().OnRelease(class_id_);
  }

  bool HeldByCurrentThread() const {
    return LockRegistry::Get().CurrentThreadHolds(class_id_);
  }

 private:
  LockClassId class_id_;
  std::shared_mutex mutex_;
};

class ReadGuard {
 public:
  explicit ReadGuard(TrackedRwLock& lock) : lock_(lock) { lock_.LockShared(); }
  ~ReadGuard() { lock_.UnlockShared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  TrackedRwLock& lock_;
};

class WriteGuard {
 public:
  explicit WriteGuard(TrackedRwLock& lock) : lock_(lock) { lock_.LockExclusive(); }
  ~WriteGuard() { lock_.UnlockExclusive(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  TrackedRwLock& lock_;
};

}  // namespace skern

// Asserts (in debug builds) that the current thread holds `mutex`.
#define SKERN_ASSERT_HELD(mutex) SKERN_DCHECK((mutex).HeldByCurrentThread())

#endif  // SKERN_SRC_SYNC_MUTEX_H_
