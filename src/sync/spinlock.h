// Untracked spinlock, used where a lock is part of a legacy C-style struct
// (e.g. inode.i_lock) and we deliberately keep Linux's raw semantics.
#ifndef SKERN_SRC_SYNC_SPINLOCK_H_
#define SKERN_SRC_SYNC_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace skern {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // spin; this is a simulation, contention is short
    }
  }

  void Unlock() { flag_.clear(std::memory_order_release); }

  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// FIFO ticket spinlock (the shape Linux adopted in 2.6.25 for arch
// spinlocks): acquisitions are served strictly in arrival order, so a hot
// lock cannot starve a waiter the way a test-and-set lock can. Waiters spin
// briefly and then yield, which keeps oversubscribed configurations (more
// runnable threads than cores) from burning whole scheduler quanta.
class TicketSpinlock {
 public:
  TicketSpinlock() = default;
  TicketSpinlock(const TicketSpinlock&) = delete;
  TicketSpinlock& operator=(const TicketSpinlock&) = delete;

  void Lock() {
    uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  void Unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  bool TryLock() {
    uint32_t serving = serving_.load(std::memory_order_acquire);
    uint32_t expected = serving;
    // Only acquirable when no one is waiting: take the ticket iff it is the
    // one being served.
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

 private:
  static constexpr int kSpinsBeforeYield = 64;

  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> serving_{0};
};

class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinGuard() { lock_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace skern

#endif  // SKERN_SRC_SYNC_SPINLOCK_H_
