// Untracked spinlock, used where a lock is part of a legacy C-style struct
// (e.g. inode.i_lock) and we deliberately keep Linux's raw semantics.
#ifndef SKERN_SRC_SYNC_SPINLOCK_H_
#define SKERN_SRC_SYNC_SPINLOCK_H_

#include <atomic>

namespace skern {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // spin; this is a simulation, contention is short
    }
  }

  void Unlock() { flag_.clear(std::memory_order_release); }

  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinGuard() { lock_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace skern

#endif  // SKERN_SRC_SYNC_SPINLOCK_H_
