#include "src/vfs/dcache.h"

#include <list>
#include <unordered_map>
#include <utility>

#include "src/mem/stl_alloc.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sync/mutex.h"

namespace skern {
namespace {

// Same avalanche mix the buffer cache uses for shard selection: adjacent
// inodes must not land in adjacent shards or siblings of one hot directory
// would all contend on one lock.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

size_t FloorPow2(size_t v) {
  size_t p = 1;
  while (p * 2 <= v) {
    p *= 2;
  }
  return p;
}

}  // namespace

uint64_t DentryCache::HashKey(uint64_t parent_ino, std::string_view name) {
  return SplitMix64(parent_ino ^ Fnv1a(name));
}

struct DentryCache::Shard {
  struct Key {
    uint64_t parent;
    std::string name;
  };
  struct KeyView {
    uint64_t parent;
    std::string_view name;
  };
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(HashKey(k.parent, k.name));
    }
    size_t operator()(const KeyView& k) const {
      return static_cast<size_t>(HashKey(k.parent, k.name));
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const {
      return a.parent == b.parent && a.name == b.name;
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return a.parent == b.parent && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return a.parent == b.parent && a.name == b.name;
    }
  };
  struct Entry {
    uint64_t parent;
    std::string name;
    uint64_t child;  // 0 (kInvalidIno) marks a negative entry
    uint64_t gen;    // generation at insert; stale if != current
  };

  // List nodes and index nodes both land in "vfs.dentry" slab caches (one
  // per node size), so a lookup-heavy workload never touches the heap.
  struct DentryTag {
    static constexpr const char* kName = "vfs.dentry";
  };
  using LruList = std::list<Entry, mem::StlAllocator<Entry, DentryTag>>;
  using Index =
      std::unordered_map<Key, LruList::iterator, KeyHash, KeyEq,
                         mem::StlAllocator<std::pair<const Key, LruList::iterator>, DentryTag>>;

  explicit Shard(size_t cap) : lock("dcache.shard"), capacity(cap) {}

  mutable TrackedSpinLock lock;
  size_t capacity;  // immutable after construction
  // front = most recently used
  LruList lru SKERN_GUARDED_BY(lock);
  Index index SKERN_GUARDED_BY(lock);
  // Tallies owned by this shard's lock (aggregated by StatsSnapshot).
  uint64_t hits SKERN_GUARDED_BY(lock) = 0;
  uint64_t misses SKERN_GUARDED_BY(lock) = 0;
  uint64_t negative_hits SKERN_GUARDED_BY(lock) = 0;
  uint64_t inserts SKERN_GUARDED_BY(lock) = 0;
  uint64_t evictions SKERN_GUARDED_BY(lock) = 0;

  void EraseEntry(Index::iterator it) SKERN_REQUIRES(lock) {
    lru.erase(it->second);
    index.erase(it);
  }
};

DentryCache::DentryCache(size_t capacity, size_t shard_hint) {
  if (capacity == 0) {
    capacity = 1;
  }
  size_t shards = FloorPow2(shard_hint == 0 ? 1 : shard_hint);
  while (shards > 1 && capacity / shards < kMinEntriesPerShard) {
    shards /= 2;
  }
  shards_count_ = shards;
  shard_mask_ = shards - 1;
  size_t per_shard = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
  // Touch every exported counter once so procfs /metrics lists the dcache
  // block even before the first lookup (a kernel's slabinfo is never absent
  // just because a slab is cold).
  SKERN_COUNTER_ADD("vfs.dcache.hits", 0);
  SKERN_COUNTER_ADD("vfs.dcache.misses", 0);
  SKERN_COUNTER_ADD("vfs.dcache.negative_hits", 0);
  SKERN_COUNTER_ADD("vfs.dcache.inserts", 0);
  SKERN_COUNTER_ADD("vfs.dcache.invalidations", 0);
  SKERN_COUNTER_ADD("vfs.dcache.evictions", 0);
  SKERN_GAUGE_ADD("vfs.dcache.entries", 0);
}

DentryCache::~DentryCache() {
  // Return this instance's residency so the process-wide gauge stays honest
  // across cache lifetimes.
  int64_t resident = 0;
  for (auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    resident += static_cast<int64_t>(shard->index.size());
  }
  SKERN_GAUGE_ADD("vfs.dcache.entries", -resident);
}

DentryCache::Shard& DentryCache::ShardFor(uint64_t parent_ino,
                                          std::string_view name) const {
  return *shards_[HashKey(parent_ino, name) & shard_mask_];
}

DentryCache::LookupResult DentryCache::Lookup(uint64_t parent_ino,
                                              std::string_view name) {
  uint64_t gen = generation_.load(std::memory_order_relaxed);
  Shard& shard = ShardFor(parent_ino, name);
  LookupResult result;
  {
    SpinLockGuard guard(shard.lock);
    auto it = shard.index.find(Shard::KeyView{parent_ino, name});
    if (it == shard.index.end()) {
      ++shard.misses;
    } else if (it->second->gen != gen) {
      // Stale generation: the entry predates an InvalidateAll(). Drop it
      // lazily here rather than walking the table at invalidation time.
      shard.EraseEntry(it);
      SKERN_GAUGE_ADD("vfs.dcache.entries", -1);
      ++shard.misses;
    } else {
      Shard::Entry& entry = *it->second;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (entry.child == 0) {
        ++shard.negative_hits;
        result.outcome = Outcome::kNegative;
      } else {
        ++shard.hits;
        result.outcome = Outcome::kPositive;
        result.child_ino = entry.child;
      }
    }
  }
  switch (result.outcome) {
    case Outcome::kPositive:
      SKERN_COUNTER_INC("vfs.dcache.hits");
      break;
    case Outcome::kNegative:
      SKERN_COUNTER_INC("vfs.dcache.negative_hits");
      break;
    case Outcome::kMiss:
      SKERN_COUNTER_INC("vfs.dcache.misses");
      SKERN_TRACE("dcache", "miss", parent_ino);
      break;
  }
  return result;
}

void DentryCache::InsertPositive(uint64_t parent_ino, std::string_view name,
                                 uint64_t child_ino) {
  uint64_t gen = generation_.load(std::memory_order_relaxed);
  Shard& shard = ShardFor(parent_ino, name);
  int64_t delta = 0;
  uint64_t evicted_parent = 0;
  bool evicted = false;
  {
    SpinLockGuard guard(shard.lock);
    auto it = shard.index.find(Shard::KeyView{parent_ino, name});
    if (it != shard.index.end()) {
      it->second->child = child_ino;
      it->second->gen = gen;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(
          Shard::Entry{parent_ino, std::string(name), child_ino, gen});
      shard.index.emplace(Shard::Key{parent_ino, std::string(name)},
                          shard.lru.begin());
      ++delta;
      if (shard.index.size() > shard.capacity) {
        const Shard::Entry& victim = shard.lru.back();
        evicted_parent = victim.parent;
        evicted = true;
        auto victim_it =
            shard.index.find(Shard::KeyView{victim.parent, victim.name});
        if (victim_it != shard.index.end()) {
          shard.index.erase(victim_it);
        }
        shard.lru.pop_back();
        ++shard.evictions;
        --delta;
      }
    }
    ++shard.inserts;
  }
  SKERN_COUNTER_INC("vfs.dcache.inserts");
  if (delta != 0) {
    SKERN_GAUGE_ADD("vfs.dcache.entries", delta);
  }
  if (evicted) {
    SKERN_COUNTER_INC("vfs.dcache.evictions");
    SKERN_TRACE("dcache", "evict", evicted_parent);
  }
}

void DentryCache::InsertNegative(uint64_t parent_ino, std::string_view name) {
  InsertPositive(parent_ino, name, 0);
}

void DentryCache::Erase(uint64_t parent_ino, std::string_view name) {
  Shard& shard = ShardFor(parent_ino, name);
  bool erased = false;
  {
    SpinLockGuard guard(shard.lock);
    auto it = shard.index.find(Shard::KeyView{parent_ino, name});
    if (it != shard.index.end()) {
      shard.EraseEntry(it);
      erased = true;
    }
  }
  if (erased) {
    SKERN_GAUGE_ADD("vfs.dcache.entries", -1);
    SKERN_TRACE("dcache", "invalidate_entry", parent_ino);
  }
}

void DentryCache::InvalidateAll() {
  uint64_t gen = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  SKERN_COUNTER_INC("vfs.dcache.invalidations");
  SKERN_TRACE("dcache", "invalidate_all", gen);
}

void DentryCache::Clear() {
  int64_t dropped = 0;
  for (auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    dropped += static_cast<int64_t>(shard->index.size());
    shard->index.clear();
    shard->lru.clear();
  }
  if (dropped != 0) {
    SKERN_GAUGE_ADD("vfs.dcache.entries", -dropped);
  }
}

DcacheStats DentryCache::StatsSnapshot() const {
  DcacheStats stats;
  uint64_t gen = generation_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.negative_hits += shard->negative_hits;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    // Residency counts only live entries; stale generations are dead weight
    // awaiting lazy reclaim and would overstate the cache's coverage.
    for (const auto& entry : shard->lru) {
      if (entry.gen == gen) {
        ++stats.entries;
      }
    }
  }
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace skern
