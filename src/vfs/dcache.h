// Dentry cache: the VFS path-resolution fast path.
//
// Linux answers "every lookup walks the directory tree" with the dcache; the
// paper's incremental-safety story needs the same answer inside a safe
// module, or the safe file system loses the hot path to its legacy rival.
// DentryCache is that structure, built from the repo's own safe parts: a
// lock-striped hash table (ticket-spinlock shards, like the buffer cache)
// keyed on (parent inode, component name) mapping to the child inode.
//
//   * Positive entries record name -> child for a component that exists.
//   * Negative entries (child == kInvalidIno) record that a component does
//     NOT exist — they make repeated failing lookups (the "stat before
//     create" idiom) as cheap as hits.
//   * Each shard runs LRU eviction against its slice of the capacity.
//   * Invalidation is generation-stamped: every entry records the global
//     generation at insert; InvalidateAll() bumps the generation, instantly
//     orphaning every cached entry without walking anything. Rename uses
//     this — moving a directory re-homes an entire subtree, and a recursive
//     invalidation walk would cost exactly the tree walk the cache exists to
//     avoid.
//
// Coherence contract: the owner (SafeFs) mutates the cache only while
// holding the lock that orders its directory mutations, at the same choke
// points that write dirent blocks. The cache is therefore a pure
// acceleration layer — dropping it (or disabling it) never changes observable
// behaviour, which tests/dcache_coherence_test.cc proves against the
// executable specification and a cache-disabled run.
#ifndef SKERN_SRC_VFS_DCACHE_H_
#define SKERN_SRC_VFS_DCACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace skern {

// Aggregated view of the cache's counters (per-shard tallies summed).
struct DcacheStats {
  uint64_t hits = 0;            // positive entry satisfied a lookup
  uint64_t misses = 0;          // no entry (or a stale-generation one)
  uint64_t negative_hits = 0;   // negative entry satisfied a lookup
  uint64_t inserts = 0;         // positive + negative insertions
  uint64_t invalidations = 0;   // InvalidateAll() generation bumps
  uint64_t evictions = 0;       // LRU capacity evictions
  uint64_t entries = 0;         // current residency (positive + negative)
};

class DentryCache {
 public:
  static constexpr size_t kDefaultCapacity = 8192;
  static constexpr size_t kDefaultShardHint = 8;
  static constexpr size_t kMinEntriesPerShard = 8;

  enum class Outcome : uint8_t { kMiss = 0, kPositive, kNegative };
  struct LookupResult {
    Outcome outcome = Outcome::kMiss;
    uint64_t child_ino = 0;  // valid only for kPositive
  };

  explicit DentryCache(size_t capacity = kDefaultCapacity,
                       size_t shard_hint = kDefaultShardHint);
  ~DentryCache();

  DentryCache(const DentryCache&) = delete;
  DentryCache& operator=(const DentryCache&) = delete;

  // Probes for (parent_ino, name). A hit refreshes the entry's LRU position;
  // an entry from a stale generation is dropped and reported as a miss.
  LookupResult Lookup(uint64_t parent_ino, std::string_view name);

  // Records that `name` exists under `parent_ino` with inode `child_ino`.
  // Overwrites any existing (including negative) entry for the key.
  void InsertPositive(uint64_t parent_ino, std::string_view name, uint64_t child_ino);

  // Records that `name` does not exist under `parent_ino`.
  void InsertNegative(uint64_t parent_ino, std::string_view name);

  // Drops the entry for (parent_ino, name), if any.
  void Erase(uint64_t parent_ino, std::string_view name);

  // Bumps the generation: every currently cached entry becomes stale at once
  // (O(1), no walk). Used by rename, which can re-home whole subtrees.
  void InvalidateAll();

  // Drops every entry immediately (used when acceleration is toggled).
  void Clear();

  DcacheStats StatsSnapshot() const;
  size_t shard_count() const { return shards_count_; }
  uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

 private:
  struct Shard;

  Shard& ShardFor(uint64_t parent_ino, std::string_view name) const;
  static uint64_t HashKey(uint64_t parent_ino, std::string_view name);

  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> invalidations_{0};
  size_t shards_count_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace skern

#endif  // SKERN_SRC_VFS_DCACHE_H_
