// The modular, type-safe file-system interface (roadmap steps 1 + 2).
//
// Step 1 (modularity): callers — the VFS façade, examples, benchmarks — may
// only reach a file system through this interface; implementations are
// swappable via ImplementationSlot without touching callers.
//
// Step 2 (type safety): no void pointers cross this boundary and no error
// values are punned into pointers. Every fallible operation returns Status or
// Result<T> — "a union type that can hold either valid data or an error"
// (§4.2). Contrast with legacy_ops.h, the C-style table legacyfs natively
// implements.
//
// The interface is path-based and mirrors the executable specification
// (src/spec/fs_model.h) operation for operation, which is what makes
// refinement checking (specfs) a mechanical decorator.
#ifndef SKERN_SRC_VFS_FILESYSTEM_H_
#define SKERN_SRC_VFS_FILESYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/cred.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sync/annotations.h"

namespace skern {

struct FileAttr {
  bool is_dir = false;
  uint64_t size = 0;

  // Ownership and permission bits (low 9 bits, POSIX triads). Path-only file
  // systems that predate the credential model (memfs, legacyfs, procfs) leave
  // the defaults — world-accessible, root-owned — which preserves their exact
  // pre-credential behavior. operator== deliberately ignores these: the
  // refinement/differential suites compare namespace shape and data, and the
  // spec model carries no ownership state.
  uint32_t mode = 0777;
  uint32_t uid = 0;
  uint32_t gid = 0;

  friend bool operator==(const FileAttr& a, const FileAttr& b) {
    return a.is_dir == b.is_dir && a.size == b.size;
  }
};

// DAC check against a stat result; see src/base/cred.h for the base form.
inline Status CheckPermission(const Cred& cred, const FileAttr& attr, uint32_t want) {
  return CheckPermission(cred, attr.mode, attr.uid, attr.gid, want);
}

// Opaque per-open handle for the fd data plane. A handle pins the *path* the
// descriptor was opened with — not the inode — so handle I/O stays observably
// identical to the path API: if the name is unlinked or renamed away, handle
// operations fail exactly like a fresh path walk would (this VFS has no
// open-unlink semantics; see src/vfs/vfs.h). What the handle buys is the
// steady state: while the namespace is quiet, I/O through it never walks the
// path again.
using InodeHandle = uint64_t;
inline constexpr InodeHandle kInvalidHandle = 0;

// One positional write in a vectored batch (WriteAtBatch). The view borrows
// the caller's buffer; it must stay valid for the duration of the call.
struct WriteSlice {
  uint64_t offset = 0;
  ByteView data;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // The SKERN_PROTECTED methods below are the resource accessors of the
  // access-control analysis (safety_lint rules A001/A002): every call path
  // from an SKERN_ENTRY function (the Vfs boundary) to one of these must
  // pass through a permission check first.

  // Creates an empty regular file. kEEXIST if anything is already there.
  SKERN_PROTECTED virtual Status Create(const std::string& path) = 0;
  SKERN_PROTECTED virtual Status Mkdir(const std::string& path) = 0;
  SKERN_PROTECTED virtual Status Unlink(const std::string& path) = 0;
  SKERN_PROTECTED virtual Status Rmdir(const std::string& path) = 0;

  // Writes all of `data` at `offset`, zero-filling any gap beyond EOF.
  SKERN_PROTECTED virtual Status Write(const std::string& path, uint64_t offset,
                                       ByteView data) = 0;

  // Reads up to `length` bytes at `offset`; short reads only at EOF.
  SKERN_PROTECTED virtual Result<Bytes> Read(const std::string& path, uint64_t offset,
                                             uint64_t length) = 0;

  SKERN_PROTECTED virtual Status Truncate(const std::string& path, uint64_t new_size) = 0;
  SKERN_PROTECTED virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Result<FileAttr> Stat(const std::string& path) = 0;

  // Immediate children names, sorted.
  SKERN_PROTECTED virtual Result<std::vector<std::string>> Readdir(const std::string& path) = 0;

  // Permission/ownership mutation. Implementations persist the low 9 mode
  // bits and the owner ids; the default is kENOSYS so path-only file systems
  // stay source-compatible (the Vfs surfaces that as-is — chmod on memfs is
  // simply unsupported, like handle I/O).
  SKERN_PROTECTED virtual Status Chmod(const std::string& path, uint32_t mode) {
    (void)path, (void)mode;
    return Status::Error(Errno::kENOSYS);
  }
  SKERN_PROTECTED virtual Status Chown(const std::string& path, uint32_t uid, uint32_t gid) {
    (void)path, (void)uid, (void)gid;
    return Status::Error(Errno::kENOSYS);
  }

  // Durability: everything completed before Sync survives a crash.
  virtual Status Sync() = 0;
  // Per-file durability. (The journaling implementations commit the whole
  // running transaction, giving at least the requested guarantee.)
  virtual Status Fsync(const std::string& path) = 0;

  virtual std::string Name() const = 0;

  // ---- Handle-based data plane (optional acceleration) -------------------
  //
  // Implementations that can pin an open file may override this block; the
  // defaults keep every path-only file system (memfs, legacyfs shim, procfs,
  // specfs) source-compatible. Callers must treat kENOSYS as "use the path
  // API" — Vfs::Open does exactly that and falls back silently.
  //
  // Contract: every handle operation is observably identical to the
  // corresponding path operation on the opened path, including error codes
  // and injected semantic faults. Acceleration may change timing only.

  virtual bool SupportsHandleIo() const { return false; }

  // Pins `path` (a normalized absolute path to an existing regular file) and
  // returns a handle for it. kEISDIR for directories.
  SKERN_PROTECTED virtual Result<InodeHandle> OpenByPath(const std::string& path) {
    (void)path;
    return Errno::kENOSYS;
  }

  // Releases a handle. Unknown handles are ignored (close is idempotent).
  virtual void CloseHandle(InodeHandle handle) { (void)handle; }

  // Reads up to `length` bytes at `offset`; short reads only at EOF.
  SKERN_PROTECTED virtual Result<Bytes> ReadAt(InodeHandle handle, uint64_t offset,
                                               uint64_t length) {
    (void)handle, (void)offset, (void)length;
    return Errno::kENOSYS;
  }

  // Writes all of `data` at `offset`, zero-filling any gap beyond EOF.
  SKERN_PROTECTED virtual Status WriteAt(InodeHandle handle, uint64_t offset, ByteView data) {
    (void)handle, (void)offset, (void)data;
    return Status::Error(Errno::kENOSYS);
  }

  // Vectored writes: applies `slices` in order, exactly as consecutive
  // WriteAt calls would, and returns how many were fully applied. An
  // implementation may stop early at any slice it cannot take on its fast
  // path (or that fails) — the caller finishes the remainder op by op
  // through WriteAt, which reproduces the per-op result. This is purely an
  // amortization surface for the async submission plane: one handle
  // resolution and one lock round-trip cover a whole submission-ring run.
  SKERN_PROTECTED virtual Result<size_t> WriteAtBatch(InodeHandle handle,
                                                      const WriteSlice* slices, size_t count) {
    (void)handle, (void)slices, (void)count;
    return Errno::kENOSYS;
  }

  virtual Result<FileAttr> StatHandle(InodeHandle handle) {
    (void)handle;
    return Errno::kENOSYS;
  }

  virtual Status FsyncHandle(InodeHandle handle) {
    (void)handle;
    return Status::Error(Errno::kENOSYS);
  }
};

}  // namespace skern

#endif  // SKERN_SRC_VFS_FILESYSTEM_H_
