// The generic in-memory inode, reproduced with Linux's sharing hazards.
//
// §4.3's exhibit: "the kernel's generic inode data structure is passed from
// the VFS layer to the file system on most file system calls. Many of the
// inode's fields aren't associated with any inode-level synchronization
// mechanism... Three fields are explicitly protected by the i_lock field,
// but one of those three, the i_size field, is only *maybe* protected,
// according to the relevant comment."
//
// This struct is used by the legacy (unsafe) file system exactly the way
// Linux uses struct inode: non-const pointers handed across the boundary,
// i_private as a void* for fs-specific data, and locking rules that live in
// comments. The safe file systems do not use it at all — their state is
// private and typed — which is the migration the paper prescribes.
#ifndef SKERN_SRC_VFS_INODE_H_
#define SKERN_SRC_VFS_INODE_H_

#include <atomic>
#include <cstdint>

#include "src/sync/spinlock.h"

namespace skern {

inline constexpr uint32_t kSIfReg = 0x8000;
inline constexpr uint32_t kSIfDir = 0x4000;

struct LegacyInode {
  uint64_t i_ino = 0;
  uint32_t i_mode = 0;  // kSIfReg / kSIfDir plus permission bits
  uint32_t i_nlink = 0;

  // Protects i_blocks, i_bytes and (maybe) i_size below.
  Spinlock i_lock;

  // i_size: "Note: i_size is protected by i_lock ... *maybe* — some code
  // paths update it under i_lock, others rely on being the only writer."
  // (paraphrasing the fs.h comment the paper cites). legacyfs reproduces
  // both behaviours; the race between them is one of the injectable bugs.
  uint64_t i_size = 0;

  uint64_t i_blocks = 0;
  uint64_t i_mtime = 0;
  uint64_t i_ctime = 0;

  // Filesystem-private data. The type is known only by convention — the
  // void* hazard of §4.2/§4.3.
  void* i_private = nullptr;

  std::atomic<int32_t> i_count{0};  // reference count
  uint64_t i_generation = 0;

  bool IsDir() const { return (i_mode & kSIfDir) != 0; }
  bool IsReg() const { return (i_mode & kSIfReg) != 0; }
};

}  // namespace skern

#endif  // SKERN_SRC_VFS_INODE_H_
