#include "src/vfs/legacy_ops.h"

#include <algorithm>

#include "src/base/err_ptr.h"

namespace skern {

Status LegacyAdapter::Create(const std::string& path) {
  return FromErr(ops_->create(sb_, path.c_str()));
}

Status LegacyAdapter::Mkdir(const std::string& path) {
  return FromErr(ops_->mkdir(sb_, path.c_str()));
}

Status LegacyAdapter::Unlink(const std::string& path) {
  return FromErr(ops_->unlink(sb_, path.c_str()));
}

Status LegacyAdapter::Rmdir(const std::string& path) {
  return FromErr(ops_->rmdir(sb_, path.c_str()));
}

Status LegacyAdapter::Write(const std::string& path, uint64_t offset, ByteView data) {
  void* node = ops_->lookup(sb_, path.c_str());
  if (IsErr(node)) {
    return Status::Error(PtrErr(node));
  }
  // The write_begin / write_end protocol with its void* cookie.
  void* fsdata = nullptr;
  int err = ops_->write_begin(sb_, node, offset, data.size(), &fsdata);
  if (err < 0) {
    ops_->put_node(sb_, node);
    return FromErr(err);
  }
  int64_t written = ops_->write(sb_, node, offset,
                                reinterpret_cast<const char*>(data.data()), data.size());
  int end_err = ops_->write_end(sb_, node, offset, data.size(), fsdata);
  ops_->put_node(sb_, node);
  if (written < 0) {
    return FromErr(static_cast<int>(written));
  }
  if (end_err < 0) {
    return FromErr(end_err);
  }
  if (static_cast<uint64_t>(written) != data.size()) {
    return Status::Error(Errno::kEIO);  // short write from the legacy layer
  }
  return Status::Ok();
}

Result<Bytes> LegacyAdapter::Read(const std::string& path, uint64_t offset, uint64_t length) {
  void* node = ops_->lookup(sb_, path.c_str());
  if (IsErr(node)) {
    return PtrErr(node);
  }
  Bytes out(length, 0);
  int64_t n = ops_->read(sb_, node, offset, reinterpret_cast<char*>(out.data()), length);
  ops_->put_node(sb_, node);
  if (n < 0) {
    return static_cast<Errno>(-n);
  }
  out.resize(static_cast<size_t>(n));
  return out;
}

Status LegacyAdapter::Truncate(const std::string& path, uint64_t new_size) {
  void* node = ops_->lookup(sb_, path.c_str());
  if (IsErr(node)) {
    return Status::Error(PtrErr(node));
  }
  int err = ops_->truncate(sb_, node, new_size);
  ops_->put_node(sb_, node);
  return FromErr(err);
}

Status LegacyAdapter::Rename(const std::string& from, const std::string& to) {
  return FromErr(ops_->rename(sb_, from.c_str(), to.c_str()));
}

Result<FileAttr> LegacyAdapter::Stat(const std::string& path) {
  void* node = ops_->lookup(sb_, path.c_str());
  if (IsErr(node)) {
    return PtrErr(node);
  }
  uint32_t mode = 0;
  uint64_t size = 0;
  int err = ops_->getattr(sb_, node, &mode, &size);
  ops_->put_node(sb_, node);
  if (err < 0) {
    return static_cast<Errno>(-err);
  }
  FileAttr attr;
  attr.is_dir = (mode & 0x4000) != 0;
  attr.size = attr.is_dir ? 0 : size;
  return attr;
}

Result<std::vector<std::string>> LegacyAdapter::Readdir(const std::string& path) {
  void* node = ops_->lookup(sb_, path.c_str());
  if (IsErr(node)) {
    return PtrErr(node);
  }
  std::vector<std::string> names;
  auto emit = [](void* ctx, const char* name) {
    static_cast<std::vector<std::string>*>(ctx)->push_back(name);
  };
  int err = ops_->readdir(sb_, node, emit, &names);
  ops_->put_node(sb_, node);
  if (err < 0) {
    return static_cast<Errno>(-err);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status LegacyAdapter::Sync() { return FromErr(ops_->sync(sb_)); }

Status LegacyAdapter::Fsync(const std::string& path) {
  // The legacy layer has no per-file durability; fsync degrades to sync.
  (void)path;
  return Sync();
}

}  // namespace skern
