// The C-style file-system ops table — the "before" picture of step 2.
//
// This is the interface style the paper's §4.2 critiques: void* superblock
// and node handles whose real types are known only by convention, pointer
// returns that encode errors via ERR_PTR casting, out-parameters, and int
// errno returns. legacyfs implements this table natively; LegacyAdapter
// bridges it onto the typed FileSystem interface so the rest of the kernel
// can treat legacyfs as just another (unsafe) implementation behind the
// modular boundary.
#ifndef SKERN_SRC_VFS_LEGACY_OPS_H_
#define SKERN_SRC_VFS_LEGACY_OPS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/vfs/filesystem.h"

namespace skern {

// All handles are void*: `sb` is the filesystem's superblock object and
// `node` an inode-like object; only the implementation knows the real types.
struct LegacyFsOps {
  // Returns a node pointer or an ERR_PTR-encoded errno (never null).
  void* (*lookup)(void* sb, const char* path);

  // Releases a node handle returned by lookup.
  void (*put_node)(void* sb, void* node);

  // ints are negative errno on failure, like the syscall ABI.
  int (*create)(void* sb, const char* path);
  int (*mkdir)(void* sb, const char* path);
  int (*unlink)(void* sb, const char* path);
  int (*rmdir)(void* sb, const char* path);

  // Returns bytes transferred or negative errno.
  int64_t (*read)(void* sb, void* node, uint64_t offset, char* buf, uint64_t len);
  int64_t (*write)(void* sb, void* node, uint64_t offset, const char* buf, uint64_t len);

  int (*truncate)(void* sb, void* node, uint64_t size);
  int (*rename)(void* sb, const char* from, const char* to);

  // Fills out-params; returns negative errno.
  int (*getattr)(void* sb, void* node, uint32_t* mode_out, uint64_t* size_out);

  // Iterates directory entries: calls emit(ctx, name) per entry.
  int (*readdir)(void* sb, void* node, void (*emit)(void* ctx, const char* name), void* ctx);

  int (*sync)(void* sb);

  // write_begin/write_end: the VFS hands fs-private state between the two
  // calls through a void** cookie — the exact §4.2 example ("VFS allows a
  // file system to pass custom data between write_begin and write_end by
  // passing void pointers to the two functions").
  int (*write_begin)(void* sb, void* node, uint64_t offset, uint64_t len, void** fsdata);
  int (*write_end)(void* sb, void* node, uint64_t offset, uint64_t len, void* fsdata);
};

// Bridges a LegacyFsOps implementation onto the typed FileSystem interface.
// The adapter performs the casts and ERR_PTR checks in one audited place —
// the "shim layer ... between every incremental boundary" (§4.4), here at
// the unsafe->modular edge.
class LegacyAdapter : public FileSystem {
 public:
  LegacyAdapter(const LegacyFsOps* ops, void* sb, std::string name)
      : ops_(ops), sb_(sb), name_(std::move(name)) {}

  Status Create(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Write(const std::string& path, uint64_t offset, ByteView data) override;
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileAttr> Stat(const std::string& path) override;
  Result<std::vector<std::string>> Readdir(const std::string& path) override;
  Status Sync() override;
  Status Fsync(const std::string& path) override;
  std::string Name() const override { return name_; }

 private:
  static Status FromErr(int err) {
    return err >= 0 ? Status::Ok() : Status::Error(static_cast<Errno>(-err));
  }

  const LegacyFsOps* ops_;
  void* sb_;
  std::string name_;
};

}  // namespace skern

#endif  // SKERN_SRC_VFS_LEGACY_OPS_H_
