#include "src/vfs/vfs.h"

#include "src/base/cred.h"
#include "src/base/path.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace skern {

Status Vfs::Mount(const std::string& mountpoint, std::shared_ptr<FileSystem> fs) {
  SKERN_ASSIGN_OR_RETURN(std::string mp, specpath::Normalize(mountpoint));
  MutexGuard guard(mutex_);
  if (mounts_.empty() && mp != "/") {
    return Status::Error(Errno::kEINVAL);  // first mount must be root
  }
  if (mounts_.count(mp) > 0) {
    return Status::Error(Errno::kEBUSY);
  }
  mounts_[mp] = std::move(fs);
  return Status::Ok();
}

Status Vfs::Unmount(const std::string& mountpoint) {
  SKERN_ASSIGN_OR_RETURN(std::string mp, specpath::Normalize(mountpoint));
  MutexGuard guard(mutex_);
  auto it = mounts_.find(mp);
  if (it == mounts_.end()) {
    return Status::Error(Errno::kEINVAL);
  }
  // Open files on this mount pin it.
  for (const auto& [fd, file] : open_files_) {
    if (file->fs == it->second) {
      return Status::Error(Errno::kEBUSY);
    }
  }
  mounts_.erase(it);
  return Status::Ok();
}

std::vector<std::string> Vfs::Mountpoints() const {
  MutexGuard guard(mutex_);
  std::vector<std::string> out;
  out.reserve(mounts_.size());
  for (const auto& [mp, fs] : mounts_) {
    out.push_back(mp);
  }
  return out;
}

Result<Vfs::ResolvedPath> Vfs::Resolve(const std::string& path) const {
  // Fast path: most caller-supplied paths (and every internally generated
  // fs_path) are already canonical, so resolution needs no re-parse — and
  // because the VFS normalizes here, once, the canonical string it hands
  // down hits the same fast path in the file system's own Normalize call
  // instead of being parsed a second time.
  std::string p;
  if (specpath::IsNormalized(path)) {
    SKERN_COUNTER_INC("vfs.resolve.fastpath");
    p = path;
  } else {
    SKERN_ASSIGN_OR_RETURN(p, specpath::Normalize(path));
  }
  MutexGuard guard(mutex_);
  // Longest mountpoint that prefixes p wins.
  const std::string* best = nullptr;
  std::shared_ptr<FileSystem> fs;
  for (const auto& [mp, mounted] : mounts_) {
    if (specpath::IsPrefix(mp, p) && (best == nullptr || mp.size() > best->size())) {
      best = &mp;
      fs = mounted;
    }
  }
  if (fs == nullptr) {
    return Errno::kENODEV;
  }
  std::string inner = *best == "/" ? p : p.substr(best->size());
  if (inner.empty()) {
    inner.push_back('/');
  }
  return ResolvedPath{std::move(fs), std::move(inner)};
}

Status Vfs::CheckAttrAccess(const Cred& cred, const FileAttr& attr, uint32_t want) {
  SKERN_COUNTER_INC("vfs.perm.checks");
  Status st = CheckPermission(cred, attr, want);
  if (!st.ok()) {
    SKERN_COUNTER_INC("vfs.perm.denied");
  }
  return st;
}

Status Vfs::CheckPathAccess(const ResolvedPath& r, const Cred& cred, uint32_t want) {
  if (cred.HasCap(kCapDacOverride)) {
    return CheckAttrAccess(cred, FileAttr{}, want);  // counted; always passes
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  auto attr = r.fs->Stat(r.fs_path);
  if (!attr.ok()) {
    return Status::Error(attr.error());
  }
  return CheckAttrAccess(cred, *attr, want);
}

Status Vfs::CheckParentAccess(const ResolvedPath& r, const Cred& cred, uint32_t want) {
  if (cred.HasCap(kCapDacOverride)) {
    return CheckAttrAccess(cred, FileAttr{}, want);
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  auto attr = r.fs->Stat(specpath::Parent(r.fs_path));
  if (!attr.ok()) {
    return Status::Error(attr.error());
  }
  return CheckAttrAccess(cred, *attr, want);
}

Status Vfs::CheckFileAccess(OpenFile& file, const Cred& cred, uint32_t want) {
  if (cred.HasCap(kCapDacOverride)) {
    return CheckAttrAccess(cred, FileAttr{}, want);
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  auto attr = DispatchStat(file);
  if (!attr.ok()) {
    return Status::Error(attr.error());
  }
  return CheckAttrAccess(cred, *attr, want);
}

Status Vfs::Mkdir(const std::string& path) {
  SKERN_COUNTER_INC("vfs.mkdir.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  SKERN_RETURN_IF_ERROR(CheckParentAccess(r, CurrentCred(), kWantWrite));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Mkdir(r.fs_path);
}

Status Vfs::Rmdir(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  SKERN_RETURN_IF_ERROR(CheckParentAccess(r, CurrentCred(), kWantWrite));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Rmdir(r.fs_path);
}

Status Vfs::Unlink(const std::string& path) {
  SKERN_COUNTER_INC("vfs.unlink.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  SKERN_RETURN_IF_ERROR(CheckParentAccess(r, CurrentCred(), kWantWrite));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Unlink(r.fs_path);
}

Status Vfs::Rename(const std::string& from, const std::string& to) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath rf, Resolve(from));
  SKERN_ASSIGN_OR_RETURN(ResolvedPath rt, Resolve(to));
  if (rf.fs != rt.fs) {
    return Status::Error(Errno::kEXDEV);
  }
  SKERN_RETURN_IF_ERROR(CheckParentAccess(rf, CurrentCred(), kWantWrite));
  SKERN_RETURN_IF_ERROR(CheckParentAccess(rt, CurrentCred(), kWantWrite));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return rf.fs->Rename(rf.fs_path, rt.fs_path);
}

Result<FileAttr> Vfs::Stat(const std::string& path) {
  SKERN_COUNTER_INC("vfs.stat.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  // POSIX: stat needs search (+x) on the directory, not read on the target.
  SKERN_RETURN_IF_ERROR(CheckParentAccess(r, CurrentCred(), kWantExec));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Stat(r.fs_path);
}

Result<std::vector<std::string>> Vfs::Readdir(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  SKERN_RETURN_IF_ERROR(CheckPathAccess(r, CurrentCred(), kWantRead));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Readdir(r.fs_path);
}

Status Vfs::Truncate(const std::string& path, uint64_t size) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  SKERN_RETURN_IF_ERROR(CheckPathAccess(r, CurrentCred(), kWantWrite));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Truncate(r.fs_path, size);
}

Status Vfs::Chmod(const std::string& path, uint32_t mode) {
  SKERN_COUNTER_INC("vfs.chmod.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  auto attr = r.fs->Stat(r.fs_path);
  if (!attr.ok()) {
    return Status::Error(attr.error());
  }
  // Only the owner (or kCapFowner) may change a file's mode — EPERM, not
  // EACCES, on failure, mirroring POSIX chmod(2).
  SKERN_COUNTER_INC("vfs.perm.checks");
  Status owner = CheckOwner(CurrentCred(), attr->uid);
  if (!owner.ok()) {
    SKERN_COUNTER_INC("vfs.perm.denied");
    return owner;
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Chmod(r.fs_path, mode & 0777u);
}

Status Vfs::Chown(const std::string& path, uint32_t uid, uint32_t gid) {
  SKERN_COUNTER_INC("vfs.chown.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  // Changing ownership is a privileged operation (kCapChown), like Linux
  // without the "chown to self's groups" refinement.
  SKERN_COUNTER_INC("vfs.perm.checks");
  if (!CurrentCred().HasCap(kCapChown)) {
    SKERN_COUNTER_INC("vfs.perm.denied");
    return Status::Error(Errno::kEPERM);
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  return r.fs->Chown(r.fs_path, uid, gid);
}

Status Vfs::SyncAll() {
  std::vector<std::shared_ptr<FileSystem>> all;
  {
    MutexGuard guard(mutex_);
    for (const auto& [mp, fs] : mounts_) {
      all.push_back(fs);
    }
  }
  for (const auto& fs : all) {
    counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
    SKERN_RETURN_IF_ERROR(fs->Sync());
  }
  return Status::Ok();
}

Result<Fd> Vfs::Open(const std::string& path, uint32_t flags) {
  SKERN_SPAN_LOCKED("vfs", "open");
  SKERN_TIMED_SCOPE("vfs.open.latency_ns");
  SKERN_COUNTER_INC("vfs.open.count");
  SKERN_TRACE("vfs", "open", flags);
  if ((flags & (kOpenRead | kOpenWrite)) == 0) {
    return Errno::kEINVAL;
  }
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  auto attr = r.fs->Stat(r.fs_path);
  bool created = false;
  if (!attr.ok()) {
    if (attr.error() != Errno::kENOENT || (flags & kOpenCreate) == 0) {
      return attr.error();
    }
    // Creating a name requires write permission on the parent directory.
    SKERN_RETURN_IF_ERROR(CheckParentAccess(r, CurrentCred(), kWantWrite));
    counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
    SKERN_RETURN_IF_ERROR(r.fs->Create(r.fs_path));
    attr = FileAttr{false, 0};
    created = true;
  }
  if (attr->is_dir) {
    return Errno::kEISDIR;
  }
  if (!created) {
    // Opening an existing file checks the file's own bits for every access
    // mode requested; a just-created file is accessible to its creator by
    // definition (like POSIX O_CREAT, whose umask applies only later).
    uint32_t want = 0;
    if ((flags & kOpenRead) != 0) {
      want |= kWantRead;
    }
    if ((flags & kOpenWrite) != 0) {
      want |= kWantWrite;
    }
    SKERN_RETURN_IF_ERROR(CheckAttrAccess(CurrentCred(), *attr, want));
  }
  if ((flags & kOpenTrunc) != 0 && (flags & kOpenWrite) != 0) {
    counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
    SKERN_RETURN_IF_ERROR(r.fs->Truncate(r.fs_path, 0));
    attr->size = 0;
  }
  // Pin an inode handle for the data plane. Failure is not an error: the
  // path was stat-able a moment ago, so either the fs has no handle support
  // (kENOSYS) or a concurrent namespace change raced us — both mean "use
  // path dispatch", which is always correct.
  InodeHandle handle = kInvalidHandle;
  if (handle_accel_.load(std::memory_order_relaxed) && r.fs->SupportsHandleIo()) {
    counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
    auto opened = r.fs->OpenByPath(r.fs_path);
    if (opened.ok()) {
      handle = *opened;
    }
  }
  // Adoption form (not make_shared) so the open-file record lands on its
  // named slab cache via the class operator new (M001).
  auto file = std::shared_ptr<OpenFile>(new OpenFile());
  file->fs = r.fs;
  file->fs_path = r.fs_path;
  file->flags = flags;
  file->handle = handle;
  {
    SpinLockGuard pos(file->pos_lock);
    file->cursor = (flags & kOpenAppend) != 0 ? attr->size : 0;
  }
  {
    MutexGuard guard(mutex_);
    if (open_files_.size() < max_open_files_) {
      Fd fd = next_fd_++;
      open_files_.emplace(fd, std::move(file));
      counters_.opens.fetch_add(1, std::memory_order_relaxed);
      return fd;
    }
  }
  if (handle != kInvalidHandle) {
    counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
    r.fs->CloseHandle(handle);
  }
  return Errno::kEMFILE;
}

Status Vfs::Close(Fd fd) {
  std::shared_ptr<OpenFile> file;
  {
    MutexGuard guard(mutex_);
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) {
      return Status::Error(Errno::kEBADF);
    }
    file = std::move(it->second);
    open_files_.erase(it);
  }
  if (file->handle != kInvalidHandle) {
    counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
    file->fs->CloseHandle(file->handle);
  }
  return Status::Ok();
}

Result<std::shared_ptr<Vfs::OpenFile>> Vfs::FindFd(Fd fd) const {
  MutexGuard guard(mutex_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return Errno::kEBADF;
  }
  return it->second;
}

Result<Bytes> Vfs::DispatchRead(OpenFile& file, uint64_t offset, uint64_t length) {
  if (file.handle != kInvalidHandle) {
    auto out = file.fs->ReadAt(file.handle, offset, length);
    if (out.ok() || out.error() != Errno::kENOSYS) {
      return out;
    }
  }
  return file.fs->Read(file.fs_path, offset, length);
}

Status Vfs::DispatchWrite(OpenFile& file, uint64_t offset, ByteView data) {
  if (file.handle != kInvalidHandle) {
    Status out = file.fs->WriteAt(file.handle, offset, data);
    if (out.ok() || out.code() != Errno::kENOSYS) {
      return out;
    }
  }
  return file.fs->Write(file.fs_path, offset, data);
}

size_t Vfs::DispatchWriteBatch(OpenFile& file, const WriteSlice* slices, size_t count) {
  if (file.handle == kInvalidHandle) {
    return 0;
  }
  auto applied = file.fs->WriteAtBatch(file.handle, slices, count);
  return applied.ok() ? *applied : 0;
}

Result<FileAttr> Vfs::DispatchStat(OpenFile& file) {
  if (file.handle != kInvalidHandle) {
    auto out = file.fs->StatHandle(file.handle);
    if (out.ok() || out.error() != Errno::kENOSYS) {
      return out;
    }
  }
  return file.fs->Stat(file.fs_path);
}

Result<Bytes> Vfs::Read(Fd fd, uint64_t length) {
  SKERN_SPAN_LOCKED("vfs", "read");
  SKERN_TIMED_SCOPE("vfs.read.latency_ns");
  SKERN_COUNTER_INC("vfs.read.count");
  SKERN_TRACE("vfs", "read", static_cast<uint64_t>(fd), length);
  SKERN_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, FindFd(fd));
  if ((file->flags & kOpenRead) == 0) {
    return Errno::kEBADF;
  }
  SKERN_RETURN_IF_ERROR(CheckFileAccess(*file, CurrentCred(), kWantRead));
  uint64_t offset = 0;
  {
    SpinLockGuard pos(file->pos_lock);
    offset = file->cursor;
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  SKERN_ASSIGN_OR_RETURN(Bytes data, DispatchRead(*file, offset, length));
  {
    SpinLockGuard pos(file->pos_lock);
    file->cursor = offset + data.size();
  }
  return data;
}

Status Vfs::Write(Fd fd, ByteView data) {
  SKERN_SPAN_LOCKED("vfs", "write");
  SKERN_TIMED_SCOPE("vfs.write.latency_ns");
  SKERN_COUNTER_INC("vfs.write.count");
  SKERN_TRACE("vfs", "write", static_cast<uint64_t>(fd), data.size());
  SKERN_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, FindFd(fd));
  if ((file->flags & kOpenWrite) == 0) {
    return Status::Error(Errno::kEBADF);
  }
  SKERN_RETURN_IF_ERROR(CheckFileAccess(*file, CurrentCred(), kWantWrite));
  uint64_t offset = 0;
  if ((file->flags & kOpenAppend) != 0) {
    // Re-stat so appends land at the current EOF even if someone else grew
    // the file; a failed stat keeps the last cursor (mirrors the path-era
    // behaviour). The fs call happens before pos_lock — never under it.
    auto attr = DispatchStat(*file);
    SpinLockGuard pos(file->pos_lock);
    if (attr.ok()) {
      file->cursor = attr->size;
    }
    offset = file->cursor;
  } else {
    SpinLockGuard pos(file->pos_lock);
    offset = file->cursor;
  }
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  SKERN_RETURN_IF_ERROR(DispatchWrite(*file, offset, data));
  {
    SpinLockGuard pos(file->pos_lock);
    file->cursor = offset + data.size();
  }
  return Status::Ok();
}

Result<Bytes> Vfs::Pread(Fd fd, uint64_t offset, uint64_t length) {
  SKERN_SPAN("vfs", "pread");
  SKERN_TIMED_SCOPE("vfs.read.latency_ns");
  SKERN_COUNTER_INC("vfs.read.count");
  SKERN_TRACE("vfs", "pread", static_cast<uint64_t>(fd), length);
  SKERN_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, FindFd(fd));
  if ((file->flags & kOpenRead) == 0) {
    return Errno::kEBADF;
  }
  SKERN_RETURN_IF_ERROR(CheckFileAccess(*file, CurrentCred(), kWantRead));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  return DispatchRead(*file, offset, length);
}

Status Vfs::Pwrite(Fd fd, uint64_t offset, ByteView data) {
  SKERN_SPAN("vfs", "pwrite");
  SKERN_TIMED_SCOPE("vfs.write.latency_ns");
  SKERN_COUNTER_INC("vfs.write.count");
  SKERN_TRACE("vfs", "pwrite", static_cast<uint64_t>(fd), data.size());
  SKERN_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, FindFd(fd));
  if ((file->flags & kOpenWrite) == 0) {
    return Status::Error(Errno::kEBADF);
  }
  SKERN_RETURN_IF_ERROR(CheckFileAccess(*file, CurrentCred(), kWantWrite));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  return DispatchWrite(*file, offset, data);
}

Result<uint64_t> Vfs::Seek(Fd fd, uint64_t offset) {
  SKERN_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, FindFd(fd));
  SpinLockGuard pos(file->pos_lock);
  file->cursor = offset;
  return offset;
}

Status Vfs::Fsync(Fd fd) {
  SKERN_SPAN("vfs", "fsync");
  SKERN_TIMED_SCOPE("vfs.fsync.latency_ns");
  SKERN_COUNTER_INC("vfs.fsync.count");
  SKERN_TRACE("vfs", "fsync", static_cast<uint64_t>(fd));
  SKERN_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, FindFd(fd));
  counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  if (file->handle != kInvalidHandle) {
    Status out = file->fs->FsyncHandle(file->handle);
    if (out.ok() || out.code() != Errno::kENOSYS) {
      return out;
    }
  }
  return file->fs->Fsync(file->fs_path);
}

size_t Vfs::OpenFileCount() const {
  MutexGuard guard(mutex_);
  return open_files_.size();
}

VfsStats Vfs::stats() const {
  VfsStats s;
  s.opens = counters_.opens.load(std::memory_order_relaxed);
  s.reads = counters_.reads.load(std::memory_order_relaxed);
  s.writes = counters_.writes.load(std::memory_order_relaxed);
  s.dispatches = counters_.dispatches.load(std::memory_order_relaxed);
  return s;
}

}  // namespace skern
