#include "src/vfs/vfs.h"

#include "src/base/path.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

Status Vfs::Mount(const std::string& mountpoint, std::shared_ptr<FileSystem> fs) {
  SKERN_ASSIGN_OR_RETURN(std::string mp, specpath::Normalize(mountpoint));
  MutexGuard guard(mutex_);
  if (mounts_.empty() && mp != "/") {
    return Status::Error(Errno::kEINVAL);  // first mount must be root
  }
  if (mounts_.count(mp) > 0) {
    return Status::Error(Errno::kEBUSY);
  }
  mounts_[mp] = std::move(fs);
  return Status::Ok();
}

Status Vfs::Unmount(const std::string& mountpoint) {
  SKERN_ASSIGN_OR_RETURN(std::string mp, specpath::Normalize(mountpoint));
  MutexGuard guard(mutex_);
  auto it = mounts_.find(mp);
  if (it == mounts_.end()) {
    return Status::Error(Errno::kEINVAL);
  }
  // Open files on this mount pin it.
  for (const auto& [fd, file] : open_files_) {
    if (file.fs == it->second) {
      return Status::Error(Errno::kEBUSY);
    }
  }
  mounts_.erase(it);
  return Status::Ok();
}

std::vector<std::string> Vfs::Mountpoints() const {
  MutexGuard guard(mutex_);
  std::vector<std::string> out;
  out.reserve(mounts_.size());
  for (const auto& [mp, fs] : mounts_) {
    out.push_back(mp);
  }
  return out;
}

Result<Vfs::ResolvedPath> Vfs::Resolve(const std::string& path) const {
  // Fast path: most caller-supplied paths (and every internally generated
  // fs_path) are already canonical, so resolution needs no re-parse — and
  // because the VFS normalizes here, once, the canonical string it hands
  // down hits the same fast path in the file system's own Normalize call
  // instead of being parsed a second time.
  std::string p;
  if (specpath::IsNormalized(path)) {
    SKERN_COUNTER_INC("vfs.resolve.fastpath");
    p = path;
  } else {
    SKERN_ASSIGN_OR_RETURN(p, specpath::Normalize(path));
  }
  MutexGuard guard(mutex_);
  // Longest mountpoint that prefixes p wins.
  const std::string* best = nullptr;
  std::shared_ptr<FileSystem> fs;
  for (const auto& [mp, mounted] : mounts_) {
    if (specpath::IsPrefix(mp, p) && (best == nullptr || mp.size() > best->size())) {
      best = &mp;
      fs = mounted;
    }
  }
  if (fs == nullptr) {
    return Errno::kENODEV;
  }
  std::string inner = *best == "/" ? p : p.substr(best->size());
  if (inner.empty()) {
    inner = "/";
  }
  return ResolvedPath{std::move(fs), std::move(inner)};
}

Status Vfs::Mkdir(const std::string& path) {
  SKERN_COUNTER_INC("vfs.mkdir.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  return r.fs->Mkdir(r.fs_path);
}

Status Vfs::Rmdir(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  return r.fs->Rmdir(r.fs_path);
}

Status Vfs::Unlink(const std::string& path) {
  SKERN_COUNTER_INC("vfs.unlink.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  return r.fs->Unlink(r.fs_path);
}

Status Vfs::Rename(const std::string& from, const std::string& to) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath rf, Resolve(from));
  SKERN_ASSIGN_OR_RETURN(ResolvedPath rt, Resolve(to));
  if (rf.fs != rt.fs) {
    return Status::Error(Errno::kEXDEV);
  }
  ++stats_.dispatches;
  return rf.fs->Rename(rf.fs_path, rt.fs_path);
}

Result<FileAttr> Vfs::Stat(const std::string& path) {
  SKERN_COUNTER_INC("vfs.stat.count");
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  return r.fs->Stat(r.fs_path);
}

Result<std::vector<std::string>> Vfs::Readdir(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  return r.fs->Readdir(r.fs_path);
}

Status Vfs::Truncate(const std::string& path, uint64_t size) {
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  return r.fs->Truncate(r.fs_path, size);
}

Status Vfs::SyncAll() {
  std::vector<std::shared_ptr<FileSystem>> all;
  {
    MutexGuard guard(mutex_);
    for (const auto& [mp, fs] : mounts_) {
      all.push_back(fs);
    }
  }
  for (const auto& fs : all) {
    ++stats_.dispatches;
    SKERN_RETURN_IF_ERROR(fs->Sync());
  }
  return Status::Ok();
}

Result<Fd> Vfs::Open(const std::string& path, uint32_t flags) {
  SKERN_TIMED_SCOPE("vfs.open.latency_ns");
  SKERN_COUNTER_INC("vfs.open.count");
  SKERN_TRACE("vfs", "open", flags);
  if ((flags & (kOpenRead | kOpenWrite)) == 0) {
    return Errno::kEINVAL;
  }
  SKERN_ASSIGN_OR_RETURN(ResolvedPath r, Resolve(path));
  ++stats_.dispatches;
  auto attr = r.fs->Stat(r.fs_path);
  if (!attr.ok()) {
    if (attr.error() != Errno::kENOENT || (flags & kOpenCreate) == 0) {
      return attr.error();
    }
    ++stats_.dispatches;
    SKERN_RETURN_IF_ERROR(r.fs->Create(r.fs_path));
    attr = FileAttr{false, 0};
  }
  if (attr->is_dir) {
    return Errno::kEISDIR;
  }
  if ((flags & kOpenTrunc) != 0 && (flags & kOpenWrite) != 0) {
    ++stats_.dispatches;
    SKERN_RETURN_IF_ERROR(r.fs->Truncate(r.fs_path, 0));
    attr->size = 0;
  }
  MutexGuard guard(mutex_);
  if (open_files_.size() >= max_open_files_) {
    return Errno::kEMFILE;
  }
  Fd fd = next_fd_++;
  OpenFile file;
  file.fs = r.fs;
  file.fs_path = r.fs_path;
  file.flags = flags;
  file.offset = (flags & kOpenAppend) != 0 ? attr->size : 0;
  open_files_[fd] = std::move(file);
  ++stats_.opens;
  return fd;
}

Status Vfs::Close(Fd fd) {
  MutexGuard guard(mutex_);
  return open_files_.erase(fd) > 0 ? Status::Ok() : Status::Error(Errno::kEBADF);
}

Result<Vfs::OpenFile*> Vfs::FindFd(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return Errno::kEBADF;
  }
  return &it->second;
}

Result<Bytes> Vfs::Read(Fd fd, uint64_t length) {
  SKERN_TIMED_SCOPE("vfs.read.latency_ns");
  SKERN_COUNTER_INC("vfs.read.count");
  SKERN_TRACE("vfs", "read", static_cast<uint64_t>(fd), length);
  std::shared_ptr<FileSystem> fs;
  std::string path;
  uint64_t offset;
  {
    MutexGuard guard(mutex_);
    SKERN_ASSIGN_OR_RETURN(OpenFile * file, FindFd(fd));
    if ((file->flags & kOpenRead) == 0) {
      return Errno::kEBADF;
    }
    fs = file->fs;
    path = file->fs_path;
    offset = file->offset;
  }
  ++stats_.dispatches;
  ++stats_.reads;
  SKERN_ASSIGN_OR_RETURN(Bytes data, fs->Read(path, offset, length));
  {
    MutexGuard guard(mutex_);
    auto it = open_files_.find(fd);
    if (it != open_files_.end()) {
      it->second.offset = offset + data.size();
    }
  }
  return data;
}

Status Vfs::Write(Fd fd, ByteView data) {
  SKERN_TIMED_SCOPE("vfs.write.latency_ns");
  SKERN_COUNTER_INC("vfs.write.count");
  SKERN_TRACE("vfs", "write", static_cast<uint64_t>(fd), data.size());
  std::shared_ptr<FileSystem> fs;
  std::string path;
  uint64_t offset;
  {
    MutexGuard guard(mutex_);
    SKERN_ASSIGN_OR_RETURN(OpenFile * file, FindFd(fd));
    if ((file->flags & kOpenWrite) == 0) {
      return Status::Error(Errno::kEBADF);
    }
    fs = file->fs;
    path = file->fs_path;
    if ((file->flags & kOpenAppend) != 0) {
      auto attr = fs->Stat(path);
      if (attr.ok()) {
        file->offset = attr->size;
      }
    }
    offset = file->offset;
  }
  ++stats_.dispatches;
  ++stats_.writes;
  SKERN_RETURN_IF_ERROR(fs->Write(path, offset, data));
  {
    MutexGuard guard(mutex_);
    auto it = open_files_.find(fd);
    if (it != open_files_.end()) {
      it->second.offset = offset + data.size();
    }
  }
  return Status::Ok();
}

Result<Bytes> Vfs::Pread(Fd fd, uint64_t offset, uint64_t length) {
  SKERN_TIMED_SCOPE("vfs.read.latency_ns");
  SKERN_COUNTER_INC("vfs.read.count");
  SKERN_TRACE("vfs", "pread", static_cast<uint64_t>(fd), length);
  std::shared_ptr<FileSystem> fs;
  std::string path;
  {
    MutexGuard guard(mutex_);
    SKERN_ASSIGN_OR_RETURN(OpenFile * file, FindFd(fd));
    if ((file->flags & kOpenRead) == 0) {
      return Errno::kEBADF;
    }
    fs = file->fs;
    path = file->fs_path;
  }
  ++stats_.dispatches;
  ++stats_.reads;
  return fs->Read(path, offset, length);
}

Status Vfs::Pwrite(Fd fd, uint64_t offset, ByteView data) {
  SKERN_TIMED_SCOPE("vfs.write.latency_ns");
  SKERN_COUNTER_INC("vfs.write.count");
  SKERN_TRACE("vfs", "pwrite", static_cast<uint64_t>(fd), data.size());
  std::shared_ptr<FileSystem> fs;
  std::string path;
  {
    MutexGuard guard(mutex_);
    SKERN_ASSIGN_OR_RETURN(OpenFile * file, FindFd(fd));
    if ((file->flags & kOpenWrite) == 0) {
      return Status::Error(Errno::kEBADF);
    }
    fs = file->fs;
    path = file->fs_path;
  }
  ++stats_.dispatches;
  ++stats_.writes;
  return fs->Write(path, offset, data);
}

Result<uint64_t> Vfs::Seek(Fd fd, uint64_t offset) {
  MutexGuard guard(mutex_);
  SKERN_ASSIGN_OR_RETURN(OpenFile * file, FindFd(fd));
  file->offset = offset;
  return offset;
}

Status Vfs::Fsync(Fd fd) {
  SKERN_TIMED_SCOPE("vfs.fsync.latency_ns");
  SKERN_COUNTER_INC("vfs.fsync.count");
  SKERN_TRACE("vfs", "fsync", static_cast<uint64_t>(fd));
  std::shared_ptr<FileSystem> fs;
  std::string path;
  {
    MutexGuard guard(mutex_);
    SKERN_ASSIGN_OR_RETURN(OpenFile * file, FindFd(fd));
    fs = file->fs;
    path = file->fs_path;
  }
  ++stats_.dispatches;
  return fs->Fsync(path);
}

size_t Vfs::OpenFileCount() const {
  MutexGuard guard(mutex_);
  return open_files_.size();
}

}  // namespace skern
