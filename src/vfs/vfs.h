// The VFS façade: mount table, file descriptors, and the syscall-style API.
//
// The VFS is deliberately thin: it normalizes paths, resolves the longest-
// prefix mount, manages descriptors, and dispatches through the modular
// FileSystem interface. It contains no per-filesystem knowledge — that is the
// whole point of step 1 (contrast §4.1's observation that Linux "references
// to TCP state can be found throughout generic socket code"; here the generic
// layer genuinely knows nothing about its implementations).
//
// Divergence from POSIX, documented: files are addressed by path at the
// FileSystem boundary, so an open descriptor does not pin an unlinked or
// renamed file (no open-unlink semantics). The executable specification has
// the same semantics, which keeps refinement exact.
#ifndef SKERN_SRC_VFS_VFS_H_
#define SKERN_SRC_VFS_VFS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/mem/slab_class.h"
#include "src/sync/mutex.h"
#include "src/vfs/filesystem.h"

namespace skern {

class AioQueue;

enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTrunc = 1u << 3,
  kOpenAppend = 1u << 4,
};

using Fd = int32_t;

struct VfsStats {
  uint64_t opens = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t dispatches = 0;  // FileSystem interface crossings
};

class Vfs {
 public:
  explicit Vfs(size_t max_open_files = 256) : max_open_files_(max_open_files) {}

  // --- mounts ---

  // Mounts `fs` at `mountpoint` (normalized absolute path). The first mount
  // must be at "/". kEBUSY if something is already mounted there.
  Status Mount(const std::string& mountpoint, std::shared_ptr<FileSystem> fs);
  Status Unmount(const std::string& mountpoint);
  std::vector<std::string> Mountpoints() const;

  // --- path syscalls ---
  //
  // Every syscall is an SKERN_ENTRY for the access-control analysis
  // (safety_lint A001/A002): each one checks CurrentCred() against the
  // relevant inode before any SKERN_PROTECTED FileSystem accessor runs.
  // Threads that never install a ScopedCred run as root (kCapDacOverride),
  // which short-circuits every check before it dispatches a Stat — the
  // pre-credential hot paths gain no filesystem round-trips.

  SKERN_ENTRY Status Mkdir(const std::string& path);
  SKERN_ENTRY Status Rmdir(const std::string& path);
  SKERN_ENTRY Status Unlink(const std::string& path);
  // Cross-mount renames are rejected with kEXDEV, like Linux.
  SKERN_ENTRY Status Rename(const std::string& from, const std::string& to);
  SKERN_ENTRY Result<FileAttr> Stat(const std::string& path);
  SKERN_ENTRY Result<std::vector<std::string>> Readdir(const std::string& path);
  SKERN_ENTRY Status Truncate(const std::string& path, uint64_t size);
  // chmod keeps only the low 9 permission bits; the caller must own the file
  // or hold kCapFowner (kEPERM otherwise — ownership, not permission).
  SKERN_ENTRY Status Chmod(const std::string& path, uint32_t mode);
  // chown requires kCapChown, like Linux without the _POSIX_CHOWN_RESTRICTED
  // giveaway exceptions.
  SKERN_ENTRY Status Chown(const std::string& path, uint32_t uid, uint32_t gid);
  // Syncs every mounted file system. Durability needs no permission: the
  // caller holds no resource beyond what prior checked syscalls granted.
  SKERN_ENTRY SKERN_NO_ACCESS_CHECK Status SyncAll();

  // --- descriptor syscalls ---

  SKERN_ENTRY Result<Fd> Open(const std::string& path, uint32_t flags);
  SKERN_ENTRY SKERN_NO_ACCESS_CHECK Status Close(Fd fd);
  // Sequential read/write advance the file offset. Both re-validate the
  // descriptor's access on every call (a cached StatHandle read), so a chmod
  // or chown after open takes effect immediately — this VFS addresses files
  // by path, and descriptor rights follow the inode's current bits.
  SKERN_ENTRY Result<Bytes> Read(Fd fd, uint64_t length);
  SKERN_ENTRY Status Write(Fd fd, ByteView data);
  // Positional variants do not move the offset.
  SKERN_ENTRY Result<Bytes> Pread(Fd fd, uint64_t offset, uint64_t length);
  SKERN_ENTRY Status Pwrite(Fd fd, uint64_t offset, ByteView data);
  SKERN_ENTRY SKERN_NO_ACCESS_CHECK Result<uint64_t> Seek(Fd fd, uint64_t offset);
  SKERN_ENTRY SKERN_NO_ACCESS_CHECK Status Fsync(Fd fd);

  // When enabled (the default) Open also opens an inode handle on file
  // systems that support handle I/O, and the descriptor data plane goes
  // through ReadAt/WriteAt/FsyncHandle instead of re-walking the path on
  // every call. Affects descriptors opened after the call; used by the
  // differential tests and benchmarks to pit the two planes against each
  // other on identical workloads.
  void SetHandleAcceleration(bool enabled) {
    handle_accel_.store(enabled, std::memory_order_relaxed);
  }

  size_t OpenFileCount() const;
  VfsStats stats() const;

 private:
  // The async plane (src/aio) is the one other door into the descriptor
  // table: an AioQueue resolves fds and dispatches batched operations
  // through the same FindFd/Dispatch* internals, so its semantics cannot
  // drift from the syscalls'.
  friend class AioQueue;

  // Per-descriptor state, heap-allocated and shared with in-flight syscalls
  // so the data plane never touches the VFS-wide lock: FindFd copies the
  // shared_ptr out under mutex_, and from there on only the descriptor's own
  // pos_lock (a leaf — nothing else is ever acquired under it) serializes
  // the sequential cursor.
  struct OpenFile {
    SKERN_SLAB_CLASS(OpenFile, "vfs.openfile")

    std::shared_ptr<FileSystem> fs;
    std::string fs_path;  // path within the mounted fs
    uint32_t flags = 0;
    InodeHandle handle = kInvalidHandle;  // kInvalidHandle = path dispatch
    mutable TrackedSpinLock pos_lock{"vfs.fd"};
    uint64_t cursor SKERN_GUARDED_BY(pos_lock) = 0;
  };

  struct ResolvedPath {
    std::shared_ptr<FileSystem> fs;
    std::string fs_path;
  };

  // Longest-prefix mount resolution on a normalized path.
  Result<ResolvedPath> Resolve(const std::string& path) const;
  Result<std::shared_ptr<OpenFile>> FindFd(Fd fd) const;

  // --- permission checks (the A001/A002 check functions) -----------------
  //
  // Every helper bumps vfs.perm.checks (and vfs.perm.denied on failure) and
  // short-circuits on kCapDacOverride *before* dispatching any Stat, so the
  // root credential adds zero filesystem crossings to any path.

  // DAC check against an already-fetched attr.
  Status CheckAttrAccess(const Cred& cred, const FileAttr& attr, uint32_t want);
  // DAC check against the object `r` names (stats it unless root).
  Status CheckPathAccess(const ResolvedPath& r, const Cred& cred, uint32_t want);
  // DAC check against the parent directory of `r` (namespace mutations).
  Status CheckParentAccess(const ResolvedPath& r, const Cred& cred, uint32_t want);
  // DAC re-check for an open descriptor: stats through the handle plane when
  // pinned (a cached-field read in SafeFs), so chmod/chown on an open file
  // revalidates on the next I/O. Also the gate the async plane runs with the
  // submitter's captured credential.
  Status CheckFileAccess(OpenFile& file, const Cred& cred, uint32_t want);

  // Data-plane dispatch: handle ops when the descriptor carries one, path
  // ops otherwise (kENOSYS from a handle op also falls back to the path).
  Result<Bytes> DispatchRead(OpenFile& file, uint64_t offset, uint64_t length);
  Status DispatchWrite(OpenFile& file, uint64_t offset, ByteView data);
  // Vectored variant for the async plane: how many leading slices the file
  // system applied through its batched fast path (0 when unsupported or on
  // any error — the caller finishes per-op, reproducing exact results).
  size_t DispatchWriteBatch(OpenFile& file, const WriteSlice* slices, size_t count);
  Result<FileAttr> DispatchStat(OpenFile& file);

  size_t max_open_files_;
  mutable TrackedMutex mutex_{"vfs.lock"};
  std::map<std::string, std::shared_ptr<FileSystem>> mounts_ SKERN_GUARDED_BY(mutex_);
  std::map<Fd, std::shared_ptr<OpenFile>> open_files_ SKERN_GUARDED_BY(mutex_);
  Fd next_fd_ SKERN_GUARDED_BY(mutex_) = 3;  // 0-2 reserved, like a real process
  std::atomic<bool> handle_accel_{true};
  // Monotonic syscall counters; atomics so the data plane can bump them
  // without any lock (stats() snapshots them into a plain VfsStats).
  mutable struct {
    std::atomic<uint64_t> opens{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> dispatches{0};
  } counters_;
};

}  // namespace skern

#endif  // SKERN_SRC_VFS_VFS_H_
