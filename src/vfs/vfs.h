// The VFS façade: mount table, file descriptors, and the syscall-style API.
//
// The VFS is deliberately thin: it normalizes paths, resolves the longest-
// prefix mount, manages descriptors, and dispatches through the modular
// FileSystem interface. It contains no per-filesystem knowledge — that is the
// whole point of step 1 (contrast §4.1's observation that Linux "references
// to TCP state can be found throughout generic socket code"; here the generic
// layer genuinely knows nothing about its implementations).
//
// Divergence from POSIX, documented: files are addressed by path at the
// FileSystem boundary, so an open descriptor does not pin an unlinked or
// renamed file (no open-unlink semantics). The executable specification has
// the same semantics, which keeps refinement exact.
#ifndef SKERN_SRC_VFS_VFS_H_
#define SKERN_SRC_VFS_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sync/mutex.h"
#include "src/vfs/filesystem.h"

namespace skern {

enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTrunc = 1u << 3,
  kOpenAppend = 1u << 4,
};

using Fd = int32_t;

struct VfsStats {
  uint64_t opens = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t dispatches = 0;  // FileSystem interface crossings
};

class Vfs {
 public:
  explicit Vfs(size_t max_open_files = 256) : max_open_files_(max_open_files) {}

  // --- mounts ---

  // Mounts `fs` at `mountpoint` (normalized absolute path). The first mount
  // must be at "/". kEBUSY if something is already mounted there.
  Status Mount(const std::string& mountpoint, std::shared_ptr<FileSystem> fs);
  Status Unmount(const std::string& mountpoint);
  std::vector<std::string> Mountpoints() const;

  // --- path syscalls ---

  Status Mkdir(const std::string& path);
  Status Rmdir(const std::string& path);
  Status Unlink(const std::string& path);
  // Cross-mount renames are rejected with kEXDEV, like Linux.
  Status Rename(const std::string& from, const std::string& to);
  Result<FileAttr> Stat(const std::string& path);
  Result<std::vector<std::string>> Readdir(const std::string& path);
  Status Truncate(const std::string& path, uint64_t size);
  // Syncs every mounted file system.
  Status SyncAll();

  // --- descriptor syscalls ---

  Result<Fd> Open(const std::string& path, uint32_t flags);
  Status Close(Fd fd);
  // Sequential read/write advance the file offset.
  Result<Bytes> Read(Fd fd, uint64_t length);
  Status Write(Fd fd, ByteView data);
  // Positional variants do not move the offset.
  Result<Bytes> Pread(Fd fd, uint64_t offset, uint64_t length);
  Status Pwrite(Fd fd, uint64_t offset, ByteView data);
  Result<uint64_t> Seek(Fd fd, uint64_t offset);
  Status Fsync(Fd fd);

  size_t OpenFileCount() const;
  const VfsStats& stats() const { return stats_; }

 private:
  struct OpenFile {
    std::shared_ptr<FileSystem> fs;
    std::string fs_path;  // path within the mounted fs
    uint32_t flags = 0;
    uint64_t offset = 0;
  };

  struct ResolvedPath {
    std::shared_ptr<FileSystem> fs;
    std::string fs_path;
  };

  // Longest-prefix mount resolution on a normalized path.
  Result<ResolvedPath> Resolve(const std::string& path) const;
  Result<OpenFile*> FindFd(Fd fd);

  size_t max_open_files_;
  mutable TrackedMutex mutex_{"vfs.lock"};
  std::map<std::string, std::shared_ptr<FileSystem>> mounts_;
  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_ = 3;  // 0-2 reserved, like a real process
  VfsStats stats_;
};

}  // namespace skern

#endif  // SKERN_SRC_VFS_VFS_H_
