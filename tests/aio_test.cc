// The asynchronous submission/completion plane (src/aio): batched ops must
// behave exactly like the synchronous syscalls they replace — same results,
// same errors, same flag checks — with completions carrying the submitter's
// cookies, backpressure instead of loss, and (engine mode) the work actually
// happening off the submitting thread while per-queue order holds.
#include "src/aio/aio.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 96;

class AioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    disk_ = std::make_unique<RamDisk>(kDiskBlocks, 77);
    fs_ = SafeFs::Format(*disk_, kInodes, 64).value();
    ASSERT_TRUE(vfs_.Mount("/", fs_).ok());
  }

  std::unique_ptr<RamDisk> disk_;
  std::shared_ptr<SafeFs> fs_;
  Vfs vfs_;
};

AioOp ReadOp(Fd fd, uint64_t offset, uint64_t length, uint64_t cookie) {
  AioOp op;
  op.kind = AioOpKind::kRead;
  op.fd = fd;
  op.offset = offset;
  op.length = length;
  op.user_data = cookie;
  return op;
}

AioOp WriteOp(Fd fd, uint64_t offset, Bytes data, uint64_t cookie) {
  AioOp op;
  op.kind = AioOpKind::kWrite;
  op.fd = fd;
  op.offset = offset;
  op.data = std::move(data);
  op.user_data = cookie;
  return op;
}

AioOp FsyncOp(Fd fd, uint64_t cookie) {
  AioOp op;
  op.kind = AioOpKind::kFsync;
  op.fd = fd;
  op.user_data = cookie;
  return op;
}

TEST_F(AioTest, InlineBatchRoundTripsWritesAndReads) {
  auto fd = vfs_.Open("/f", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());

  AioQueue q(vfs_, 32);
  Bytes payload = BytesFromString("hello from the submission ring");
  ASSERT_TRUE(q.Enqueue(WriteOp(*fd, 0, payload, 1)));
  ASSERT_TRUE(q.Enqueue(WriteOp(*fd, kBlockSize, BytesFromString("second"), 2)));
  ASSERT_TRUE(q.Enqueue(ReadOp(*fd, 0, payload.size(), 3)));
  EXPECT_EQ(q.Submit(), 3u);

  std::vector<AioCompletion> done;
  EXPECT_EQ(q.Harvest(done, 16), 3u);
  ASSERT_EQ(done.size(), 3u);
  // Inline mode completes in submission order; the read sees both writes
  // that preceded it in the queue.
  EXPECT_EQ(done[0].user_data, 1u);
  EXPECT_EQ(done[0].error, Errno::kOk);
  EXPECT_EQ(done[1].user_data, 2u);
  EXPECT_EQ(done[1].error, Errno::kOk);
  EXPECT_EQ(done[2].user_data, 3u);
  EXPECT_EQ(done[2].error, Errno::kOk);
  EXPECT_EQ(done[2].data, payload);

  auto stats = q.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.harvested, 3u);
}

TEST_F(AioTest, ErrorsMirrorTheSyncPlane) {
  auto rw = vfs_.Open("/rw", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(rw.ok());
  auto ro = vfs_.Open("/rw", kOpenRead);
  ASSERT_TRUE(ro.ok());

  AioQueue q(vfs_, 16);
  ASSERT_TRUE(q.Enqueue(WriteOp(*ro, 0, BytesFromString("x"), 1)));  // read-only fd
  ASSERT_TRUE(q.Enqueue(ReadOp(9999, 0, 16, 2)));                    // bad fd
  ASSERT_TRUE(q.Enqueue(ReadOp(*rw, 0, 16, 3)));                     // fine (empty file)
  EXPECT_EQ(q.Submit(), 3u);

  std::vector<AioCompletion> done;
  EXPECT_EQ(q.Harvest(done, 16), 3u);
  EXPECT_EQ(done[0].error, Errno::kEBADF);  // same check Pwrite makes
  EXPECT_EQ(done[1].error, Errno::kEBADF);  // same answer FindFd gives
  EXPECT_EQ(done[2].error, Errno::kOk);
  EXPECT_TRUE(done[2].data.empty());
}

TEST_F(AioTest, BackpressureRejectsInsteadOfDropping) {
  auto fd = vfs_.Open("/bp", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());

  AioQueue q(vfs_, 4);  // ring capacity 4, completion budget 8
  // Fill the submission ring.
  size_t accepted = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if (!q.Enqueue(ReadOp(*fd, 0, 1, i))) {
      break;
    }
    ++accepted;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_GT(q.stats().sq_full, 0u);
  EXPECT_EQ(q.Submit(), 4u);
  // Unharvested completions count against the budget: after two more full
  // batches there is no room left until the application harvests.
  EXPECT_EQ(q.Submit(), 0u);
  for (uint64_t i = 0; i < 8; ++i) {
    (void)q.Enqueue(ReadOp(*fd, 0, 1, 100 + i));
  }
  (void)q.Submit();
  EXPECT_FALSE(q.Enqueue(ReadOp(*fd, 0, 1, 999)));
  std::vector<AioCompletion> done;
  EXPECT_EQ(q.Harvest(done, 64), 8u);
  EXPECT_TRUE(q.Enqueue(ReadOp(*fd, 0, 1, 1000)));
}

TEST_F(AioTest, QueuedFsyncMakesPrecedingWritesDurable) {
  auto fd = vfs_.Open("/durable", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());

  AioQueue q(vfs_, 16);
  Bytes payload = BytesFromString("must survive the crash");
  ASSERT_TRUE(q.Enqueue(WriteOp(*fd, 0, payload, 1)));
  ASSERT_TRUE(q.Enqueue(FsyncOp(*fd, 2)));
  EXPECT_EQ(q.Submit(), 2u);
  std::vector<AioCompletion> done;
  EXPECT_EQ(q.Harvest(done, 16), 2u);
  EXPECT_EQ(done[0].error, Errno::kOk);
  EXPECT_EQ(done[1].error, Errno::kOk);

  // Crash after the fsync completion: everything in the volatile device
  // cache is lost, yet a fresh mount must still see the data (the queued
  // fsync drained write-back and committed + flushed the journal).
  ASSERT_TRUE(vfs_.Close(*fd).ok());
  disk_->CrashNow(CrashPersistence::kLoseAll);
  auto recovered = SafeFs::Mount(*disk_);
  ASSERT_TRUE(recovered.ok());
  auto content = (*recovered)->Read("/durable", 0, 1 << 16);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, payload);
}

TEST_F(AioTest, EngineExecutesOffThreadAndPreservesQueueOrder) {
  auto fd = vfs_.Open("/eng", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());

  AioEngine engine(2);
  AioQueue q(vfs_, 64, engine);
  // Writes then a read of everything: per-queue order guarantees the read
  // observes all three writes even though a worker thread executes them.
  Bytes a(100, 0xaa);
  Bytes b(100, 0xbb);
  Bytes c(100, 0xcc);
  ASSERT_TRUE(q.Enqueue(WriteOp(*fd, 0, a, 1)));
  ASSERT_TRUE(q.Enqueue(WriteOp(*fd, 100, b, 2)));
  ASSERT_TRUE(q.Enqueue(WriteOp(*fd, 200, c, 3)));
  ASSERT_TRUE(q.Enqueue(ReadOp(*fd, 0, 300, 4)));
  EXPECT_EQ(q.Submit(), 4u);

  std::vector<AioCompletion> done;
  EXPECT_EQ(q.HarvestBlocking(done, 4), 4u);
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[3].user_data, 4u);
  ASSERT_EQ(done[3].data.size(), 300u);
  Bytes expect;
  expect.insert(expect.end(), a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  EXPECT_EQ(done[3].data, expect);
}

// Many client threads, each with its own ring pair on a shared engine and a
// private file: the canonical thousands-of-queued-ops soak. Every op must
// complete, and the final tree must equal a sequential model run. Run under
// TSAN in CI.
TEST_F(AioTest, EngineSoakManyQueuesMatchesSequentialModel) {
  constexpr int kClients = 8;
  constexpr int kBatches = 25;
  constexpr int kOpsPerBatch = 10;

  auto client_plan = [](int t, Vfs& vfs, Fd fd, AioQueue* q) {
    // With q == nullptr the same plan executes synchronously (the model).
    Rng rng(9100 + t);
    uint64_t cookie = 1;
    for (int batch = 0; batch < kBatches; ++batch) {
      std::vector<AioOp> ops;
      for (int i = 0; i < kOpsPerBatch; ++i) {
        switch (rng.NextBelow(4)) {
          case 0:
            ops.push_back(ReadOp(fd, rng.NextBelow(30000), 1 + rng.NextBelow(4000),
                                 cookie++));
            break;
          case 3:
            if (i == kOpsPerBatch - 1 && rng.NextBelow(4) == 0) {
              ops.push_back(FsyncOp(fd, cookie++));
              break;
            }
            [[fallthrough]];
          default:
            ops.push_back(WriteOp(fd, rng.NextBelow(24000),
                                  rng.NextBytes(1 + rng.NextBelow(3000)), cookie++));
            break;
        }
      }
      if (q != nullptr) {
        size_t queued = 0;
        for (auto& op : ops) {
          ASSERT_TRUE(q->Enqueue(std::move(op)));
          ++queued;
        }
        ASSERT_EQ(q->Submit(), queued);
        std::vector<AioCompletion> done;
        ASSERT_EQ(q->HarvestBlocking(done, queued), queued);
      } else {
        for (auto& op : ops) {
          switch (op.kind) {
            case AioOpKind::kRead:
              (void)vfs.Pread(op.fd, op.offset, op.length);
              break;
            case AioOpKind::kWrite:
              (void)vfs.Pwrite(op.fd, op.offset, ByteView(op.data));
              break;
            case AioOpKind::kFsync:
              (void)vfs.Fsync(op.fd);
              break;
          }
        }
      }
    }
  };

  for (int t = 0; t < kClients; ++t) {
    ASSERT_TRUE(vfs_.Mkdir("/c" + std::to_string(t)).ok());
  }
  {
    AioEngine engine(3);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        auto fd = vfs_.Open("/c" + std::to_string(t) + "/f",
                            kOpenRead | kOpenWrite | kOpenCreate);
        ASSERT_TRUE(fd.ok());
        AioQueue q(vfs_, 2 * kOpsPerBatch, engine);
        client_plan(t, vfs_, *fd, &q);
        auto stats = q.stats();
        EXPECT_EQ(stats.completed, stats.submitted);
        EXPECT_EQ(stats.harvested, stats.submitted);
        ASSERT_TRUE(vfs_.Close(*fd).ok());
      });
    }
    for (auto& c : clients) {
      c.join();
    }
  }

  // Sequential reference on the in-memory model.
  auto memfs = std::make_shared<MemFs>();
  Vfs model_vfs;
  ASSERT_TRUE(model_vfs.Mount("/", memfs).ok());
  for (int t = 0; t < kClients; ++t) {
    ASSERT_TRUE(model_vfs.Mkdir("/c" + std::to_string(t)).ok());
    auto fd = model_vfs.Open("/c" + std::to_string(t) + "/f",
                             kOpenRead | kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fd.ok());
    client_plan(t, model_vfs, *fd, nullptr);
    ASSERT_TRUE(model_vfs.Close(*fd).ok());
  }
  auto diffs = DiffFsAgainstModel(*fs_, memfs->model().state());
  EXPECT_TRUE(diffs.empty()) << diffs.front();
}

}  // namespace
}  // namespace skern
