// Tests for Status, Result<T>, and the ERR_PTR emulation — the §4.2 contrast
// between the unsafe C idiom and its typed replacement.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/err_ptr.h"
#include "src/base/panic.h"
#include "src/base/result.h"
#include "src/base/status.h"

namespace skern {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Errno::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCode) {
  Status s = Status::Error(Errno::kENOENT);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errno::kENOENT);
  EXPECT_NE(s.ToString().find("ENOENT"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodes) {
  EXPECT_EQ(Status::Error(Errno::kEIO), Status::Error(Errno::kEIO));
  EXPECT_NE(Status::Error(Errno::kEIO), Status::Error(Errno::kENOENT));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, AllErrnoValuesHaveNames) {
  // Every enumerator must map to a distinct, non-placeholder name.
  const Errno all[] = {
      Errno::kEPERM,  Errno::kENOENT, Errno::kEIO,     Errno::kEBADF,     Errno::kEAGAIN,
      Errno::kENOMEM, Errno::kEACCES, Errno::kEFAULT,  Errno::kEBUSY,     Errno::kEEXIST,
      Errno::kEXDEV,  Errno::kENODEV, Errno::kENOTDIR, Errno::kEISDIR,    Errno::kEINVAL,
      Errno::kENFILE, Errno::kEMFILE, Errno::kEFBIG,   Errno::kENOSPC,    Errno::kEROFS,
      Errno::kEPIPE,  Errno::kERANGE, Errno::kENOSYS,  Errno::kENOTEMPTY, Errno::kELOOP,
  };
  for (Errno e : all) {
    EXPECT_STRNE(ErrnoName(e), "E???") << static_cast<int>(e);
    EXPECT_STRNE(ErrnoMessage(e), "Unknown error") << static_cast<int>(e);
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Errno::kENOENT);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kENOENT);
  EXPECT_EQ(r.status().code(), Errno::kENOENT);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Errno::kEIO);
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, AccessingWrongAlternativePanics) {
  ScopedPanicAsException guard;
  Result<int> err(Errno::kEIO);
  EXPECT_THROW(err.value(), PanicException);
  Result<int> ok(1);
  EXPECT_THROW(ok.error(), PanicException);
}

TEST(ResultTest, OkStatusCannotBeAnError) {
  ScopedPanicAsException guard;
  EXPECT_THROW(Result<int>(Errno::kOk), PanicException);
}

TEST(ResultTest, MapTransformsSuccess) {
  Result<int> r(10);
  Result<std::string> mapped = r.Map([](int v) { return std::to_string(v * 2); });
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value(), "20");
}

TEST(ResultTest, MapPropagatesError) {
  Result<int> r(Errno::kENOSPC);
  Result<std::string> mapped = r.Map([](int v) { return std::to_string(v); });
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error(), Errno::kENOSPC);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status UsesReturnIfError(Status inner, bool* reached_end) {
  SKERN_RETURN_IF_ERROR(inner);
  *reached_end = true;
  return Status::Ok();
}

TEST(ResultMacrosTest, ReturnIfErrorPropagates) {
  bool reached = false;
  Status s = UsesReturnIfError(Status::Error(Errno::kEIO), &reached);
  EXPECT_EQ(s.code(), Errno::kEIO);
  EXPECT_FALSE(reached);
  s = UsesReturnIfError(Status::Ok(), &reached);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(reached);
}

Result<int> MakeResult(bool ok) {
  if (ok) {
    return 5;
  }
  return Errno::kEBADF;
}

Status UsesAssignOrReturn(bool ok, int* out) {
  SKERN_ASSIGN_OR_RETURN(int v, MakeResult(ok));
  *out = v;
  return Status::Ok();
}

TEST(ResultMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesAssignOrReturn(false, &out).code(), Errno::kEBADF);
}

// --- ERR_PTR emulation: demonstrates the exact hazard the paper describes.

TEST(ErrPtrTest, RoundTripsErrno) {
  int* p = ErrPtr<int>(Errno::kENOENT);
  ASSERT_TRUE(IsErr(p));
  EXPECT_EQ(PtrErr(p), Errno::kENOENT);
}

TEST(ErrPtrTest, RealPointerIsNotErr) {
  int x = 0;
  EXPECT_FALSE(IsErr(&x));
  EXPECT_FALSE(IsErrOrNull(&x));
}

TEST(ErrPtrTest, NullHandling) {
  EXPECT_TRUE(IsErrOrNull(nullptr));
  EXPECT_FALSE(IsErr(nullptr));
}

TEST(ErrPtrTest, TheHazardItself) {
  // Calling PtrErr on a valid pointer yields a garbage "errno": the type
  // confusion Result<T> makes unrepresentable.
  int x = 0;
  Errno garbage = PtrErr(&x);
  // The value is meaningless; the point is that nothing stopped us.
  (void)garbage;
  SUCCEED();
}

TEST(PanicTest, ScopedHandlerConvertsToException) {
  ScopedPanicAsException guard;
  uint64_t before = PanicCount();
  EXPECT_THROW(Panic("test panic"), PanicException);
  EXPECT_EQ(PanicCount(), before + 1);
}

TEST(PanicTest, CheckMacroPassesOnTrue) {
  SKERN_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(PanicTest, CheckMacroPanicsOnFalse) {
  ScopedPanicAsException guard;
  EXPECT_THROW(SKERN_CHECK(1 + 1 == 3), PanicException);
}

TEST(PanicTest, CheckMsgIncludesDetail) {
  ScopedPanicAsException guard;
  try {
    SKERN_CHECK_MSG(false, "extra detail");
    FAIL() << "should have thrown";
  } catch (const PanicException& e) {
    EXPECT_NE(std::string(e.what()).find("extra detail"), std::string::npos);
  }
}

}  // namespace
}  // namespace skern
