// Tests for the deterministic RNG, byte views, simulated clock, intrusive
// list, and logger.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/intrusive_list.h"
#include "src/base/log.h"
#include "src/base/panic.h"
#include "src/base/rng.h"
#include "src/base/sim_clock.h"

namespace skern {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(2.0);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.03);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(13);
  for (double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0;
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(sum / kN, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextPoisson(0.0), 0u);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  constexpr uint64_t kN = 1000;
  int low = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t r = rng.NextZipf(kN, 1.1);
    ASSERT_LT(r, kN);
    if (r < kN / 10) {
      ++low;
    }
  }
  // With s=1.1, far more than 10% of the mass is in the first decile.
  EXPECT_GT(low, kDraws / 2);
}

TEST(RngTest, NamesAndBytes) {
  Rng rng(31);
  std::string name = rng.NextName(12);
  EXPECT_EQ(name.size(), 12u);
  for (char c : name) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  auto bytes = rng.NextBytes(37);
  EXPECT_EQ(bytes.size(), 37u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // Streams should differ from each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

// --- bytes ---

TEST(BytesTest, ViewOverVector) {
  Bytes data{1, 2, 3, 4, 5};
  ByteView view(data);
  EXPECT_EQ(view.size(), 5u);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[4], 5);
}

TEST(BytesTest, SubviewBounds) {
  Bytes data{1, 2, 3, 4, 5};
  ByteView view(data);
  ByteView sub = view.Subview(1, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0], 2);
  ScopedPanicAsException guard;
  EXPECT_THROW(view.Subview(3, 4), PanicException);
}

TEST(BytesTest, Equality) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 3};
  Bytes c{1, 2, 4};
  EXPECT_TRUE(ByteView(a) == ByteView(b));
  EXPECT_FALSE(ByteView(a) == ByteView(c));
  EXPECT_TRUE(ByteView() == ByteView());
}

TEST(BytesTest, MutableViewCopyAndFill) {
  Bytes dst(4, 0);
  Bytes src{9, 8, 7, 6};
  MutableByteView view(dst);
  view.CopyFrom(ByteView(src));
  EXPECT_EQ(dst, src);
  view.Fill(0xaa);
  EXPECT_EQ(dst, Bytes(4, 0xaa));
}

TEST(BytesTest, StringRoundTrip) {
  std::string s = "hello world";
  Bytes b = BytesFromString(s);
  EXPECT_EQ(StringFromBytes(b), s);
  EXPECT_EQ(ByteView(s).ToString(), s);
}

// --- sim clock ---

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
}

TEST(SimClockTest, AdvanceMovesTime) {
  SimClock clock;
  clock.Advance(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
}

TEST(SimClockTest, TimersFireInOrder) {
  SimClock clock;
  std::vector<int> fired;
  clock.ScheduleAfter(3 * kSecond, [&] { fired.push_back(3); });
  clock.ScheduleAfter(1 * kSecond, [&] { fired.push_back(1); });
  clock.ScheduleAfter(2 * kSecond, [&] { fired.push_back(2); });
  clock.Advance(10 * kSecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimClockTest, TimerSeesCorrectNow) {
  SimClock clock;
  SimTime observed = 0;
  clock.ScheduleAfter(2 * kSecond, [&] { observed = clock.now(); });
  clock.Advance(5 * kSecond);
  EXPECT_EQ(observed, 2 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
}

TEST(SimClockTest, CancelPreventsFiring) {
  SimClock clock;
  bool fired = false;
  uint64_t id = clock.ScheduleAfter(kSecond, [&] { fired = true; });
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));  // second cancel fails
  clock.Advance(2 * kSecond);
  EXPECT_FALSE(fired);
}

TEST(SimClockTest, NestedScheduling) {
  SimClock clock;
  int count = 0;
  // A timer that reschedules itself twice.
  std::function<void()> tick = [&] {
    ++count;
    if (count < 3) {
      clock.ScheduleAfter(kSecond, tick);
    }
  };
  clock.ScheduleAfter(kSecond, tick);
  clock.Advance(10 * kSecond);
  EXPECT_EQ(count, 3);
}

TEST(SimClockTest, AdvanceToNextEvent) {
  SimClock clock;
  bool fired = false;
  clock.ScheduleAfter(7 * kSecond, [&] { fired = true; });
  EXPECT_TRUE(clock.AdvanceToNextEvent());
  EXPECT_TRUE(fired);
  EXPECT_EQ(clock.now(), 7 * kSecond);
  EXPECT_FALSE(clock.AdvanceToNextEvent());
}

// --- intrusive list ---

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
  ListNode node;
};

using ItemList = IntrusiveList<Item, &Item::node>;

TEST(IntrusiveListTest, PushPopFifo) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushFrontLifo) {
  ItemList list;
  Item a(1), b(2);
  list.PushFront(&a);
  list.PushFront(&b);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
  list.Clear();
}

TEST(IntrusiveListTest, RemoveFromMiddle) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(b.node.linked());
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
}

TEST(IntrusiveListTest, MoveToBackIsLruTouch) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.MoveToBack(&a);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
  list.Clear();
}

TEST(IntrusiveListTest, DoubleInsertPanics) {
  ItemList list;
  Item a(1);
  list.PushBack(&a);
  ScopedPanicAsException guard;
  EXPECT_THROW(list.PushBack(&a), PanicException);
  list.Clear();
}

TEST(IntrusiveListTest, RemoveUnlinkedPanics) {
  ItemList list;
  Item a(1);
  ScopedPanicAsException guard;
  EXPECT_THROW(list.Remove(&a), PanicException);
}

TEST(IntrusiveListTest, ContainsAndIteration) {
  ItemList list;
  Item a(1), b(2);
  list.PushBack(&a);
  EXPECT_TRUE(list.Contains(&a));
  EXPECT_FALSE(list.Contains(&b));
  list.PushBack(&b);
  int sum = 0;
  for (auto& item : list) {
    sum += item.value;
  }
  EXPECT_EQ(sum, 3);
  list.Clear();
}

// --- log ---

TEST(LogTest, LevelGatesCounting) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  uint64_t warns_before = LogCount(LogLevel::kWarn);
  uint64_t errors_before = LogCount(LogLevel::kError);
  SKERN_WARN() << "suppressed";
  SKERN_ERROR() << "emitted";
  EXPECT_EQ(LogCount(LogLevel::kWarn), warns_before);
  EXPECT_EQ(LogCount(LogLevel::kError), errors_before + 1);
  SetLogLevel(old);
}

TEST(LogTest, NoneSilencesEverything) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  uint64_t errors_before = LogCount(LogLevel::kError);
  SKERN_ERROR() << "suppressed";
  EXPECT_EQ(LogCount(LogLevel::kError), errors_before);
  SetLogLevel(old);
}

}  // namespace
}  // namespace skern
