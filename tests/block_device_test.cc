// Tests for the RAM disk: basic I/O, the volatile-cache contract, crash
// persistence modes, torn writes, error injection, and the checked (shim)
// wrapper's axioms.
#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/block/block_device.h"
#include "src/block/checked_block_device.h"
#include "src/core/shim.h"

namespace skern {
namespace {

Bytes Pattern(uint8_t fill) { return Bytes(kBlockSize, fill); }

TEST(RamDiskTest, ReadsZeroesInitially) {
  RamDisk disk(8);
  Bytes out(kBlockSize, 0xff);
  ASSERT_TRUE(disk.ReadBlock(0, MutableByteView(out)).ok());
  EXPECT_EQ(out, Bytes(kBlockSize, 0));
}

TEST(RamDiskTest, WriteReadRoundTrip) {
  RamDisk disk(8);
  Bytes data = Pattern(0xab);
  ASSERT_TRUE(disk.WriteBlock(3, ByteView(data)).ok());
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(disk.ReadBlock(3, MutableByteView(out)).ok());
  EXPECT_EQ(out, data);
}

TEST(RamDiskTest, BoundsAndSizeChecks) {
  RamDisk disk(4);
  Bytes buf(kBlockSize, 0);
  EXPECT_EQ(disk.ReadBlock(4, MutableByteView(buf)).code(), Errno::kEINVAL);
  EXPECT_EQ(disk.WriteBlock(99, ByteView(buf)).code(), Errno::kEINVAL);
  Bytes small(10, 0);
  EXPECT_EQ(disk.ReadBlock(0, MutableByteView(small)).code(), Errno::kEINVAL);
  EXPECT_EQ(disk.WriteBlock(0, ByteView(small)).code(), Errno::kEINVAL);
}

TEST(RamDiskTest, UnflushedWritesDieInCrash) {
  RamDisk disk(8);
  ASSERT_TRUE(disk.WriteBlock(1, ByteView(Pattern(0x11))).ok());
  disk.CrashNow(CrashPersistence::kLoseAll);
  Bytes out(kBlockSize, 0xff);
  ASSERT_TRUE(disk.ReadBlock(1, MutableByteView(out)).ok());
  EXPECT_EQ(out, Bytes(kBlockSize, 0));
}

TEST(RamDiskTest, FlushedWritesSurviveCrash) {
  RamDisk disk(8);
  ASSERT_TRUE(disk.WriteBlock(1, ByteView(Pattern(0x11))).ok());
  ASSERT_TRUE(disk.Flush().ok());
  ASSERT_TRUE(disk.WriteBlock(1, ByteView(Pattern(0x22))).ok());  // unflushed overwrite
  disk.CrashNow(CrashPersistence::kLoseAll);
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(disk.ReadBlock(1, MutableByteView(out)).ok());
  EXPECT_EQ(out, Pattern(0x11));
}

TEST(RamDiskTest, RandomPrefixKeepsWriteOrder) {
  // With kRandomPrefix, if write #2 survived then write #1 must have too.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RamDisk disk(8, seed);
    ASSERT_TRUE(disk.WriteBlock(1, ByteView(Pattern(0x01))).ok());
    ASSERT_TRUE(disk.WriteBlock(2, ByteView(Pattern(0x02))).ok());
    disk.CrashNow(CrashPersistence::kRandomPrefix);
    Bytes b1(kBlockSize, 0), b2(kBlockSize, 0);
    ASSERT_TRUE(disk.ReadBlock(1, MutableByteView(b1)).ok());
    ASSERT_TRUE(disk.ReadBlock(2, MutableByteView(b2)).ok());
    bool w1 = b1 == Pattern(0x01);
    bool w2 = b2 == Pattern(0x02);
    EXPECT_TRUE(w1 || !w2) << "seed " << seed << ": prefix property violated";
  }
}

TEST(RamDiskTest, RandomSubsetCanReorder) {
  // Over many seeds, kRandomSubset must produce at least one outcome where a
  // later write survived without an earlier one (the reordering adversary).
  bool reordering_seen = false;
  for (uint64_t seed = 0; seed < 50 && !reordering_seen; ++seed) {
    RamDisk disk(8, seed);
    ASSERT_TRUE(disk.WriteBlock(1, ByteView(Pattern(0x01))).ok());
    ASSERT_TRUE(disk.WriteBlock(2, ByteView(Pattern(0x02))).ok());
    disk.CrashNow(CrashPersistence::kRandomSubset);
    Bytes b1(kBlockSize, 0), b2(kBlockSize, 0);
    ASSERT_TRUE(disk.ReadBlock(1, MutableByteView(b1)).ok());
    ASSERT_TRUE(disk.ReadBlock(2, MutableByteView(b2)).ok());
    if (b2 == Pattern(0x02) && b1 != Pattern(0x01)) {
      reordering_seen = true;
    }
  }
  EXPECT_TRUE(reordering_seen);
}

TEST(RamDiskTest, TornWriteLeavesHalfBlock) {
  // Force the single pending write to survive torn: prefix mode with one
  // write has survivor sets {} or {w}; find a seed where it survives.
  bool torn_seen = false;
  for (uint64_t seed = 0; seed < 50 && !torn_seen; ++seed) {
    RamDisk disk(8, seed);
    ASSERT_TRUE(disk.WriteBlock(1, ByteView(Pattern(0x77))).ok());
    disk.CrashNow(CrashPersistence::kRandomPrefix, /*tear_last=*/true);
    Bytes out(kBlockSize, 0);
    ASSERT_TRUE(disk.ReadBlock(1, MutableByteView(out)).ok());
    bool first_half_new = out[0] == 0x77;
    bool second_half_old = out[kBlockSize - 1] == 0x00;
    if (first_half_new && second_half_old) {
      torn_seen = true;
    }
  }
  EXPECT_TRUE(torn_seen);
}

TEST(RamDiskTest, ScheduledCrashFiresOnNthWrite) {
  RamDisk disk(8);
  disk.ScheduleCrashAfterWrites(2, CrashPersistence::kLoseAll);
  EXPECT_TRUE(disk.WriteBlock(0, ByteView(Pattern(1))).ok());
  EXPECT_EQ(disk.WriteBlock(1, ByteView(Pattern(2))).code(), Errno::kEIO);
  EXPECT_FALSE(disk.crash_armed());
  EXPECT_EQ(disk.stats().crashes, 1u);
  // Post-crash the device works again; nothing survived.
  Bytes out(kBlockSize, 0xff);
  ASSERT_TRUE(disk.ReadBlock(0, MutableByteView(out)).ok());
  EXPECT_EQ(out, Bytes(kBlockSize, 0));
}

TEST(RamDiskTest, ErrorInjectionPerBlock) {
  RamDisk disk(8);
  disk.InjectBlockError(5);
  Bytes buf(kBlockSize, 0);
  EXPECT_EQ(disk.ReadBlock(5, MutableByteView(buf)).code(), Errno::kEIO);
  EXPECT_EQ(disk.WriteBlock(5, ByteView(buf)).code(), Errno::kEIO);
  EXPECT_TRUE(disk.ReadBlock(4, MutableByteView(buf)).ok());
  disk.ClearBlockErrors();
  EXPECT_TRUE(disk.ReadBlock(5, MutableByteView(buf)).ok());
  EXPECT_EQ(disk.stats().injected_errors, 2u);
}

TEST(RamDiskTest, StatsCount) {
  RamDisk disk(8);
  Bytes buf(kBlockSize, 0);
  ASSERT_TRUE(disk.WriteBlock(0, ByteView(buf)).ok());
  ASSERT_TRUE(disk.ReadBlock(0, MutableByteView(buf)).ok());
  ASSERT_TRUE(disk.Flush().ok());
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().flushes, 1u);
  EXPECT_EQ(disk.pending_write_count(), 0u);
}

// --- checked (shim) wrapper ---

class CheckedBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ShimStats::Get().ResetForTesting();
    SetShimMode(ShimMode::kEnforcing);
  }
  void TearDown() override { SetShimMode(ShimMode::kEnforcing); }
};

TEST_F(CheckedBlockDeviceTest, CleanTrafficValidates) {
  RamDisk disk(8);
  CheckedBlockDevice checked(disk);
  Bytes data = Pattern(0x42);
  ASSERT_TRUE(checked.WriteBlock(1, ByteView(data)).ok());
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(checked.ReadBlock(1, MutableByteView(out)).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(ShimStats::Get().validations(), 0u);
  EXPECT_EQ(ShimStats::Get().violation_count(), 0u);
}

// A block device that violates A1 (returns stale data): the buggy unverified
// component the shim is there to catch.
class LyingDevice : public BlockDevice {
 public:
  explicit LyingDevice(BlockDevice& inner) : inner_(inner) {}
  Status ReadBlock(uint64_t block, MutableByteView out) override {
    Status s = inner_.ReadBlock(block, out);
    if (s.ok() && lie_) {
      out[0] ^= 0xff;  // corrupt
    }
    return s;
  }
  Status WriteBlock(uint64_t block, ByteView data) override {
    return inner_.WriteBlock(block, data);
  }
  Status Flush() override { return inner_.Flush(); }
  uint64_t BlockCount() const override { return inner_.BlockCount(); }
  void StartLying() { lie_ = true; }

 private:
  BlockDevice& inner_;
  bool lie_ = false;
};

TEST_F(CheckedBlockDeviceTest, CatchesReadLastWriteViolation) {
  RamDisk disk(8);
  LyingDevice liar(disk);
  CheckedBlockDevice checked(liar);
  ASSERT_TRUE(checked.WriteBlock(1, ByteView(Pattern(0x10))).ok());
  liar.StartLying();
  Bytes out(kBlockSize, 0);
  ScopedPanicAsException guard;
  EXPECT_THROW((void)checked.ReadBlock(1, MutableByteView(out)), PanicException);
  EXPECT_EQ(ShimStats::Get().violation_count(), 1u);
}

TEST_F(CheckedBlockDeviceTest, RecordingModeCountsWithoutPanic) {
  ScopedShimMode mode(ShimMode::kRecording);
  RamDisk disk(8);
  LyingDevice liar(disk);
  CheckedBlockDevice checked(liar);
  ASSERT_TRUE(checked.WriteBlock(1, ByteView(Pattern(0x10))).ok());
  liar.StartLying();
  Bytes out(kBlockSize, 0);
  EXPECT_TRUE(checked.ReadBlock(1, MutableByteView(out)).ok());
  EXPECT_EQ(ShimStats::Get().violation_count(), 1u);
}

TEST_F(CheckedBlockDeviceTest, DisabledModeIsFree) {
  ScopedShimMode mode(ShimMode::kDisabled);
  RamDisk disk(8);
  CheckedBlockDevice checked(disk);
  ASSERT_TRUE(checked.WriteBlock(1, ByteView(Pattern(0x10))).ok());
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(checked.ReadBlock(1, MutableByteView(out)).ok());
  EXPECT_EQ(ShimStats::Get().validations(), 0u);
}

TEST_F(CheckedBlockDeviceTest, ResetModelForgivesCrash) {
  RamDisk disk(8);
  CheckedBlockDevice checked(disk);
  ASSERT_TRUE(checked.WriteBlock(1, ByteView(Pattern(0x10))).ok());
  disk.CrashNow(CrashPersistence::kLoseAll);
  checked.ResetModel();
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(checked.ReadBlock(1, MutableByteView(out)).ok());  // re-adopts zeroes
  EXPECT_EQ(ShimStats::Get().violation_count(), 0u);
}

}  // namespace
}  // namespace skern
