// Concurrency smoke tests for the buffer cache: multiple threads doing
// read/dirty/writeback cycles over overlapping block sets must never corrupt
// reference counts, LRU membership, or flag-state validity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

TEST(BufferCacheConcurrencyTest, ParallelReadersShareBuffers) {
  LockRegistry::Get().ResetForTesting();
  RamDisk disk(64, 1);
  BufferCache cache(disk, 32);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < kIters; ++i) {
        uint64_t block = rng.NextBelow(16);
        auto r = cache.ReadBlock(block);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        // Read-only touch; release immediately.
        if (r.value()->blocknr != block) {
          ++failures;
        }
        cache.Release(r.value());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(cache.ValidateAll().empty());
  // All references dropped: a full invalidate must succeed (nothing pinned).
  ASSERT_TRUE(cache.SyncAll().ok());
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BufferCacheConcurrencyTest, DisjointWritersDoNotInterfere) {
  LockRegistry::Get().ResetForTesting();
  RamDisk disk(64, 2);
  BufferCache cache(disk, 64);
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns a disjoint block range: no data races on content.
      for (int i = 0; i < kIters; ++i) {
        uint64_t block = static_cast<uint64_t>(t) * 8 + (i % 8);
        auto r = cache.ReadBlock(block);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        BufferHead* bh = r.value();
        bh->data[0] = static_cast<uint8_t>(t + 1);
        cache.MarkDirty(bh);
        if (!cache.WriteBack(bh).ok()) {
          ++failures;
        }
        cache.Release(bh);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(cache.SyncAll().ok());
  // Every thread's final byte landed in its own blocks.
  for (int t = 0; t < kThreads; ++t) {
    Bytes content(kBlockSize, 0);
    ASSERT_TRUE(disk.ReadBlock(static_cast<uint64_t>(t) * 8, MutableByteView(content)).ok());
    EXPECT_EQ(content[0], static_cast<uint8_t>(t + 1)) << t;
  }
  EXPECT_TRUE(cache.ValidateAll().empty());
}

TEST(BufferCacheConcurrencyTest, EvictionUnderParallelPressure) {
  LockRegistry::Get().ResetForTesting();
  RamDisk disk(256, 3);
  BufferCache cache(disk, 8);  // tiny: constant eviction
  constexpr int kThreads = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 10);
      for (int i = 0; i < 300; ++i) {
        uint64_t block = rng.NextBelow(128);
        auto r = cache.ReadBlock(block);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        cache.Release(r.value());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), 16u);  // bounded (temporary overcommit allowed)
}

TEST(BufferCacheConcurrencyTest, EightThreadContentionKeepsStatsConsistent) {
  LockRegistry::Get().ResetForTesting();
  RamDisk disk(512, 4);
  BufferCache cache(disk, 256, 8);
  ASSERT_EQ(cache.shard_count(), 8u);
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> lookups_issued{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 100);
      uint64_t local_lookups = 0;
      for (int i = 0; i < kIters; ++i) {
        // Alternate between a disjoint per-thread range (uncontended shards)
        // and a shared hot range every thread hammers (contended shards).
        uint64_t block = (i % 2 == 0)
                             ? 64 + static_cast<uint64_t>(t) * 16 + rng.NextBelow(16)
                             : rng.NextBelow(32);
        auto r = cache.ReadBlock(block);
        ++local_lookups;  // ReadBlock always issues exactly one GetBlock
        if (!r.ok()) {
          ++failures;
          continue;
        }
        BufferHead* bh = r.value();
        if (bh->blocknr != block) {
          ++failures;
        }
        // Dirty only blocks this thread owns so content is race-free.
        if (block >= 64) {
          bh->data[0] = static_cast<uint8_t>(t + 1);
          cache.MarkDirty(bh);
        }
        cache.Release(bh);
      }
      lookups_issued.fetch_add(local_lookups);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every lookup the clients issued is accounted for as exactly one hit or
  // one miss — the per-shard counters lost nothing to striping.
  BufferCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, lookups_issued.load());
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_TRUE(cache.ValidateAll().empty());
  ASSERT_TRUE(cache.SyncAll().ok());
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace skern
