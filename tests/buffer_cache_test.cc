// Tests for buffer_head state validation and the buffer cache.
#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/block/buffer_head.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

uint32_t F(BhFlag flag) { return static_cast<uint32_t>(flag); }

// --- state machine validity rules ---

TEST(BufferStateTest, EmptyStateIsValid) { EXPECT_TRUE(ValidateBufferState(0).empty()); }

TEST(BufferStateTest, TypicalCleanStates) {
  EXPECT_TRUE(ValidateBufferState(F(BhFlag::kMapped)).empty());
  EXPECT_TRUE(ValidateBufferState(F(BhFlag::kMapped) | F(BhFlag::kUptodate)).empty());
  EXPECT_TRUE(
      ValidateBufferState(F(BhFlag::kMapped) | F(BhFlag::kUptodate) | F(BhFlag::kReq)).empty());
}

TEST(BufferStateTest, DirtyRequiresUptodate) {
  auto v = ValidateBufferState(F(BhFlag::kDirty) | F(BhFlag::kMapped));
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().rule.find("R1"), std::string::npos);
}

TEST(BufferStateTest, DirtyRequiresMappingOrDelay) {
  auto v = ValidateBufferState(F(BhFlag::kDirty) | F(BhFlag::kUptodate));
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().rule.find("R2"), std::string::npos);
  // Delayed allocation is the sanctioned unmapped-dirty state.
  EXPECT_TRUE(
      ValidateBufferState(F(BhFlag::kDirty) | F(BhFlag::kUptodate) | F(BhFlag::kDelay)).empty());
}

TEST(BufferStateTest, DelayExcludesMapped) {
  auto v = ValidateBufferState(F(BhFlag::kDelay) | F(BhFlag::kMapped));
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().rule.find("R3"), std::string::npos);
}

TEST(BufferStateTest, UnwrittenRules) {
  EXPECT_FALSE(ValidateBufferState(F(BhFlag::kUnwritten)).empty());  // R4
  auto v = ValidateBufferState(F(BhFlag::kUnwritten) | F(BhFlag::kMapped) | F(BhFlag::kDirty) |
                               F(BhFlag::kUptodate));
  ASSERT_FALSE(v.empty());  // R5
  EXPECT_TRUE(ValidateBufferState(F(BhFlag::kUnwritten) | F(BhFlag::kMapped)).empty());
}

TEST(BufferStateTest, AsyncIoRequiresLock) {
  EXPECT_FALSE(ValidateBufferState(F(BhFlag::kAsyncRead)).empty());   // R6
  EXPECT_FALSE(ValidateBufferState(F(BhFlag::kAsyncWrite)).empty());  // R7
  EXPECT_TRUE(ValidateBufferState(F(BhFlag::kAsyncRead) | F(BhFlag::kLock)).empty());
}

TEST(BufferStateTest, SimultaneousAsyncReadWriteInvalid) {
  auto v =
      ValidateBufferState(F(BhFlag::kAsyncRead) | F(BhFlag::kAsyncWrite) | F(BhFlag::kLock));
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().rule.find("R8"), std::string::npos);
}

TEST(BufferStateTest, NewRequiresMapped) {
  EXPECT_FALSE(ValidateBufferState(F(BhFlag::kNew)).empty());
  EXPECT_TRUE(ValidateBufferState(F(BhFlag::kNew) | F(BhFlag::kMapped)).empty());
}

TEST(BufferStateTest, WriteEioRequiresReq) {
  EXPECT_FALSE(ValidateBufferState(F(BhFlag::kWriteEio)).empty());
  EXPECT_TRUE(
      ValidateBufferState(F(BhFlag::kWriteEio) | F(BhFlag::kReq) | F(BhFlag::kMapped)).empty());
}

TEST(BufferStateTest, ExhaustiveSweepCountsValidStates) {
  // All 2^16 combinations: the checker must terminate and classify each; the
  // valid fraction is well under half — most combinations are nonsense,
  // which is the paper's point about implicit state-flag contracts.
  int valid = 0;
  for (uint32_t state = 0; state < (1u << 16); ++state) {
    if (ValidateBufferState(state).empty()) {
      ++valid;
    }
  }
  EXPECT_GT(valid, 0);
  EXPECT_LT(valid, 1 << 15);
}

TEST(BufferStateTest, ToStringRendersFlags) {
  EXPECT_EQ(BufferStateToString(0), "(none)");
  std::string s = BufferStateToString(F(BhFlag::kUptodate) | F(BhFlag::kDirty));
  EXPECT_NE(s.find("Uptodate"), std::string::npos);
  EXPECT_NE(s.find("Dirty"), std::string::npos);
}

TEST(BufferStateTest, AllFlagsHaveNames) {
  for (int i = 0; i < kBhFlagCount; ++i) {
    EXPECT_STRNE(BhFlagName(static_cast<BhFlag>(1u << i)), "?") << i;
  }
}

// --- buffer cache ---

class BufferCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

TEST_F(BufferCacheTest, GetBlockCreatesMapped) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  BufferHead* bh = cache.GetBlock(3);
  ASSERT_NE(bh, nullptr);
  EXPECT_EQ(bh->blocknr, 3u);
  EXPECT_TRUE(bh->Test(BhFlag::kMapped));
  EXPECT_FALSE(bh->Test(BhFlag::kUptodate));
  cache.Release(bh);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(BufferCacheTest, SecondGetIsAHit) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  BufferHead* a = cache.GetBlock(3);
  BufferHead* b = cache.GetBlock(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.Release(a);
  cache.Release(b);
}

TEST_F(BufferCacheTest, ReadBlockFetchesFromDevice) {
  RamDisk disk(16);
  ASSERT_TRUE(disk.WriteBlock(5, ByteView(Bytes(kBlockSize, 0x5a))).ok());
  BufferCache cache(disk, 8);
  auto r = cache.ReadBlock(5);
  ASSERT_TRUE(r.ok());
  BufferHead* bh = r.value();
  EXPECT_TRUE(bh->Test(BhFlag::kUptodate));
  EXPECT_EQ(bh->data, Bytes(kBlockSize, 0x5a));
  cache.Release(bh);
}

TEST_F(BufferCacheTest, CachedReadSkipsDevice) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  auto r1 = cache.ReadBlock(5);
  ASSERT_TRUE(r1.ok());
  cache.Release(r1.value());
  uint64_t reads_before = disk.stats().reads;
  auto r2 = cache.ReadBlock(5);
  ASSERT_TRUE(r2.ok());
  cache.Release(r2.value());
  EXPECT_EQ(disk.stats().reads, reads_before);
}

TEST_F(BufferCacheTest, ReadErrorPropagates) {
  RamDisk disk(16);
  disk.InjectBlockError(7);
  BufferCache cache(disk, 8);
  auto r = cache.ReadBlock(7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEIO);
}

TEST_F(BufferCacheTest, DirtyWritebackRoundTrip) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  auto r = cache.ReadBlock(2);
  ASSERT_TRUE(r.ok());
  BufferHead* bh = r.value();
  bh->data.assign(kBlockSize, 0x77);
  cache.MarkDirty(bh);
  EXPECT_TRUE(bh->Test(BhFlag::kDirty));
  ASSERT_TRUE(cache.WriteBack(bh).ok());
  EXPECT_FALSE(bh->Test(BhFlag::kDirty));
  cache.Release(bh);
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(disk.ReadBlock(2, MutableByteView(out)).ok());
  EXPECT_EQ(out, Bytes(kBlockSize, 0x77));
}

TEST_F(BufferCacheTest, MarkDirtyOnNonUptodatePanics) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  BufferHead* bh = cache.GetBlock(1);  // not uptodate
  ScopedPanicAsException guard;
  EXPECT_THROW(cache.MarkDirty(bh), PanicException);
  cache.Release(bh);
}

TEST_F(BufferCacheTest, SyncAllFlushesEverything) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  for (uint64_t b = 0; b < 4; ++b) {
    auto r = cache.ReadBlock(b);
    ASSERT_TRUE(r.ok());
    r.value()->data.assign(kBlockSize, static_cast<uint8_t>(b + 1));
    cache.MarkDirty(r.value());
    cache.Release(r.value());
  }
  ASSERT_TRUE(cache.SyncAll().ok());
  disk.CrashNow(CrashPersistence::kLoseAll);  // synced data must survive
  for (uint64_t b = 0; b < 4; ++b) {
    Bytes out(kBlockSize, 0);
    ASSERT_TRUE(disk.ReadBlock(b, MutableByteView(out)).ok());
    EXPECT_EQ(out, Bytes(kBlockSize, static_cast<uint8_t>(b + 1)));
  }
}

TEST_F(BufferCacheTest, LruEvictionDropsColdBuffers) {
  RamDisk disk(64);
  BufferCache cache(disk, 4);
  for (uint64_t b = 0; b < 8; ++b) {
    auto r = cache.ReadBlock(b);
    ASSERT_TRUE(r.ok());
    cache.Release(r.value());
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_F(BufferCacheTest, EvictionWritesBackDirtyVictim) {
  RamDisk disk(64);
  BufferCache cache(disk, 2);
  auto r = cache.ReadBlock(0);
  ASSERT_TRUE(r.ok());
  r.value()->data.assign(kBlockSize, 0x99);
  cache.MarkDirty(r.value());
  cache.Release(r.value());
  // Fill the cache to force eviction of block 0.
  for (uint64_t b = 1; b < 6; ++b) {
    auto rr = cache.ReadBlock(b);
    ASSERT_TRUE(rr.ok());
    cache.Release(rr.value());
  }
  ASSERT_TRUE(disk.Flush().ok());
  Bytes out(kBlockSize, 0);
  ASSERT_TRUE(disk.ReadBlock(0, MutableByteView(out)).ok());
  EXPECT_EQ(out, Bytes(kBlockSize, 0x99));
}

TEST_F(BufferCacheTest, PinnedBuffersSurviveEvictionPressure) {
  RamDisk disk(64);
  BufferCache cache(disk, 2);
  BufferHead* pinned = cache.GetBlock(0);
  for (uint64_t b = 1; b < 8; ++b) {
    auto r = cache.ReadBlock(b);
    ASSERT_TRUE(r.ok());
    cache.Release(r.value());
  }
  // Block 0 must still be present (same pointer on re-get).
  BufferHead* again = cache.GetBlock(0);
  EXPECT_EQ(again, pinned);
  cache.Release(again);
  cache.Release(pinned);
}

TEST_F(BufferCacheTest, ReleaseWithoutRefPanics) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  BufferHead* bh = cache.GetBlock(0);
  cache.Release(bh);
  ScopedPanicAsException guard;
  EXPECT_THROW(cache.Release(bh), PanicException);
}

TEST_F(BufferCacheTest, InvalidateAllDropsCleanBuffers) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  auto r = cache.ReadBlock(1);
  ASSERT_TRUE(r.ok());
  cache.Release(r.value());
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(BufferCacheTest, ValidateAllIsCleanInNormalUse) {
  RamDisk disk(16);
  BufferCache cache(disk, 8);
  for (uint64_t b = 0; b < 4; ++b) {
    auto r = cache.ReadBlock(b);
    ASSERT_TRUE(r.ok());
    if (b % 2 == 0) {
      r.value()->data.assign(kBlockSize, 1);
      cache.MarkDirty(r.value());
    }
    cache.Release(r.value());
  }
  EXPECT_TRUE(cache.ValidateAll().empty());
}

// --- lock striping ---

TEST_F(BufferCacheTest, ShardCountRespectsSmallCapacities) {
  RamDisk disk(64);
  // Small caches degenerate to one shard so per-shard LRU == global LRU.
  EXPECT_EQ(BufferCache(disk, 4).shard_count(), 1u);
  EXPECT_EQ(BufferCache(disk, 7).shard_count(), 1u);
  // Enough capacity for the hinted stripe width.
  EXPECT_EQ(BufferCache(disk, 8).shard_count(), 2u);
  EXPECT_EQ(BufferCache(disk, 32).shard_count(), 8u);
  EXPECT_EQ(BufferCache(disk, 1024).shard_count(), 8u);
  // Hints round down to a power of two.
  EXPECT_EQ(BufferCache(disk, 1024, 6).shard_count(), 4u);
  EXPECT_EQ(BufferCache(disk, 1024, 1).shard_count(), 1u);
}

TEST_F(BufferCacheTest, StatsAggregateAcrossShards) {
  RamDisk disk(256);
  BufferCache cache(disk, 64, 8);
  ASSERT_EQ(cache.shard_count(), 8u);
  // Blocks spread over every shard; each gets one miss then one hit.
  for (uint64_t b = 0; b < 32; ++b) {
    cache.Release(cache.GetBlock(b));
    cache.Release(cache.GetBlock(b));
  }
  BufferCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 64u);
  EXPECT_EQ(stats.misses, 32u);
  EXPECT_EQ(stats.hits, 32u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(cache.size(), 32u);
}

TEST_F(BufferCacheTest, EvictionKeepsTotalSizeBounded) {
  RamDisk disk(1024);
  BufferCache cache(disk, 32, 8);
  for (uint64_t b = 0; b < 512; ++b) {
    auto r = cache.ReadBlock(b);
    ASSERT_TRUE(r.ok());
    cache.Release(r.value());
  }
  // Per-shard capacities sum to the configured total.
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.ValidateAll().empty());
}

TEST_F(BufferCacheTest, PinnedFarOverCapacityPanics) {
  RamDisk disk(256);
  BufferCache cache(disk, 4);  // one shard of capacity 4
  ASSERT_EQ(cache.shard_count(), 1u);
  // Pinning up to twice the capacity is tolerated (temporary overcommit)...
  std::vector<BufferHead*> pinned;
  for (uint64_t b = 0; b < 8; ++b) {
    pinned.push_back(cache.GetBlock(b));
  }
  // ...but the next miss with everything pinned is a reference leak: panic.
  {
    ScopedPanicAsException guard;
    EXPECT_THROW(cache.GetBlock(99), PanicException);
  }
  for (BufferHead* bh : pinned) {
    cache.Release(bh);
  }
}

}  // namespace
}  // namespace skern
