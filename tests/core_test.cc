// Tests for the modular-framework core: safety levels, module registry,
// implementation slots, axiomatic shims, and the Figure 1 landscape.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/base/panic.h"
#include "src/core/landscape.h"
#include "src/core/migration.h"
#include "src/core/module.h"
#include "src/core/process.h"
#include "src/core/safety_level.h"
#include "src/core/shim.h"

namespace skern {
namespace {

TEST(SafetyLevelTest, OrderingIsTheLadder) {
  EXPECT_LT(SafetyLevel::kUnsafe, SafetyLevel::kModular);
  EXPECT_LT(SafetyLevel::kModular, SafetyLevel::kTypeSafe);
  EXPECT_LT(SafetyLevel::kTypeSafe, SafetyLevel::kOwnershipSafe);
  EXPECT_LT(SafetyLevel::kOwnershipSafe, SafetyLevel::kVerified);
}

TEST(SafetyLevelTest, NamesAndDescriptionsExist) {
  for (int i = 0; i < kSafetyLevelCount; ++i) {
    auto level = static_cast<SafetyLevel>(i);
    EXPECT_STRNE(SafetyLevelName(level), "?");
    EXPECT_STRNE(SafetyLevelDescription(level), "?");
  }
}

class ModuleRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { ModuleRegistry::Get().ResetForTesting(); }
  void TearDown() override { ModuleRegistry::Get().ResetForTesting(); }
};

TEST_F(ModuleRegistryTest, RegisterAndFind) {
  ModuleRegistry::Get().Register({"m1", "skern.X", SafetyLevel::kTypeSafe, 100, "test"});
  auto found = ModuleRegistry::Get().Find("m1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->interface, "skern.X");
  EXPECT_EQ(found->level, SafetyLevel::kTypeSafe);
  EXPECT_FALSE(ModuleRegistry::Get().Find("nope").has_value());
}

TEST_F(ModuleRegistryTest, ReRegisterUpdates) {
  ModuleRegistry::Get().Register({"m1", "skern.X", SafetyLevel::kUnsafe, 100, ""});
  ModuleRegistry::Get().Register({"m1", "skern.X", SafetyLevel::kVerified, 150, ""});
  auto found = ModuleRegistry::Get().Find("m1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->level, SafetyLevel::kVerified);
  EXPECT_EQ(ModuleRegistry::Get().All().size(), 1u);
}

TEST_F(ModuleRegistryTest, ImplementingFilters) {
  ModuleRegistry::Get().Register({"a", "skern.FS", SafetyLevel::kUnsafe, 10, ""});
  ModuleRegistry::Get().Register({"b", "skern.FS", SafetyLevel::kVerified, 20, ""});
  ModuleRegistry::Get().Register({"c", "skern.Net", SafetyLevel::kUnsafe, 30, ""});
  EXPECT_EQ(ModuleRegistry::Get().Implementing("skern.FS").size(), 2u);
  EXPECT_EQ(ModuleRegistry::Get().Implementing("skern.Net").size(), 1u);
}

TEST_F(ModuleRegistryTest, AggregatesByLevel) {
  ModuleRegistry::Get().Register({"a", "i", SafetyLevel::kUnsafe, 100, ""});
  ModuleRegistry::Get().Register({"b", "i", SafetyLevel::kOwnershipSafe, 300, ""});
  ModuleRegistry::Get().Register({"c", "i", SafetyLevel::kOwnershipSafe, 100, ""});
  EXPECT_EQ(ModuleRegistry::Get().LinesAtLevel(SafetyLevel::kOwnershipSafe), 400u);
  EXPECT_EQ(ModuleRegistry::Get().LinesAtLevel(SafetyLevel::kVerified), 0u);
  EXPECT_DOUBLE_EQ(ModuleRegistry::Get().FractionAtOrAbove(SafetyLevel::kOwnershipSafe), 0.8);
  EXPECT_DOUBLE_EQ(ModuleRegistry::Get().FractionAtOrAbove(SafetyLevel::kUnsafe), 1.0);
}

TEST_F(ModuleRegistryTest, BuiltinModulesCoverEveryRung) {
  RegisterBuiltinModules();
  // The incremental story needs modules at every rung of the ladder.
  for (int i = 0; i < kSafetyLevelCount; ++i) {
    auto level = static_cast<SafetyLevel>(i);
    bool any = false;
    for (const auto& m : ModuleRegistry::Get().All()) {
      if (m.level == level) {
        any = true;
      }
    }
    EXPECT_TRUE(any) << "no module at level " << SafetyLevelName(level);
  }
}

// --- implementation slots (step 1) ---

struct FakeFs {
  virtual ~FakeFs() = default;
  virtual int Id() const = 0;
};

struct FsA : FakeFs {
  int Id() const override { return 1; }
};
struct FsB : FakeFs {
  int Id() const override { return 2; }
};

TEST(ImplementationSlotTest, FirstInstallBecomesActive) {
  ImplementationSlot<FakeFs> slot("skern.FS");
  slot.Install("a", std::make_shared<FsA>(), SafetyLevel::kUnsafe);
  slot.Install("b", std::make_shared<FsB>(), SafetyLevel::kVerified);
  EXPECT_EQ(slot.ActiveName(), "a");
  EXPECT_EQ(slot.Active()->Id(), 1);
  EXPECT_EQ(slot.ActiveLevel(), SafetyLevel::kUnsafe);
}

TEST(ImplementationSlotTest, SwitchSwapsWithoutCallerChanges) {
  ImplementationSlot<FakeFs> slot("skern.FS");
  slot.Install("a", std::make_shared<FsA>(), SafetyLevel::kUnsafe);
  slot.Install("b", std::make_shared<FsB>(), SafetyLevel::kVerified);
  ASSERT_TRUE(slot.SwitchTo("b").ok());
  EXPECT_EQ(slot.Active()->Id(), 2);
  EXPECT_EQ(slot.ActiveLevel(), SafetyLevel::kVerified);
  EXPECT_EQ(slot.switch_count(), 1u);
}

TEST(ImplementationSlotTest, SwitchToUnknownFails) {
  ImplementationSlot<FakeFs> slot("skern.FS");
  slot.Install("a", std::make_shared<FsA>());
  EXPECT_EQ(slot.SwitchTo("zzz").code(), Errno::kENODEV);
  EXPECT_EQ(slot.ActiveName(), "a");
}

TEST(ImplementationSlotTest, OldHandleSurvivesSwitch) {
  // "Callers holding the previous shared_ptr keep it alive" — graceful swap.
  ImplementationSlot<FakeFs> slot("skern.FS");
  slot.Install("a", std::make_shared<FsA>());
  slot.Install("b", std::make_shared<FsB>());
  auto held = slot.Active();
  ASSERT_TRUE(slot.SwitchTo("b").ok());
  EXPECT_EQ(held->Id(), 1);  // still usable
  EXPECT_EQ(slot.Active()->Id(), 2);
}

TEST(ImplementationSlotTest, NamesLists) {
  ImplementationSlot<FakeFs> slot("skern.FS");
  slot.Install("a", std::make_shared<FsA>());
  slot.Install("b", std::make_shared<FsB>());
  auto names = slot.Names();
  EXPECT_EQ(names.size(), 2u);
}

// --- shims (§4.4) ---

class ShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ShimStats::Get().ResetForTesting();
    SetShimMode(ShimMode::kEnforcing);
  }
  void TearDown() override { SetShimMode(ShimMode::kEnforcing); }
};

TEST_F(ShimTest, PassingAxiomCountsValidation) {
  Shim shim("test->block");
  shim.Check(true, "reads-return-last-write");
  EXPECT_EQ(ShimStats::Get().validations(), 1u);
  EXPECT_EQ(ShimStats::Get().violation_count(), 0u);
}

TEST_F(ShimTest, BrokenAxiomPanicsWhenEnforcing) {
  Shim shim("test->block");
  ScopedPanicAsException guard;
  EXPECT_THROW(shim.Check(false, "reads-return-last-write"), PanicException);
  EXPECT_EQ(ShimStats::Get().violation_count(), 1u);
}

TEST_F(ShimTest, RecordingModeContinues) {
  ScopedShimMode mode(ShimMode::kRecording);
  Shim shim("test->block");
  shim.Check(false, "axiom-a", "detail");
  shim.Check(false, "axiom-b");
  EXPECT_EQ(ShimStats::Get().violation_count(), 2u);
  auto violations = ShimStats::Get().Violations();
  EXPECT_EQ(violations[0].axiom, "axiom-a");
  EXPECT_EQ(violations[0].detail, "detail");
  EXPECT_EQ(violations[0].shim, "test->block");
}

TEST_F(ShimTest, DisabledModeSkipsEvaluation) {
  ScopedShimMode mode(ShimMode::kDisabled);
  Shim shim("test->block");
  shim.Check(false, "would-fail");
  EXPECT_EQ(ShimStats::Get().validations(), 0u);
  EXPECT_EQ(ShimStats::Get().violation_count(), 0u);
  EXPECT_FALSE(Shim::Active());
}

// --- landscape (Figure 1) ---

TEST(LandscapeTest, PublishedSystemsSpanTheFigure) {
  auto entries = PublishedLandscape();
  ASSERT_GE(entries.size(), 8u);
  // Linux at tens of millions with no guarantees.
  EXPECT_EQ(entries[0].system, "Linux");
  EXPECT_GT(entries[0].lines_of_code, 10'000'000u);
  EXPECT_EQ(entries[0].guarantee, SafetyLevel::kUnsafe);
  // Verified kernels at thousands.
  bool found_verified_small = false;
  for (const auto& e : entries) {
    if (e.guarantee == SafetyLevel::kVerified && e.lines_of_code < 100'000) {
      found_verified_small = true;
    }
  }
  EXPECT_TRUE(found_verified_small);
}

TEST(LandscapeTest, SkernSeriesReflectsRegistry) {
  ModuleRegistry::Get().ResetForTesting();
  RegisterBuiltinModules();
  auto series = SkernLandscape();
  EXPECT_GE(series.size(), 4u);  // modules at several rungs
  ModuleRegistry::Get().ResetForTesting();
}

TEST(LandscapeTest, TableRendersBothSeries) {
  ModuleRegistry::Get().ResetForTesting();
  RegisterBuiltinModules();
  std::string table = RenderLandscapeTable();
  EXPECT_NE(table.find("Linux"), std::string::npos);
  EXPECT_NE(table.find("seL4"), std::string::npos);
  EXPECT_NE(table.find("skern["), std::string::npos);
  ModuleRegistry::Get().ResetForTesting();
}

// --- the process table: the subject side of the credential model ---

TEST(ProcessTest, SpawnAssignsSequentialPidsAndFindWorks) {
  ProcessTable table;
  EXPECT_EQ(table.Count(), 0u);
  auto init = table.Spawn("init", Cred::Root());
  auto daemon = table.Spawn("daemon", Cred::User(1, 1));
  ASSERT_NE(init, nullptr);
  ASSERT_NE(daemon, nullptr);
  EXPECT_EQ(init->pid, 1u);
  EXPECT_EQ(daemon->pid, 2u);
  EXPECT_EQ(table.Count(), 2u);
  EXPECT_EQ(table.Find(2)->name, "daemon");
  EXPECT_EQ(table.Find(99), nullptr);
}

TEST(ProcessTest, ScopeInstallsAndRestoresCredential) {
  ProcessTable table;
  auto user = table.Spawn("worker", Cred::User(1000, 1000));
  EXPECT_EQ(CurrentCred(), Cred::Root()) << "threads default to root";
  {
    ProcessScope scope(*user);
    EXPECT_EQ(CurrentCred(), user->cred);
    EXPECT_FALSE(CurrentCred().HasCap(kCapDacOverride));
    {
      // Nesting: an inner scope wins, then unwinds cleanly.
      ProcessScope inner(Cred::Root());
      EXPECT_EQ(CurrentCred(), Cred::Root());
    }
    EXPECT_EQ(CurrentCred(), user->cred);
  }
  EXPECT_EQ(CurrentCred(), Cred::Root());
}

}  // namespace
}  // namespace skern
