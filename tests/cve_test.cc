// Tests for the CVE corpus generator and analyses: the calibrated aggregates
// must reproduce the paper's reported numbers for any seed.
#include <gtest/gtest.h>

#include "src/base/cred.h"
#include "src/cve/accessctl.h"
#include "src/cve/analysis.h"
#include "src/cve/corpus.h"
#include "src/cve/cwe.h"

namespace skern {
namespace {

TEST(CweTest, EveryClassHasNameAndMapping) {
  for (int c = 0; c < kCweClassCount; ++c) {
    auto cls = static_cast<CweClass>(c);
    EXPECT_STRNE(CweClassName(cls), "?");
    // Preventability is total.
    (void)PreventabilityOf(cls);
  }
}

TEST(CweTest, PaperMappingSpotChecks) {
  EXPECT_EQ(PreventabilityOf(CweClass::kUseAfterFree), Preventability::kTypeOwnership);
  EXPECT_EQ(PreventabilityOf(CweClass::kTypeConfusion), Preventability::kTypeOwnership);
  EXPECT_EQ(PreventabilityOf(CweClass::kDataRace), Preventability::kTypeOwnership);
  EXPECT_EQ(PreventabilityOf(CweClass::kLogicError), Preventability::kFunctional);
  EXPECT_EQ(PreventabilityOf(CweClass::kIntegerOverflow), Preventability::kOther);
  EXPECT_EQ(PreventabilityOf(CweClass::kPermissionCheck), Preventability::kOther);
  EXPECT_EQ(RepresentativeCweId(CweClass::kUseAfterFree), 416);
}

TEST(CorpusParamsTest, MixesAreNormalized) {
  auto params = DefaultCorpusParams();
  double cwe_sum = 0;
  for (double p : params.cwe_mix) {
    cwe_sum += p;
  }
  EXPECT_NEAR(cwe_sum, 1.0, 1e-9);
  double comp_sum = 0;
  for (const auto& comp : params.components) {
    comp_sum += comp.weight;
  }
  EXPECT_NEAR(comp_sum, 1.0, 1e-9);
  // The 2010.. means sum to the paper's corpus size.
  double since_2010 = 0;
  for (uint16_t y = 2010; y <= params.last_year; ++y) {
    since_2010 += params.cves_per_year[y - params.first_year];
  }
  EXPECT_NEAR(since_2010, 1475.0, 1e-9);
}

class CorpusSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusSeedTest, TotalSince2010NearPaperCount) {
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), GetParam());
  auto table = Categorize(corpus, 2010);
  // Poisson noise on 1475: sd ~ 38; allow 4 sigma.
  EXPECT_NEAR(static_cast<double>(table.total), 1475.0, 160.0);
}

TEST_P(CorpusSeedTest, PreventabilitySplitMatches42_35_23) {
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), GetParam());
  auto table = Categorize(corpus, 2010);
  EXPECT_NEAR(table.Fraction(Preventability::kTypeOwnership), 0.42, 0.05);
  EXPECT_NEAR(table.Fraction(Preventability::kFunctional), 0.35, 0.05);
  EXPECT_NEAR(table.Fraction(Preventability::kOther), 0.23, 0.05);
}

TEST_P(CorpusSeedTest, Ext4MedianLatencyAboutSevenYears) {
  // "50% of CVEs in ext4 were found after 7 years or more of use."
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), GetParam());
  double median = MedianReportLatency(corpus, "ext4");
  EXPECT_GE(median, 5.0);
  EXPECT_LE(median, 9.5);
}

TEST_P(CorpusSeedTest, DeterministicPerSeed) {
  auto a = CveCorpus::Generate(DefaultCorpusParams(), GetParam());
  auto b = CveCorpus::Generate(DefaultCorpusParams(), GetParam());
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].year, b.records()[i].year);
    EXPECT_EQ(a.records()[i].component, b.records()[i].component);
    EXPECT_EQ(static_cast<int>(a.records()[i].cwe), static_cast<int>(b.records()[i].cwe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeedTest, ::testing::Values(1, 2, 3, 42, 1234));

TEST(CorpusTest, NoComponentBeforeItsRelease) {
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 7);
  for (const auto& record : corpus.records()) {
    if (record.component == "ext4") {
      EXPECT_GE(record.year, 2008);
    }
    if (record.component == "overlayfs") {
      EXPECT_GE(record.year, 2014);
    }
    EXPECT_GE(record.years_after_release, 0.0);
  }
}

TEST(CorpusTest, PerYearShapeHasThe2017Spike) {
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 11);
  auto per_year = NewCvesPerYear(corpus);
  // 2017 is the maximum of the series (mean 295 vs everything < 200).
  uint64_t max_count = 0;
  uint16_t max_year = 0;
  for (const auto& [year, count] : per_year) {
    if (count > max_count) {
      max_count = count;
      max_year = year;
    }
  }
  EXPECT_EQ(max_year, 2017);
  // Hundreds per year through the 2010s.
  EXPECT_GT(per_year.at(2016), 80u);
  EXPECT_GT(per_year.at(2019), 80u);
  // Early years are small.
  EXPECT_LT(per_year.at(1999), 40u);
}

TEST(CorpusTest, LatencyCdfIsMonotonic) {
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 13);
  auto cdf = ReportLatencyCdf(corpus, "ext4");
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].years_after_release, cdf[i - 1].years_after_release);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_NEAR(cdf.back().fraction, 1.0, 1e-9);
}

TEST(BugSeriesTest, PlateausNearHalfPercent) {
  // "Even after 10 years, there are still new bugs (0.5% bugs per line of
  // code each year) in all three file systems."
  for (const auto& profile : DefaultBugSeriesProfiles()) {
    auto series = GenerateBugSeries(profile, 2020, 99);
    // Average the mature years (age >= 8) where available.
    double sum = 0;
    int n = 0;
    for (const auto& point : series) {
      if (point.age_years >= 8) {
        sum += point.bugs_per_loc();
        ++n;
      }
    }
    if (n > 0) {
      EXPECT_NEAR(sum / n, 0.005, 0.003) << profile.fs;
    }
    // Early years are buggier than the plateau.
    EXPECT_GT(series.front().bugs_per_loc(), 0.008) << profile.fs;
  }
}

TEST(BugSeriesTest, ThreeFileSystemsCovered) {
  auto profiles = DefaultBugSeriesProfiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].fs, "ext4");
  EXPECT_EQ(profiles[1].fs, "btrfs");
  EXPECT_EQ(profiles[2].fs, "overlayfs");
}

TEST(RenderTest, FiguresRenderNonEmpty) {
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 3);
  auto per_year = NewCvesPerYear(corpus);
  EXPECT_NE(RenderCvesPerYear(per_year).find("2017"), std::string::npos);
  auto cdf = ReportLatencyCdf(corpus, "ext4");
  EXPECT_NE(RenderLatencyCdf(cdf, "ext4").find("ext4"), std::string::npos);
  auto table = Categorize(corpus, 2010);
  std::string rendered = RenderCategorization(table);
  EXPECT_NE(rendered.find("type+ownership"), std::string::npos);
  EXPECT_NE(rendered.find("functional"), std::string::npos);
  EXPECT_NE(RenderBugSeries(DefaultBugSeriesProfiles(), 2020, 1).find("btrfs"),
            std::string::npos);
}

// --- the executable access-control CVE pair (src/cve/accessctl) ---
//
// Dynamic half of the exhibit: the fixed write path denies an unprivileged
// credential with EACCES, and both vulnerable shapes let the same credential
// mutate the device. The static half lives in
// tools/safety_lint/testdata/cve_accessctl.cc, where the annotated copies of
// these bodies are flagged by A001/A002.

TEST(AccessCtlTest, FixedPathDeniesUnprivilegedWrite) {
  SettingsDevice dev;  // root-owned 0644
  ScopedCred user(Cred::User(1000, 1000));
  Status st = dev.Write(AccessVariant::kFixed, 0, 42);
  EXPECT_EQ(st.code(), Errno::kEACCES);
  // The denied write left the device untouched, and 0644 still grants read.
  auto after = dev.Read(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 0);
}

TEST(AccessCtlTest, FixedPathAllowsOwner) {
  SettingsDevice dev(0644, /*uid=*/1000, /*gid=*/1000);
  ScopedCred owner(Cred::User(1000, 1000));
  ASSERT_TRUE(dev.Write(AccessVariant::kFixed, 2, 9).ok());
  auto got = dev.Read(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 9);
}

TEST(AccessCtlTest, VulnerableVariantsLetUnprivilegedWritesThrough) {
  for (AccessVariant v : {AccessVariant::kMissingCheck, AccessVariant::kWeakCheck}) {
    SettingsDevice dev;  // root-owned 0644: others may read, not write
    ScopedCred user(Cred::User(1000, 1000));
    EXPECT_TRUE(dev.Write(v, 1, 7).ok()) << AccessVariantName(v);
    auto got = dev.Read(1);
    ASSERT_TRUE(got.ok()) << AccessVariantName(v);
    EXPECT_EQ(*got, 7) << AccessVariantName(v) << ": the vulnerable write landed";
  }
}

TEST(AccessCtlTest, PrivateDeviceDeniesRead) {
  SettingsDevice dev(0600, /*uid=*/0, /*gid=*/0);
  ScopedCred user(Cred::User(1000, 1000));
  auto got = dev.Read(0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error(), Errno::kEACCES);
  // The weak-check variant is gated by its read check here, so 0600 blocks
  // it too — the bug only bites where read is broader than write.
  EXPECT_EQ(dev.Write(AccessVariant::kWeakCheck, 0, 1).code(), Errno::kEACCES);
  // The missing-check variant has nothing to stop it even at 0600.
  EXPECT_TRUE(dev.Write(AccessVariant::kMissingCheck, 0, 1).ok());
}

TEST(RenderTest, AsciiBarClamps) {
  EXPECT_EQ(AsciiBar(0, 100, 10), std::string(10, ' '));
  EXPECT_EQ(AsciiBar(100, 100, 10), std::string(10, '#'));
  EXPECT_EQ(AsciiBar(200, 100, 10), std::string(10, '#'));  // clamped
  EXPECT_EQ(AsciiBar(50, 0, 10), std::string(10, ' '));     // degenerate max
}

}  // namespace
}  // namespace skern
