// Coherence tests for the path-resolution fast path: the dentry cache and
// per-directory name index are pure acceleration, so a cache-enabled SafeFs
// must stay observably identical to a cache-disabled run and to the spec
// model on any workload — including the on-disk image, byte for byte,
// because the accelerated DirAddEntry must pick exactly the slot the linear
// scan would have picked.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/trace.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 96;

void ExpectSameTree(FileSystem& fs, const FsModel& reference, const std::string& who) {
  auto diffs = DiffFsAgainstModel(fs, reference.state());
  EXPECT_TRUE(diffs.empty()) << who << ": " << diffs.front();
}

// Result::error() asserts on success; fold a Stat outcome to an Errno that
// is kOk on success so tests can compare outcomes uniformly.
Errno StatCode(FileSystem& fs, const std::string& path) {
  auto r = fs.Stat(path);
  return r.ok() ? Errno::kOk : r.error();
}

void ExpectNoDivergence(const std::vector<ReplayDivergence>& divergences,
                        const std::string& who) {
  EXPECT_TRUE(divergences.empty())
      << who << " diverged at op " << divergences.front().op_index << ": "
      << divergences.front().op << " expected "
      << ErrnoName(divergences.front().expected) << " got "
      << ErrnoName(divergences.front().actual);
}

// Every block of both devices must match: acceleration may not change even
// the *placement* of directory entries, or crash images stop being
// reproducible across configurations.
void ExpectIdenticalDisks(RamDisk& a, RamDisk& b) {
  Bytes ca(kBlockSize, 0);
  Bytes cb(kBlockSize, 0);
  for (uint64_t block = 0; block < kDiskBlocks; ++block) {
    ASSERT_TRUE(a.ReadBlock(block, MutableByteView(ca)).ok());
    ASSERT_TRUE(b.ReadBlock(block, MutableByteView(cb)).ok());
    ASSERT_EQ(ca, cb) << "disk images differ at block " << block;
  }
}

class DcacheCoherenceTest : public ::testing::Test {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

// The headline property: a randomized create/unlink/rename/stat/... workload
// recorded against the model replays onto a cache-enabled and a
// cache-disabled SafeFs with identical outcomes, identical trees, and
// bit-identical disk images after sync.
TEST_F(DcacheCoherenceTest, RandomizedWorkloadIsBitIdenticalToUncachedRun) {
  for (uint64_t seed : {21u, 212u, 2121u}) {
    auto memfs = std::make_shared<MemFs>();
    TracingFs traced(memfs);
    Rng rng(seed);
    const std::vector<std::string> pool{"/a",   "/b",   "/d",   "/d/x",
                                        "/d/y", "/d/z", "/e",   "/e/f",
                                        "/e/f/g", "/missing"};
    for (int i = 0; i < 600; ++i) {
      const std::string& p = pool[rng.NextBelow(pool.size())];
      const std::string& q = pool[rng.NextBelow(pool.size())];
      switch (rng.NextBelow(10)) {
        case 0:
          (void)traced.Create(p);
          break;
        case 1:
          (void)traced.Mkdir(p);
          break;
        case 2:
          (void)traced.Unlink(p);
          break;
        case 3:
          (void)traced.Rmdir(p);
          break;
        case 4:
          (void)traced.Rename(p, q);
          break;
        case 5:
          (void)traced.Write(p, rng.NextBelow(4000), rng.NextBytes(1 + rng.NextBelow(300)));
          break;
        case 6:
          (void)traced.Truncate(p, rng.NextBelow(6000));
          break;
        case 7:
          (void)traced.Read(p, rng.NextBelow(4000), 1 + rng.NextBelow(256));
          break;
        case 8:
          (void)traced.Readdir(p);
          break;
        default:
          (void)traced.Stat(p);
          break;
      }
    }
    const FsTrace& trace = traced.trace();
    ASSERT_FALSE(trace.empty());

    RamDisk disk_accel(kDiskBlocks, seed);
    auto accel = SafeFs::Format(disk_accel, kInodes, 64).value();
    ASSERT_TRUE(accel->lookup_acceleration_enabled());
    ExpectNoDivergence(Replay(trace, *accel), "safefs(dcache on)");
    ExpectSameTree(*accel, memfs->model(), "safefs(dcache on)");

    RamDisk disk_base(kDiskBlocks, seed);
    auto base = SafeFs::Format(disk_base, kInodes, 64).value();
    base->SetLookupAcceleration(false);
    ExpectNoDivergence(Replay(trace, *base), "safefs(dcache off)");
    ExpectSameTree(*base, memfs->model(), "safefs(dcache off)");

    ASSERT_TRUE(accel->Sync().ok());
    ASSERT_TRUE(base->Sync().ok());
    ExpectIdenticalDisks(disk_accel, disk_base);

    // The cached run must actually have exercised the cache.
    auto stats = accel->dcache_stats();
    EXPECT_GT(stats.hits + stats.negative_hits, 0u) << "seed " << seed;
  }
}

// Unlink must flip the cached entry to negative, and a later create must
// flip it back — the classic stale-positive / stale-negative pair.
TEST_F(DcacheCoherenceTest, UnlinkAndRecreateNeverServeStaleEntries) {
  RamDisk disk(kDiskBlocks, 31);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->Create("/d/f").ok());
  EXPECT_TRUE(fs->Stat("/d/f").ok());   // warm the positive entry
  EXPECT_TRUE(fs->Stat("/d/f").ok());
  ASSERT_TRUE(fs->Unlink("/d/f").ok());
  EXPECT_EQ(StatCode(*fs, "/d/f"), Errno::kENOENT);  // not the stale positive
  ASSERT_TRUE(fs->Create("/d/f").ok());
  EXPECT_TRUE(fs->Stat("/d/f").ok());  // not the stale negative
  auto stats = fs->dcache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.negative_hits, 0u);
}

// Renaming a directory re-homes its whole subtree: paths under the old name
// must miss, paths under the new name must resolve, with no per-entry walk.
TEST_F(DcacheCoherenceTest, DirectoryRenameInvalidatesCachedSubtree) {
  RamDisk disk(kDiskBlocks, 32);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  ASSERT_TRUE(fs->Mkdir("/a").ok());
  ASSERT_TRUE(fs->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs->Create("/a/b/c").ok());
  // Warm every component of the old path.
  EXPECT_TRUE(fs->Stat("/a/b/c").ok());
  EXPECT_TRUE(fs->Stat("/a/b/c").ok());
  uint64_t invalidations_before = fs->dcache_stats().invalidations;
  ASSERT_TRUE(fs->Rename("/a", "/z").ok());
  EXPECT_GT(fs->dcache_stats().invalidations, invalidations_before);
  EXPECT_EQ(StatCode(*fs, "/a/b/c"), Errno::kENOENT);
  EXPECT_EQ(StatCode(*fs, "/a"), Errno::kENOENT);
  EXPECT_TRUE(fs->Stat("/z/b/c").ok());
  EXPECT_TRUE(fs->Stat("/z/b").ok());
}

// Rmdir followed by a fresh mkdir of the same name: the negative entry left
// by rmdir must not shadow the recreated directory, and children of the old
// incarnation must not leak into the new one.
TEST_F(DcacheCoherenceTest, RmdirAndRecreateDirectoryStartsEmpty) {
  RamDisk disk(kDiskBlocks, 33);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->Create("/d/child").ok());
  EXPECT_TRUE(fs->Stat("/d/child").ok());
  ASSERT_TRUE(fs->Unlink("/d/child").ok());
  ASSERT_TRUE(fs->Rmdir("/d").ok());
  EXPECT_EQ(StatCode(*fs, "/d"), Errno::kENOENT);
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  EXPECT_TRUE(fs->Stat("/d").ok());
  EXPECT_EQ(StatCode(*fs, "/d/child"), Errno::kENOENT);
  auto entries = fs->Readdir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

// Semantic faults are bugs the cache must faithfully mirror, not mask and
// not amplify: a rename that leaves its source behind looks exactly as
// broken with acceleration on as off.
TEST_F(DcacheCoherenceTest, SemanticFaultsLookIdenticalCachedAndUncached) {
  auto run = [](bool accel) {
    RamDisk disk(kDiskBlocks, 34);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    fs->SetLookupAcceleration(accel);
    EXPECT_TRUE(fs->Create("/src").ok());
    fs->SetSemanticFault(SafeFsSemanticFault::kRenameLeavesSource);
    EXPECT_TRUE(fs->Rename("/src", "/dst").ok());
    fs->SetSemanticFault(SafeFsSemanticFault::kNone);
    // The buggy rename left both names live; both runs must agree on that.
    std::pair<Errno, Errno> observed{StatCode(*fs, "/src"), StatCode(*fs, "/dst")};
    return observed;
  };
  auto cached = run(true);
  auto uncached = run(false);
  EXPECT_EQ(cached, uncached);
  EXPECT_EQ(cached.first, Errno::kOk);   // the fault is visible...
  EXPECT_EQ(cached.second, Errno::kOk);  // ...through the cache too
}

// Toggling acceleration off mid-flight drops the caches and falls back to
// the scan path; behaviour stays seamless in both directions.
TEST_F(DcacheCoherenceTest, TogglingAccelerationMidStreamIsSeamless) {
  RamDisk disk(kDiskBlocks, 35);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs->Create("/d/f" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(fs->Stat("/d/f7").ok());
  fs->SetLookupAcceleration(false);
  EXPECT_FALSE(fs->lookup_acceleration_enabled());
  EXPECT_TRUE(fs->Stat("/d/f7").ok());
  ASSERT_TRUE(fs->Unlink("/d/f7").ok());
  fs->SetLookupAcceleration(true);
  EXPECT_EQ(StatCode(*fs, "/d/f7"), Errno::kENOENT);
  EXPECT_TRUE(fs->Stat("/d/f8").ok());
}

// Randomized interleaving across threads: each thread hammers its own
// subtree (create/unlink/rename/stat) concurrently on one cache-enabled
// SafeFs. Disjoint subtrees make the final logical state
// interleaving-independent, so the tree must equal the model built by
// running the same per-thread scripts sequentially.
TEST_F(DcacheCoherenceTest, ThreadedInterleavingMatchesSequentialModel) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 250;

  // One deterministic op script per thread, confined to /tN.
  auto run_script = [](FileSystem& fs, int t) {
    Rng rng(5000 + t);
    const std::string root = "/t" + std::to_string(t);
    const std::vector<std::string> names{"a", "b", "c", "d", "e"};
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string p = root + "/" + names[rng.NextBelow(names.size())];
      const std::string q = root + "/" + names[rng.NextBelow(names.size())];
      switch (rng.NextBelow(5)) {
        case 0:
          (void)fs.Create(p);
          break;
        case 1:
          (void)fs.Unlink(p);
          break;
        case 2:
          (void)fs.Rename(p, q);
          break;
        case 3:
          (void)fs.Stat(p);
          break;
        default:
          (void)fs.Readdir(root);
          break;
      }
    }
  };

  RamDisk disk(kDiskBlocks, 36);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(fs->Mkdir("/t" + std::to_string(t)).ok());
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fs, &run_script, t] { run_script(*fs, t); });
  }
  for (auto& w : workers) {
    w.join();
  }

  // Sequential reference: same scripts, one at a time, on the model.
  MemFs model;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(model.Mkdir("/t" + std::to_string(t)).ok());
    run_script(model, t);
  }
  ExpectSameTree(*fs, model.model(), "safefs(threads)");

  // And the cache survived the contention with live traffic accounted for.
  auto stats = fs->dcache_stats();
  EXPECT_GT(stats.hits + stats.negative_hits + stats.misses, 0u);
}

}  // namespace
}  // namespace skern
