// Unit tests for the dentry cache itself: positive/negative entries, LRU
// eviction, generation-stamped invalidation, stats. Coherence against the
// file system is dcache_coherence_test.cc's job.
#include "src/vfs/dcache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

class DcacheTest : public ::testing::Test {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

TEST_F(DcacheTest, MissThenPositiveHit) {
  DentryCache cache;
  EXPECT_EQ(cache.Lookup(1, "etc").outcome, DentryCache::Outcome::kMiss);
  cache.InsertPositive(1, "etc", 42);
  auto r = cache.Lookup(1, "etc");
  EXPECT_EQ(r.outcome, DentryCache::Outcome::kPositive);
  EXPECT_EQ(r.child_ino, 42u);
  // Same name under a different parent is a distinct key.
  EXPECT_EQ(cache.Lookup(2, "etc").outcome, DentryCache::Outcome::kMiss);
}

TEST_F(DcacheTest, NegativeEntries) {
  DentryCache cache;
  cache.InsertNegative(1, "missing");
  EXPECT_EQ(cache.Lookup(1, "missing").outcome, DentryCache::Outcome::kNegative);
  // A later create upgrades the entry in place.
  cache.InsertPositive(1, "missing", 7);
  auto r = cache.Lookup(1, "missing");
  EXPECT_EQ(r.outcome, DentryCache::Outcome::kPositive);
  EXPECT_EQ(r.child_ino, 7u);
  // And an unlink downgrades it again.
  cache.InsertNegative(1, "missing");
  EXPECT_EQ(cache.Lookup(1, "missing").outcome, DentryCache::Outcome::kNegative);
}

TEST_F(DcacheTest, EraseDropsEntry) {
  DentryCache cache;
  cache.InsertPositive(1, "f", 5);
  cache.Erase(1, "f");
  EXPECT_EQ(cache.Lookup(1, "f").outcome, DentryCache::Outcome::kMiss);
  cache.Erase(1, "f");  // erasing a missing key is a no-op
  EXPECT_EQ(cache.StatsSnapshot().entries, 0u);
}

TEST_F(DcacheTest, GenerationInvalidatesEverythingAtOnce) {
  DentryCache cache;
  for (uint64_t i = 0; i < 100; ++i) {
    cache.InsertPositive(1, "n" + std::to_string(i), 100 + i);
  }
  cache.InsertNegative(2, "gone");
  uint64_t gen_before = cache.generation();
  cache.InvalidateAll();
  EXPECT_EQ(cache.generation(), gen_before + 1);
  EXPECT_EQ(cache.Lookup(1, "n0").outcome, DentryCache::Outcome::kMiss);
  EXPECT_EQ(cache.Lookup(1, "n99").outcome, DentryCache::Outcome::kMiss);
  EXPECT_EQ(cache.Lookup(2, "gone").outcome, DentryCache::Outcome::kMiss);
  auto stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);  // stale entries don't count as resident
  // Entries inserted after the bump are live again.
  cache.InsertPositive(1, "n0", 100);
  EXPECT_EQ(cache.Lookup(1, "n0").outcome, DentryCache::Outcome::kPositive);
}

TEST_F(DcacheTest, LruEvictsTheColdestEntry) {
  // Single shard, capacity 8: inserting a 9th entry evicts the least
  // recently used one.
  DentryCache cache(/*capacity=*/8, /*shard_hint=*/1);
  ASSERT_EQ(cache.shard_count(), 1u);
  for (uint64_t i = 0; i < 8; ++i) {
    cache.InsertPositive(1, "n" + std::to_string(i), 10 + i);
  }
  // Touch n0 so n1 becomes the LRU victim.
  EXPECT_EQ(cache.Lookup(1, "n0").outcome, DentryCache::Outcome::kPositive);
  cache.InsertPositive(1, "n8", 18);
  EXPECT_EQ(cache.Lookup(1, "n1").outcome, DentryCache::Outcome::kMiss);
  EXPECT_EQ(cache.Lookup(1, "n0").outcome, DentryCache::Outcome::kPositive);
  EXPECT_EQ(cache.Lookup(1, "n8").outcome, DentryCache::Outcome::kPositive);
  auto stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 8u);
}

TEST_F(DcacheTest, ShardCountIsPowerOfTwoAndBounded) {
  DentryCache a(1024, 8);
  EXPECT_EQ(a.shard_count(), 8u);
  DentryCache b(1024, 6);  // rounds down to a power of two
  EXPECT_EQ(b.shard_count(), 4u);
  DentryCache c(16, 8);  // too small to give each shard kMinEntriesPerShard
  EXPECT_EQ(c.shard_count(), 2u);
  DentryCache d(1, 1);
  EXPECT_EQ(d.shard_count(), 1u);
}

TEST_F(DcacheTest, StatsCountHitsMissesAndKinds) {
  DentryCache cache;
  cache.InsertPositive(1, "a", 2);
  cache.InsertNegative(1, "b");
  (void)cache.Lookup(1, "a");  // hit
  (void)cache.Lookup(1, "a");  // hit
  (void)cache.Lookup(1, "b");  // negative hit
  (void)cache.Lookup(1, "c");  // miss
  auto stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST_F(DcacheTest, ClearDropsEverythingButKeepsTallies) {
  DentryCache cache;
  cache.InsertPositive(1, "a", 2);
  (void)cache.Lookup(1, "a");
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1, "a").outcome, DentryCache::Outcome::kMiss);
  auto stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);  // history survives a clear
}

TEST_F(DcacheTest, ConcurrentMixedTrafficStaysBounded) {
  // Hammer one small cache from several threads; under asan/tsan-style
  // scrutiny this exercises the shard locking, and the post-condition checks
  // capacity accounting survived the race.
  constexpr size_t kCapacity = 64;
  DentryCache cache(kCapacity, 8);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 20000; ++i) {
        uint64_t parent = rng.NextBelow(16);
        std::string name = "n" + std::to_string(rng.NextBelow(128));
        switch (rng.NextBelow(4)) {
          case 0:
            cache.InsertPositive(parent, name, 1 + rng.NextBelow(1000));
            break;
          case 1:
            cache.InsertNegative(parent, name);
            break;
          case 2:
            cache.Erase(parent, name);
            break;
          default:
            (void)cache.Lookup(parent, name);
            break;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  auto stats = cache.StatsSnapshot();
  EXPECT_LE(stats.entries, kCapacity + cache.shard_count());
  EXPECT_GT(stats.inserts, 0u);
}

}  // namespace
}  // namespace skern
