// Differential testing: legacyfs, safefs, memfs and the specification model
// must agree operation-for-operation on randomized workloads, because all of
// them claim to refine the same interface contract. Divergence in any pair
// is a bug in one of them (or in the spec — §4.4's two possibilities).
#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/trace.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 96;

// Full-tree comparison via the spec differ: dump one fs against the other's
// state is not directly possible, so both are compared against memfs's model.
void ExpectSameTree(FileSystem& fs, const FsModel& reference, const std::string& who) {
  auto diffs = DiffFsAgainstModel(fs, reference.state());
  EXPECT_TRUE(diffs.empty()) << who << ": " << diffs.front();
}

struct DiffParams {
  uint64_t seed;
  int ops;
};

class DifferentialTest : public ::testing::TestWithParam<DiffParams> {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

TEST_P(DifferentialTest, AllImplementationsAgreeOnRandomTraces) {
  const auto params = GetParam();

  // Reference run: memfs records the trace and the expected outcomes.
  auto memfs = std::make_shared<MemFs>();
  TracingFs traced(memfs);
  {
    Rng rng(params.seed);
    const std::vector<std::string> pool{"/a", "/b", "/c", "/d", "/d/x", "/d/y", "/e"};
    for (int i = 0; i < params.ops; ++i) {
      const std::string& p = pool[rng.NextBelow(pool.size())];
      const std::string& q = pool[rng.NextBelow(pool.size())];
      switch (rng.NextBelow(11)) {
        case 0:
          (void)traced.Create(p);
          break;
        case 1:
          (void)traced.Mkdir(p);
          break;
        case 2:
          (void)traced.Unlink(p);
          break;
        case 3:
          (void)traced.Rmdir(p);
          break;
        case 4:
        case 5:
          (void)traced.Write(p, rng.NextBelow(6000),
                             rng.NextBytes(1 + rng.NextBelow(500)));
          break;
        case 6:
          (void)traced.Truncate(p, rng.NextBelow(8000));
          break;
        case 7:
          (void)traced.Rename(p, q);
          break;
        case 8:
          (void)traced.Read(p, rng.NextBelow(4000), 1 + rng.NextBelow(512));
          break;
        case 9:
          (void)traced.Stat(p);
          break;
        case 10:
          (void)traced.Readdir(p);
          break;
      }
    }
  }
  const FsTrace& trace = traced.trace();
  ASSERT_FALSE(trace.empty());

  // Replay on safefs: every outcome must match.
  {
    RamDisk disk(kDiskBlocks, params.seed);
    auto safefs = SafeFs::Format(disk, kInodes, 64).value();
    auto divergences = Replay(trace, *safefs);
    EXPECT_TRUE(divergences.empty())
        << "safefs diverged at op " << divergences.front().op_index << ": "
        << divergences.front().op << " expected " << ErrnoName(divergences.front().expected)
        << " got " << ErrnoName(divergences.front().actual);
    ExpectSameTree(*safefs, memfs->model(), "safefs");
  }

  // Replay on legacyfs.
  {
    RamDisk disk(kDiskBlocks, params.seed + 1);
    BufferCache cache(disk, 256);
    FsGeometry geo = MakeGeometry(kDiskBlocks, kInodes, 0);
    auto legacy = MakeLegacyFs(cache, &geo, true);
    auto divergences = Replay(trace, *legacy);
    EXPECT_TRUE(divergences.empty())
        << "legacyfs diverged at op " << divergences.front().op_index << ": "
        << divergences.front().op << " expected " << ErrnoName(divergences.front().expected)
        << " got " << ErrnoName(divergences.front().actual);
    ExpectSameTree(*legacy, memfs->model(), "legacyfs");
  }

  // Replay on a fresh memfs (self-consistency of the trace machinery).
  {
    MemFs fresh;
    auto divergences = Replay(trace, fresh);
    EXPECT_TRUE(divergences.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(DiffParams{7, 300}, DiffParams{77, 300},
                                           DiffParams{777, 500}, DiffParams{7777, 500},
                                           DiffParams{77777, 800}, DiffParams{12, 800},
                                           DiffParams{123, 1000}, DiffParams{1234, 1000}));

TEST(TraceTest, DescribeAndRender) {
  auto memfs = std::make_shared<MemFs>();
  TracingFs traced(memfs);
  (void)traced.Create("/f");
  (void)traced.Write("/f", 4, BytesFromString("abc"));
  (void)traced.Rename("/f", "/g");
  (void)traced.Unlink("/missing");
  const FsTrace& trace = traced.trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].Describe(), "create(/f) = OK");
  EXPECT_NE(trace[1].Describe().find("write(/f, 4, 3B)"), std::string::npos);
  EXPECT_NE(trace[2].Describe().find("rename(/f -> /g)"), std::string::npos);
  EXPECT_NE(trace[3].Describe().find("ENOENT"), std::string::npos);
  std::string rendered = RenderTrace(trace);
  EXPECT_NE(rendered.find("0: create"), std::string::npos);
}

TEST(TraceTest, ReplayDetectsDivergence) {
  // A trace recorded on one tree replayed onto a different tree must report
  // the mismatch rather than silently passing.
  auto memfs = std::make_shared<MemFs>();
  TracingFs traced(memfs);
  (void)traced.Create("/f");
  (void)traced.Stat("/f");

  MemFs other;
  ASSERT_TRUE(other.Create("/f").ok());  // pre-existing file
  auto divergences = Replay(traced.trace(), other);
  ASSERT_FALSE(divergences.empty());
  EXPECT_EQ(divergences.front().op_index, 0u);
  EXPECT_EQ(divergences.front().expected, Errno::kOk);
  EXPECT_EQ(divergences.front().actual, Errno::kEEXIST);
}

TEST(TraceTest, ClearTrace) {
  auto memfs = std::make_shared<MemFs>();
  TracingFs traced(memfs);
  (void)traced.Create("/f");
  EXPECT_EQ(traced.trace().size(), 1u);
  traced.ClearTrace();
  EXPECT_TRUE(traced.trace().empty());
}

TEST(MemFsTest, BehavesLikeTheModel) {
  MemFs fs;
  EXPECT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_TRUE(fs.Create("/d/f").ok());
  EXPECT_TRUE(fs.Write("/d/f", 0, BytesFromString("hello")).ok());
  EXPECT_EQ(StringFromBytes(fs.Read("/d/f", 0, 10).value()), "hello");
  EXPECT_EQ(fs.Stat("/d/f")->size, 5u);
  EXPECT_EQ(fs.Create("/d/f").code(), Errno::kEEXIST);
  EXPECT_TRUE(fs.Sync().ok());
  EXPECT_EQ(fs.Name(), "memfs");
}

}  // namespace
}  // namespace skern
