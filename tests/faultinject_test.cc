// Tests for the fault-injection harness: the who-catches-what matrix must
// show exactly the paper's structure — everything silent at rung 0,
// type/memory classes stopped by rungs 2–3, semantic classes stopped by
// rung 4, numeric errors stopped nowhere.
#include <gtest/gtest.h>

#include "src/cve/corpus.h"
#include "src/faultinject/harness.h"
#include "src/ownership/leak_detector.h"
#include "src/ownership/ownership.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    OwnershipStats::Get().ResetForTesting();
    RefinementStats::Get().ResetForTesting();
    LeakDetector::Get().ResetForTesting();
  }
};

InjectionOutcome OutcomeOf(const std::vector<InjectionResult>& results, BugClass bug,
                           SafetyLevel level) {
  for (const auto& result : results) {
    if (result.bug == bug && result.level == level) {
      return result.outcome;
    }
  }
  return InjectionOutcome::kNotRun;
}

TEST_F(FaultInjectTest, EveryBugSilentAtRungZero) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  for (int b = 0; b < kBugClassCount; ++b) {
    EXPECT_EQ(OutcomeOf(results, static_cast<BugClass>(b), SafetyLevel::kUnsafe),
              InjectionOutcome::kSilent)
        << BugClassName(static_cast<BugClass>(b));
  }
}

TEST_F(FaultInjectTest, TypeClassesStopAtRungTwo) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  EXPECT_EQ(OutcomeOf(results, BugClass::kTypeConfusion, SafetyLevel::kTypeSafe),
            InjectionOutcome::kNotExpressible);
  EXPECT_EQ(OutcomeOf(results, BugClass::kErrPtrMisuse, SafetyLevel::kTypeSafe),
            InjectionOutcome::kNotExpressible);
  // But memory bugs are NOT stopped by type safety alone.
  EXPECT_EQ(OutcomeOf(results, BugClass::kUseAfterFree, SafetyLevel::kTypeSafe),
            InjectionOutcome::kSilent);
}

TEST_F(FaultInjectTest, MemoryClassesStopAtRungThree) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  for (BugClass bug : {BugClass::kUseAfterFree, BugClass::kDoubleFree, BugClass::kMemoryLeak,
                       BugClass::kDataRace, BugClass::kBufferOverflow}) {
    EXPECT_EQ(OutcomeOf(results, bug, SafetyLevel::kOwnershipSafe),
              InjectionOutcome::kDetected)
        << BugClassName(bug);
  }
}

TEST_F(FaultInjectTest, SemanticClassesStopOnlyAtRungFour) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  for (BugClass bug : {BugClass::kSemanticStat, BugClass::kSemanticRename,
                       BugClass::kSemanticTruncate, BugClass::kSemanticReaddir,
                       BugClass::kSemanticWrite}) {
    EXPECT_EQ(OutcomeOf(results, bug, SafetyLevel::kOwnershipSafe), InjectionOutcome::kSilent)
        << BugClassName(bug);
    EXPECT_EQ(OutcomeOf(results, bug, SafetyLevel::kVerified), InjectionOutcome::kDetected)
        << BugClassName(bug);
  }
}

TEST_F(FaultInjectTest, NumericErrorsEscapeEveryRung) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  for (int level = 0; level < kSafetyLevelCount; ++level) {
    EXPECT_EQ(OutcomeOf(results, BugClass::kIntegerUnderflow,
                        static_cast<SafetyLevel>(level)),
              InjectionOutcome::kSilent);
  }
}

TEST_F(FaultInjectTest, MatrixRendersEveryRow) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  std::string matrix = FaultInjectionHarness::RenderMatrix(results);
  for (int b = 0; b < kBugClassCount; ++b) {
    EXPECT_NE(matrix.find(BugClassName(static_cast<BugClass>(b))), std::string::npos);
  }
  EXPECT_NE(matrix.find("DETECTED"), std::string::npos);
  EXPECT_NE(matrix.find("PREVENTED"), std::string::npos);
  EXPECT_NE(matrix.find("SILENT"), std::string::npos);
}

TEST_F(FaultInjectTest, PreventedFractionTracksThePaperSplit) {
  FaultInjectionHarness harness;
  auto results = harness.RunAll();
  auto params = DefaultCorpusParams();
  double at_ownership = FaultInjectionHarness::PreventedCorpusFraction(
      results, SafetyLevel::kOwnershipSafe, params.cwe_mix);
  double at_verified = FaultInjectionHarness::PreventedCorpusFraction(
      results, SafetyLevel::kVerified, params.cwe_mix);
  // The harness covers the major classes; kUninitializedUse (0.5%) has no
  // injected bug, so the ownership rung measures slightly under 42%.
  EXPECT_NEAR(at_ownership, 0.42, 0.02);
  EXPECT_NEAR(at_verified, 0.77, 0.02);
  EXPECT_GT(at_verified, at_ownership);
}

TEST_F(FaultInjectTest, BugClassMetadataComplete) {
  for (int b = 0; b < kBugClassCount; ++b) {
    auto bug = static_cast<BugClass>(b);
    EXPECT_STRNE(BugClassName(bug), "?");
    EXPECT_NE(static_cast<int>(CweOf(bug)), static_cast<int>(CweClass::kCount));
  }
}

TEST_F(FaultInjectTest, SingleCellRunWorks) {
  FaultInjectionHarness harness;
  auto result = harness.Run(BugClass::kUseAfterFree, SafetyLevel::kOwnershipSafe);
  EXPECT_EQ(result.outcome, InjectionOutcome::kDetected);
  EXPECT_FALSE(result.note.empty());
}

}  // namespace
}  // namespace skern
