// Integration tests: the whole substrate working together — multiple file
// systems on one VFS, a realistic application workload, a crash in the
// middle of it, and concurrent clients.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/block/checked_block_device.h"
#include "src/core/shim.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

// Three different file systems mounted on one VFS: a safefs root, a legacy
// mount, and a tmpfs-style memfs — the heterogeneous kernel the paper's
// incremental migration passes through.
TEST_F(IntegrationTest, HeterogeneousMountsUnderOneVfs) {
  RamDisk root_disk(256, 1);
  RamDisk legacy_disk(256, 2);
  BufferCache legacy_cache(legacy_disk, 128);
  FsGeometry geo = MakeGeometry(256, 64, 0);

  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", SafeFs::Format(root_disk, 64, 16).value()).ok());
  ASSERT_TRUE(vfs.Mkdir("/legacy").ok());
  ASSERT_TRUE(vfs.Mkdir("/tmp").ok());
  ASSERT_TRUE(vfs.Mount("/legacy", MakeLegacyFs(legacy_cache, &geo, true)).ok());
  ASSERT_TRUE(vfs.Mount("/tmp", std::make_shared<MemFs>()).ok());

  // The same code path writes to all three without knowing which is which.
  for (const char* dir : {"", "/legacy", "/tmp"}) {
    std::string path = std::string(dir) + "/data.bin";
    auto fd = vfs.Open(path, kOpenRead | kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fd.ok()) << path;
    ASSERT_TRUE(vfs.Write(*fd, BytesFromString("heterogeneous")).ok()) << path;
    ASSERT_TRUE(vfs.Close(*fd).ok());
    EXPECT_EQ(vfs.Stat(path)->size, 13u) << path;
  }
  ASSERT_TRUE(vfs.SyncAll().ok());
  EXPECT_EQ(vfs.Mountpoints().size(), 3u);
  // Cross-mount renames are refused wherever they cross.
  EXPECT_EQ(vfs.Rename("/data.bin", "/tmp/data2").code(), Errno::kEXDEV);
  EXPECT_EQ(vfs.Rename("/legacy/data.bin", "/data2").code(), Errno::kEXDEV);
}

// A small "application": an append-only log with rotation, running over the
// spec-checked stack with the axiom-checked block device — every layer of
// the architecture at once, everything enforcing.
TEST_F(IntegrationTest, LogRotationAppOverFullCheckedStack) {
  SetRefinementMode(RefinementMode::kEnforcing);
  SetShimMode(ShimMode::kEnforcing);
  RamDisk disk(512, 3);
  CheckedBlockDevice checked(disk);
  auto safefs = SafeFs::Format(checked, 64, 32).value();
  auto spec = std::make_shared<SpecFs>(safefs);
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", spec).ok());
  ASSERT_TRUE(vfs.Mkdir("/var").ok());
  ASSERT_TRUE(vfs.Mkdir("/var/log").ok());

  constexpr int kRotations = 5;
  constexpr int kLinesPerFile = 40;
  for (int rotation = 0; rotation < kRotations; ++rotation) {
    auto fd = vfs.Open("/var/log/app.log", kOpenWrite | kOpenCreate | kOpenAppend);
    ASSERT_TRUE(fd.ok());
    for (int line = 0; line < kLinesPerFile; ++line) {
      std::string entry =
          "rotation " + std::to_string(rotation) + " line " + std::to_string(line) + "\n";
      ASSERT_TRUE(vfs.Write(*fd, BytesFromString(entry)).ok());
    }
    ASSERT_TRUE(vfs.Fsync(*fd).ok());
    ASSERT_TRUE(vfs.Close(*fd).ok());
    // Rotate.
    std::string archived = "/var/log/app.log." + std::to_string(rotation);
    ASSERT_TRUE(vfs.Rename("/var/log/app.log", archived).ok());
  }
  auto names = vfs.Readdir("/var/log");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), static_cast<size_t>(kRotations));
  // Every archived log intact.
  for (int rotation = 0; rotation < kRotations; ++rotation) {
    std::string archived = "/var/log/app.log." + std::to_string(rotation);
    auto attr = vfs.Stat(archived);
    ASSERT_TRUE(attr.ok());
    EXPECT_GT(attr->size, 0u);
  }
  // All layers were actually exercised and nothing tripped.
  EXPECT_GT(RefinementStats::Get().checks(), 0u);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
  EXPECT_GT(ShimStats::Get().validations(), 0u);
  EXPECT_EQ(ShimStats::Get().violation_count(), 0u);
}

// Crash in the middle of the application; recover; the archived logs that
// were fsynced must be byte-identical.
TEST_F(IntegrationTest, AppSurvivesCrashMidRotation) {
  RamDisk disk(512, 4);
  auto fs = SafeFs::Format(disk, 64, 32).value();
  // Two durable rotations.
  for (int rotation = 0; rotation < 2; ++rotation) {
    std::string archived = "/log." + std::to_string(rotation);
    ASSERT_TRUE(fs->Create("/active").ok());
    ASSERT_TRUE(
        fs->Write("/active", 0, BytesFromString("entries " + std::to_string(rotation))).ok());
    ASSERT_TRUE(fs->Rename("/active", archived).ok());
    ASSERT_TRUE(fs->Sync().ok());
  }
  // A third rotation in flight, not synced.
  ASSERT_TRUE(fs->Create("/active").ok());
  ASSERT_TRUE(fs->Write("/active", 0, BytesFromString("doomed")).ok());
  fs.reset();
  disk.CrashNow(CrashPersistence::kRandomSubset, true);

  auto recovered = SafeFs::Mount(disk);
  ASSERT_TRUE(recovered.ok());
  auto& rfs = *recovered.value();
  EXPECT_EQ(StringFromBytes(rfs.Read("/log.0", 0, 100).value()), "entries 0");
  EXPECT_EQ(StringFromBytes(rfs.Read("/log.1", 0, 100).value()), "entries 1");
  EXPECT_EQ(rfs.Stat("/active").error(), Errno::kENOENT);  // unsynced: gone
}

// Concurrent clients hammering one safefs through the VFS: the coarse fs
// lock serializes them; totals must balance and no lock-order violations
// may be recorded.
TEST_F(IntegrationTest, ConcurrentClientsAreSerializedSafely) {
  LockRegistry::Get().set_panic_on_violation(true);
  RamDisk disk(512, 5);
  auto fs = SafeFs::Format(disk, 128, 32).value();
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", fs).ok());

  constexpr int kThreads = 4;
  constexpr int kFilesEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFilesEach; ++i) {
        std::string path = "/t" + std::to_string(t) + "_" + std::to_string(i);
        auto fd = vfs.Open(path, kOpenWrite | kOpenCreate);
        if (!fd.ok()) {
          ++failures;
          continue;
        }
        if (!vfs.Write(*fd, BytesFromString("thread data")).ok()) {
          ++failures;
        }
        if (!vfs.Close(*fd).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  auto names = vfs.Readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), static_cast<size_t>(kThreads * kFilesEach));
  EXPECT_EQ(LockRegistry::Get().violation_count(), 0u);
}

// The full migration story end to end: a legacy image is read, its tree is
// copied onto a fresh safefs (the "replacement module"), and the copy is
// verified against the original — module replacement with data carried over.
TEST_F(IntegrationTest, MigrateLegacyImageToSafeFs) {
  RamDisk legacy_disk(256, 6);
  BufferCache cache(legacy_disk, 128);
  FsGeometry geo = MakeGeometry(256, 64, 0);
  auto legacy = MakeLegacyFs(cache, &geo, true);
  ASSERT_TRUE(legacy->Mkdir("/etc").ok());
  ASSERT_TRUE(legacy->Create("/etc/conf").ok());
  ASSERT_TRUE(legacy->Write("/etc/conf", 0, BytesFromString("key=value")).ok());
  ASSERT_TRUE(legacy->Mkdir("/usr").ok());
  ASSERT_TRUE(legacy->Create("/usr/bin").ok());
  ASSERT_TRUE(legacy->Write("/usr/bin", 0, Bytes(6000, 0x7f)).ok());

  RamDisk safe_disk(512, 7);
  auto safefs = SafeFs::Format(safe_disk, 64, 32).value();

  // Recursive copy through the modular interface only.
  std::function<void(const std::string&)> copy_tree = [&](const std::string& dir) {
    auto names = legacy->Readdir(dir);
    ASSERT_TRUE(names.ok());
    for (const auto& name : names.value()) {
      std::string path = (dir == "/" ? "" : dir) + "/" + name;
      auto attr = legacy->Stat(path);
      ASSERT_TRUE(attr.ok());
      if (attr->is_dir) {
        ASSERT_TRUE(safefs->Mkdir(path).ok());
        copy_tree(path);
      } else {
        ASSERT_TRUE(safefs->Create(path).ok());
        auto content = legacy->Read(path, 0, attr->size);
        ASSERT_TRUE(content.ok());
        if (!content->empty()) {
          ASSERT_TRUE(safefs->Write(path, 0, ByteView(content.value())).ok());
        }
      }
    }
  };
  copy_tree("/");
  ASSERT_TRUE(safefs->Sync().ok());

  EXPECT_EQ(StringFromBytes(safefs->Read("/etc/conf", 0, 100).value()), "key=value");
  EXPECT_EQ(safefs->Stat("/usr/bin")->size, 6000u);
}

}  // namespace
}  // namespace skern
