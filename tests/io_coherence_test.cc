// Coherence tests for the file data-plane fast path: handle-based I/O, the
// per-inode block-map cache and read-ahead are pure acceleration, so a
// handle-accelerated Vfs-over-SafeFs stack must stay observably identical —
// per-op error codes, returned bytes, final tree, and the on-disk image byte
// for byte — to the path-dispatch baseline and to the in-memory model on any
// workload, including namespace churn under open descriptors and injected
// semantic faults.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 96;

void ExpectSameTree(FileSystem& fs, const FsModel& reference, const std::string& who) {
  auto diffs = DiffFsAgainstModel(fs, reference.state());
  EXPECT_TRUE(diffs.empty()) << who << ": " << diffs.front();
}

// Every block of both devices must match: handle dispatch may not change
// even the placement of data or metadata, or crash images stop being
// reproducible across configurations.
void ExpectIdenticalDisks(RamDisk& a, RamDisk& b) {
  Bytes ca(kBlockSize, 0);
  Bytes cb(kBlockSize, 0);
  for (uint64_t block = 0; block < kDiskBlocks; ++block) {
    ASSERT_TRUE(a.ReadBlock(block, MutableByteView(ca)).ok());
    ASSERT_TRUE(b.ReadBlock(block, MutableByteView(cb)).ok());
    ASSERT_EQ(ca, cb) << "disk images differ at block " << block;
  }
}

// Folds returned data into a short discriminating digest so op logs stay
// comparable without storing every byte.
std::string Digest(const Bytes& data) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : data) {
    h = (h ^ b) * 1099511628211ull;
  }
  return std::to_string(data.size()) + ":" + std::to_string(h);
}

std::string Code(const Status& s) { return ErrnoName(s.code()); }

// One deterministic fd-level workload: opens, closes, sequential and
// positional I/O, seeks, fsyncs, and namespace churn (unlink / truncate /
// rename) under live descriptors. Every op's observable outcome is logged;
// two stacks behave identically iff their logs match line for line.
std::vector<std::string> RunFdScript(Vfs& vfs, uint64_t seed) {
  std::vector<std::string> log;
  Rng rng(seed);
  const std::vector<std::string> pool{"/f0", "/f1", "/f2", "/f3",
                                      "/d/g0", "/d/g1", "/d/g2"};
  (void)vfs.Mkdir("/d");
  std::vector<Fd> fds;
  for (int i = 0; i < 700; ++i) {
    const std::string& p = pool[rng.NextBelow(pool.size())];
    const std::string& q = pool[rng.NextBelow(pool.size())];
    switch (rng.NextBelow(12)) {
      case 0: {  // open
        uint32_t flags = kOpenRead | kOpenWrite | kOpenCreate;
        switch (rng.NextBelow(4)) {
          case 0:
            flags |= kOpenAppend;
            break;
          case 1:
            flags |= kOpenTrunc;
            break;
          case 2:
            flags = kOpenRead;  // read-only, no create
            break;
          default:
            break;
        }
        auto fd = vfs.Open(p, flags);
        if (fd.ok()) {
          fds.push_back(*fd);
        }
        log.push_back("open " + p + " -> " +
                      (fd.ok() ? std::to_string(*fd) : ErrnoName(fd.error())));
        break;
      }
      case 1: {  // close
        if (!fds.empty()) {
          size_t at = rng.NextBelow(fds.size());
          log.push_back("close -> " + Code(vfs.Close(fds[at])));
          fds.erase(fds.begin() + at);
        }
        break;
      }
      case 2:
      case 3: {  // sequential read
        if (!fds.empty()) {
          auto out = vfs.Read(fds[rng.NextBelow(fds.size())], 1 + rng.NextBelow(5000));
          log.push_back("read -> " + (out.ok() ? Digest(*out) : ErrnoName(out.error())));
        }
        break;
      }
      case 4: {  // sequential write
        if (!fds.empty()) {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(3000));
          log.push_back("write -> " +
                        Code(vfs.Write(fds[rng.NextBelow(fds.size())], ByteView(data))));
        }
        break;
      }
      case 5: {  // positional read
        if (!fds.empty()) {
          auto out = vfs.Pread(fds[rng.NextBelow(fds.size())], rng.NextBelow(20000),
                               1 + rng.NextBelow(4096));
          log.push_back("pread -> " + (out.ok() ? Digest(*out) : ErrnoName(out.error())));
        }
        break;
      }
      case 6: {  // positional write
        if (!fds.empty()) {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(2000));
          log.push_back("pwrite -> " + Code(vfs.Pwrite(fds[rng.NextBelow(fds.size())],
                                                       rng.NextBelow(16000), ByteView(data))));
        }
        break;
      }
      case 7: {  // seek
        if (!fds.empty()) {
          auto out = vfs.Seek(fds[rng.NextBelow(fds.size())], rng.NextBelow(20000));
          log.push_back("seek -> " +
                        (out.ok() ? std::to_string(*out) : ErrnoName(out.error())));
        }
        break;
      }
      case 8: {  // fsync — also re-enables the clean fast path
        if (!fds.empty() && rng.NextBelow(3) == 0) {
          log.push_back("fsync -> " + Code(vfs.Fsync(fds[rng.NextBelow(fds.size())])));
        }
        break;
      }
      case 9:  // namespace churn under open descriptors
        log.push_back("unlink " + p + " -> " + Code(vfs.Unlink(p)));
        break;
      case 10:
        log.push_back("trunc " + p + " -> " +
                      Code(vfs.Truncate(p, rng.NextBelow(20000))));
        break;
      default:
        log.push_back("rename " + p + " " + q + " -> " + Code(vfs.Rename(p, q)));
        break;
    }
  }
  while (!fds.empty()) {
    (void)vfs.Close(fds.back());
    fds.pop_back();
  }
  return log;
}

void ExpectSameLog(const std::vector<std::string>& a, const std::vector<std::string>& b,
                   const std::string& who, uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << who << " seed " << seed;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << who << " diverged at op " << i << " (seed " << seed << ")";
  }
}

class IoCoherenceTest : public ::testing::Test {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

// The headline property: a randomized fd-level workload behaves identically
// on the handle-accelerated stack, the path-dispatch stack, and the
// in-memory model — per-op outcomes, final trees, and (between the two
// SafeFs runs) bit-identical disk images after sync.
TEST_F(IoCoherenceTest, RandomizedFdWorkloadIsBitIdenticalToPathPlane) {
  uint64_t total_fast_reads = 0;
  for (uint64_t seed : {41u, 412u, 4121u}) {
    auto memfs = std::make_shared<MemFs>();
    Vfs model_vfs;
    ASSERT_TRUE(model_vfs.Mount("/", memfs).ok());
    auto model_log = RunFdScript(model_vfs, seed);
    ASSERT_FALSE(model_log.empty());

    RamDisk disk_accel(kDiskBlocks, seed);
    auto accel = SafeFs::Format(disk_accel, kInodes, 64).value();
    Vfs accel_vfs;
    ASSERT_TRUE(accel_vfs.Mount("/", accel).ok());
    auto accel_log = RunFdScript(accel_vfs, seed);
    ExpectSameLog(accel_log, model_log, "vfs(handles on) vs model", seed);
    ExpectSameTree(*accel, memfs->model(), "safefs(handles on)");

    RamDisk disk_base(kDiskBlocks, seed);
    auto base = SafeFs::Format(disk_base, kInodes, 64).value();
    Vfs base_vfs;
    base_vfs.SetHandleAcceleration(false);
    ASSERT_TRUE(base_vfs.Mount("/", base).ok());
    auto base_log = RunFdScript(base_vfs, seed);
    ExpectSameLog(base_log, model_log, "vfs(handles off) vs model", seed);
    ExpectSameTree(*base, memfs->model(), "safefs(handles off)");

    ASSERT_TRUE(accel_vfs.SyncAll().ok());
    ASSERT_TRUE(base_vfs.SyncAll().ok());
    ExpectIdenticalDisks(disk_accel, disk_base);

    total_fast_reads += accel->io_stats().fast_reads;
    EXPECT_EQ(base->io_stats().fast_reads, 0u) << "seed " << seed;
  }
  // The accelerated runs must actually have exercised the fast path.
  EXPECT_GT(total_fast_reads, 0u);
}

// A handle pins the path, not the inode: once the name is gone (unlink,
// rename-away) descriptor I/O must fail exactly like a fresh path walk, and
// once a new file takes the name, the descriptor must see the new file.
TEST_F(IoCoherenceTest, StaleHandlesFailAndRebindLikePathWalks) {
  auto run = [](bool accel) {
    std::vector<std::string> log;
    RamDisk disk(kDiskBlocks, 51);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    Vfs vfs;
    vfs.SetHandleAcceleration(accel);
    EXPECT_TRUE(vfs.Mount("/", fs).ok());

    auto observe = [&log](const char* tag, const Result<Bytes>& r) {
      log.push_back(std::string(tag) + " -> " +
                    (r.ok() ? Digest(*r) : ErrnoName(r.error())));
    };

    auto fd = vfs.Open("/victim", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(vfs.Write(*fd, BytesFromString("original content")).ok());
    EXPECT_TRUE(vfs.Fsync(*fd).ok());
    observe("read-live", vfs.Pread(*fd, 0, 64));

    // Unlink under the open descriptor: no open-unlink semantics, so the
    // descriptor fails like the path would.
    EXPECT_TRUE(vfs.Unlink("/victim").ok());
    observe("read-unlinked", vfs.Pread(*fd, 0, 64));
    log.push_back("write-unlinked -> " + Code(vfs.Pwrite(*fd, 0, BytesFromString("x"))));

    // Recreate the name: the descriptor rebinds to the new (empty) file.
    EXPECT_TRUE(vfs.Open("/victim", kOpenWrite | kOpenCreate).ok());
    observe("read-recreated", vfs.Pread(*fd, 0, 64));

    // Replace via rename: the descriptor sees the file now carrying the name.
    auto fd2 = vfs.Open("/other", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd2.ok());
    EXPECT_TRUE(vfs.Write(*fd2, BytesFromString("replacement")).ok());
    EXPECT_TRUE(vfs.Close(*fd2).ok());
    EXPECT_TRUE(vfs.Rename("/other", "/victim").ok());
    observe("read-replaced", vfs.Pread(*fd, 0, 64));

    // Rename the name away again: back to ENOENT.
    EXPECT_TRUE(vfs.Rename("/victim", "/elsewhere").ok());
    observe("read-renamed-away", vfs.Pread(*fd, 0, 64));

    // Truncate under the descriptor: reads clamp to the new EOF.
    auto fd3 = vfs.Open("/elsewhere", kOpenRead | kOpenWrite);
    EXPECT_TRUE(fd3.ok());
    EXPECT_TRUE(vfs.Fsync(*fd3).ok());
    observe("read-before-trunc", vfs.Pread(*fd3, 0, 64));
    EXPECT_TRUE(vfs.Truncate("/elsewhere", 5).ok());
    observe("read-after-trunc", vfs.Pread(*fd3, 0, 64));
    return log;
  };
  auto accel = run(true);
  auto base = run(false);
  ASSERT_EQ(accel.size(), base.size());
  for (size_t i = 0; i < accel.size(); ++i) {
    EXPECT_EQ(accel[i], base[i]) << "diverged at step " << i;
  }
  // Spot-check the semantics themselves, not just agreement.
  EXPECT_EQ(accel[1], "read-unlinked -> ENOENT");
  EXPECT_EQ(accel[2], "write-unlinked -> ENOENT");
  EXPECT_EQ(accel[3], "read-recreated -> " + Digest(Bytes{}));
  EXPECT_EQ(accel[4], "read-replaced -> " + Digest(BytesFromString("replacement")));
  EXPECT_EQ(accel[5], "read-renamed-away -> ENOENT");
}

// Semantic faults are bugs the fast path must faithfully mirror, not mask
// and not amplify: a write that drops its tail byte and a stat that lies
// about size look exactly as broken through handles as through paths.
TEST_F(IoCoherenceTest, SemanticFaultsLookIdenticalThroughHandles) {
  auto run = [](bool accel) {
    std::vector<std::string> log;
    RamDisk disk(kDiskBlocks, 52);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    Vfs vfs;
    vfs.SetHandleAcceleration(accel);
    EXPECT_TRUE(vfs.Mount("/", fs).ok());

    auto fd = vfs.Open("/buggy", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd.ok());
    fs->SetSemanticFault(SafeFsSemanticFault::kWriteIgnoresTailByte);
    log.push_back("write -> " + Code(vfs.Write(*fd, BytesFromString("abcdef"))));
    fs->SetSemanticFault(SafeFsSemanticFault::kNone);
    auto out = vfs.Pread(*fd, 0, 64);
    log.push_back("read -> " + (out.ok() ? Digest(*out) : ErrnoName(out.error())));

    // kStatSizeOffByOne feeds the append cursor through StatHandle/Stat; the
    // appended byte must land at the same (wrong) offset on both planes.
    fs->SetSemanticFault(SafeFsSemanticFault::kStatSizeOffByOne);
    auto fda = vfs.Open("/buggy", kOpenWrite | kOpenAppend);
    EXPECT_TRUE(fda.ok());
    log.push_back("append -> " + Code(vfs.Write(*fda, BytesFromString("Z"))));
    fs->SetSemanticFault(SafeFsSemanticFault::kNone);
    auto after = vfs.Pread(*fd, 0, 64);
    log.push_back("after -> " + (after.ok() ? Digest(*after) : ErrnoName(after.error())));
    return log;
  };
  auto accel = run(true);
  auto base = run(false);
  EXPECT_EQ(accel, base);
  // The first fault is visible through the handle plane: the tail byte is
  // gone, so only "abcde" came back.
  EXPECT_EQ(accel[1], "read -> " + Digest(BytesFromString("abcde")));
}

// Warm sequential reads must be served by the fast path with read-ahead
// actually engaging — and return exactly the written bytes.
TEST_F(IoCoherenceTest, SequentialReadsEngageReadAheadAndStayCorrect) {
  RamDisk disk(kDiskBlocks, 53);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", fs).ok());

  constexpr uint64_t kFileBlocks = 24;
  Rng rng(530);
  Bytes content = rng.NextBytes(kFileBlocks * kBlockSize);
  auto fd = vfs.Open("/seq", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs.Pwrite(*fd, 0, ByteView(content)).ok());
  ASSERT_TRUE(vfs.Fsync(*fd).ok());  // checkpoint: the inode is clean again

  ASSERT_TRUE(vfs.Seek(*fd, 0).ok());
  Bytes reread;
  reread.reserve(content.size());
  for (;;) {
    auto chunk = vfs.Read(*fd, kBlockSize);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) {
      break;
    }
    reread.insert(reread.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(reread, content);

  auto stats = fs->io_stats();
  EXPECT_GT(stats.fast_reads, 0u);
  EXPECT_GT(stats.blockmap_hits, 0u);
  EXPECT_GT(stats.readahead_issued, 0u);
  EXPECT_GT(stats.readahead_hits, 0u);
}

// Randomized interleaving across threads: each thread hammers its own file
// through its own descriptor on one shared accelerated stack. Disjoint
// files make the final logical state interleaving-independent, so the tree
// must equal the model built by running the same per-thread scripts
// sequentially. Run under TSAN in CI.
TEST_F(IoCoherenceTest, EightThreadFdStressMatchesSequentialModel) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;

  auto run_script = [](Vfs& vfs, int t) {
    Rng rng(7000 + t);
    const std::string path = "/t" + std::to_string(t) + "/f";
    auto fd = vfs.Open(path, kOpenRead | kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fd.ok());
    for (int i = 0; i < kOpsPerThread; ++i) {
      switch (rng.NextBelow(6)) {
        case 0: {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(2000));
          (void)vfs.Pwrite(*fd, rng.NextBelow(12000), ByteView(data));
          break;
        }
        case 1:
          (void)vfs.Pread(*fd, rng.NextBelow(16000), 1 + rng.NextBelow(4096));
          break;
        case 2:
          (void)vfs.Read(*fd, 1 + rng.NextBelow(4096));
          break;
        case 3: {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(1000));
          (void)vfs.Write(*fd, ByteView(data));
          break;
        }
        case 4:
          (void)vfs.Seek(*fd, rng.NextBelow(12000));
          break;
        default:
          if (rng.NextBelow(8) == 0) {
            (void)vfs.Fsync(*fd);
          }
          break;
      }
    }
    ASSERT_TRUE(vfs.Close(*fd).ok());
  };

  RamDisk disk(kDiskBlocks, 54);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", fs).ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(vfs.Mkdir("/t" + std::to_string(t)).ok());
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&vfs, &run_script, t] { run_script(vfs, t); });
  }
  for (auto& w : workers) {
    w.join();
  }

  // Sequential reference: same scripts, one at a time, on the model stack.
  auto memfs = std::make_shared<MemFs>();
  Vfs model_vfs;
  ASSERT_TRUE(model_vfs.Mount("/", memfs).ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(model_vfs.Mkdir("/t" + std::to_string(t)).ok());
    run_script(model_vfs, t);
  }
  ExpectSameTree(*fs, memfs->model(), "safefs(8-thread fd stress)");

  // The stress run must have touched both planes of the machinery.
  auto stats = fs->io_stats();
  EXPECT_GT(stats.fast_reads + stats.slow_reads, 0u);
}

}  // namespace
}  // namespace skern
