// Coherence tests for the file data-plane fast path: handle-based I/O, the
// per-inode block-map cache and read-ahead are pure acceleration, so a
// handle-accelerated Vfs-over-SafeFs stack must stay observably identical —
// per-op error codes, returned bytes, final tree, and the on-disk image byte
// for byte — to the path-dispatch baseline and to the in-memory model on any
// workload, including namespace churn under open descriptors and injected
// semantic faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/aio/aio.h"
#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 96;

void ExpectSameTree(FileSystem& fs, const FsModel& reference, const std::string& who) {
  auto diffs = DiffFsAgainstModel(fs, reference.state());
  EXPECT_TRUE(diffs.empty()) << who << ": " << diffs.front();
}

// Every block of both devices must match: handle dispatch may not change
// even the placement of data or metadata, or crash images stop being
// reproducible across configurations.
void ExpectIdenticalDisks(RamDisk& a, RamDisk& b) {
  Bytes ca(kBlockSize, 0);
  Bytes cb(kBlockSize, 0);
  for (uint64_t block = 0; block < kDiskBlocks; ++block) {
    ASSERT_TRUE(a.ReadBlock(block, MutableByteView(ca)).ok());
    ASSERT_TRUE(b.ReadBlock(block, MutableByteView(cb)).ok());
    ASSERT_EQ(ca, cb) << "disk images differ at block " << block;
  }
}

// Folds returned data into a short discriminating digest so op logs stay
// comparable without storing every byte.
std::string Digest(const Bytes& data) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : data) {
    h = (h ^ b) * 1099511628211ull;
  }
  return std::to_string(data.size()) + ":" + std::to_string(h);
}

std::string Code(const Status& s) { return ErrnoName(s.code()); }

// One deterministic fd-level workload: opens, closes, sequential and
// positional I/O, seeks, fsyncs, and namespace churn (unlink / truncate /
// rename) under live descriptors. Every op's observable outcome is logged;
// two stacks behave identically iff their logs match line for line.
std::vector<std::string> RunFdScript(Vfs& vfs, uint64_t seed) {
  std::vector<std::string> log;
  Rng rng(seed);
  const std::vector<std::string> pool{"/f0", "/f1", "/f2", "/f3",
                                      "/d/g0", "/d/g1", "/d/g2"};
  (void)vfs.Mkdir("/d");
  std::vector<Fd> fds;
  for (int i = 0; i < 700; ++i) {
    const std::string& p = pool[rng.NextBelow(pool.size())];
    const std::string& q = pool[rng.NextBelow(pool.size())];
    switch (rng.NextBelow(12)) {
      case 0: {  // open
        uint32_t flags = kOpenRead | kOpenWrite | kOpenCreate;
        switch (rng.NextBelow(4)) {
          case 0:
            flags |= kOpenAppend;
            break;
          case 1:
            flags |= kOpenTrunc;
            break;
          case 2:
            flags = kOpenRead;  // read-only, no create
            break;
          default:
            break;
        }
        auto fd = vfs.Open(p, flags);
        if (fd.ok()) {
          fds.push_back(*fd);
        }
        log.push_back("open " + p + " -> " +
                      (fd.ok() ? std::to_string(*fd) : ErrnoName(fd.error())));
        break;
      }
      case 1: {  // close
        if (!fds.empty()) {
          size_t at = rng.NextBelow(fds.size());
          log.push_back("close -> " + Code(vfs.Close(fds[at])));
          fds.erase(fds.begin() + at);
        }
        break;
      }
      case 2:
      case 3: {  // sequential read
        if (!fds.empty()) {
          auto out = vfs.Read(fds[rng.NextBelow(fds.size())], 1 + rng.NextBelow(5000));
          log.push_back("read -> " + (out.ok() ? Digest(*out) : ErrnoName(out.error())));
        }
        break;
      }
      case 4: {  // sequential write
        if (!fds.empty()) {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(3000));
          log.push_back("write -> " +
                        Code(vfs.Write(fds[rng.NextBelow(fds.size())], ByteView(data))));
        }
        break;
      }
      case 5: {  // positional read
        if (!fds.empty()) {
          auto out = vfs.Pread(fds[rng.NextBelow(fds.size())], rng.NextBelow(20000),
                               1 + rng.NextBelow(4096));
          log.push_back("pread -> " + (out.ok() ? Digest(*out) : ErrnoName(out.error())));
        }
        break;
      }
      case 6: {  // positional write
        if (!fds.empty()) {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(2000));
          log.push_back("pwrite -> " + Code(vfs.Pwrite(fds[rng.NextBelow(fds.size())],
                                                       rng.NextBelow(16000), ByteView(data))));
        }
        break;
      }
      case 7: {  // seek
        if (!fds.empty()) {
          auto out = vfs.Seek(fds[rng.NextBelow(fds.size())], rng.NextBelow(20000));
          log.push_back("seek -> " +
                        (out.ok() ? std::to_string(*out) : ErrnoName(out.error())));
        }
        break;
      }
      case 8: {  // fsync — also re-enables the clean fast path
        if (!fds.empty() && rng.NextBelow(3) == 0) {
          log.push_back("fsync -> " + Code(vfs.Fsync(fds[rng.NextBelow(fds.size())])));
        }
        break;
      }
      case 9:  // namespace churn under open descriptors
        log.push_back("unlink " + p + " -> " + Code(vfs.Unlink(p)));
        break;
      case 10:
        log.push_back("trunc " + p + " -> " +
                      Code(vfs.Truncate(p, rng.NextBelow(20000))));
        break;
      default:
        log.push_back("rename " + p + " " + q + " -> " + Code(vfs.Rename(p, q)));
        break;
    }
  }
  while (!fds.empty()) {
    (void)vfs.Close(fds.back());
    fds.pop_back();
  }
  return log;
}

void ExpectSameLog(const std::vector<std::string>& a, const std::vector<std::string>& b,
                   const std::string& who, uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << who << " seed " << seed;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << who << " diverged at op " << i << " (seed " << seed << ")";
  }
}

class IoCoherenceTest : public ::testing::Test {
 protected:
  void SetUp() override { LockRegistry::Get().ResetForTesting(); }
};

// The headline property: a randomized fd-level workload behaves identically
// on the handle-accelerated stack, the path-dispatch stack, and the
// in-memory model — per-op outcomes, final trees, and (between the two
// SafeFs runs) bit-identical disk images after sync.
TEST_F(IoCoherenceTest, RandomizedFdWorkloadIsBitIdenticalToPathPlane) {
  uint64_t total_fast_reads = 0;
  for (uint64_t seed : {41u, 412u, 4121u}) {
    auto memfs = std::make_shared<MemFs>();
    Vfs model_vfs;
    ASSERT_TRUE(model_vfs.Mount("/", memfs).ok());
    auto model_log = RunFdScript(model_vfs, seed);
    ASSERT_FALSE(model_log.empty());

    RamDisk disk_accel(kDiskBlocks, seed);
    auto accel = SafeFs::Format(disk_accel, kInodes, 64).value();
    Vfs accel_vfs;
    ASSERT_TRUE(accel_vfs.Mount("/", accel).ok());
    auto accel_log = RunFdScript(accel_vfs, seed);
    ExpectSameLog(accel_log, model_log, "vfs(handles on) vs model", seed);
    ExpectSameTree(*accel, memfs->model(), "safefs(handles on)");

    RamDisk disk_base(kDiskBlocks, seed);
    auto base = SafeFs::Format(disk_base, kInodes, 64).value();
    Vfs base_vfs;
    base_vfs.SetHandleAcceleration(false);
    ASSERT_TRUE(base_vfs.Mount("/", base).ok());
    auto base_log = RunFdScript(base_vfs, seed);
    ExpectSameLog(base_log, model_log, "vfs(handles off) vs model", seed);
    ExpectSameTree(*base, memfs->model(), "safefs(handles off)");

    ASSERT_TRUE(accel_vfs.SyncAll().ok());
    ASSERT_TRUE(base_vfs.SyncAll().ok());
    ExpectIdenticalDisks(disk_accel, disk_base);

    total_fast_reads += accel->io_stats().fast_reads;
    EXPECT_EQ(base->io_stats().fast_reads, 0u) << "seed " << seed;
  }
  // The accelerated runs must actually have exercised the fast path.
  EXPECT_GT(total_fast_reads, 0u);
}

// A handle pins the path, not the inode: once the name is gone (unlink,
// rename-away) descriptor I/O must fail exactly like a fresh path walk, and
// once a new file takes the name, the descriptor must see the new file.
TEST_F(IoCoherenceTest, StaleHandlesFailAndRebindLikePathWalks) {
  auto run = [](bool accel) {
    std::vector<std::string> log;
    RamDisk disk(kDiskBlocks, 51);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    Vfs vfs;
    vfs.SetHandleAcceleration(accel);
    EXPECT_TRUE(vfs.Mount("/", fs).ok());

    auto observe = [&log](const char* tag, const Result<Bytes>& r) {
      log.push_back(std::string(tag) + " -> " +
                    (r.ok() ? Digest(*r) : ErrnoName(r.error())));
    };

    auto fd = vfs.Open("/victim", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(vfs.Write(*fd, BytesFromString("original content")).ok());
    EXPECT_TRUE(vfs.Fsync(*fd).ok());
    observe("read-live", vfs.Pread(*fd, 0, 64));

    // Unlink under the open descriptor: no open-unlink semantics, so the
    // descriptor fails like the path would.
    EXPECT_TRUE(vfs.Unlink("/victim").ok());
    observe("read-unlinked", vfs.Pread(*fd, 0, 64));
    log.push_back("write-unlinked -> " + Code(vfs.Pwrite(*fd, 0, BytesFromString("x"))));

    // Recreate the name: the descriptor rebinds to the new (empty) file.
    EXPECT_TRUE(vfs.Open("/victim", kOpenWrite | kOpenCreate).ok());
    observe("read-recreated", vfs.Pread(*fd, 0, 64));

    // Replace via rename: the descriptor sees the file now carrying the name.
    auto fd2 = vfs.Open("/other", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd2.ok());
    EXPECT_TRUE(vfs.Write(*fd2, BytesFromString("replacement")).ok());
    EXPECT_TRUE(vfs.Close(*fd2).ok());
    EXPECT_TRUE(vfs.Rename("/other", "/victim").ok());
    observe("read-replaced", vfs.Pread(*fd, 0, 64));

    // Rename the name away again: back to ENOENT.
    EXPECT_TRUE(vfs.Rename("/victim", "/elsewhere").ok());
    observe("read-renamed-away", vfs.Pread(*fd, 0, 64));

    // Truncate under the descriptor: reads clamp to the new EOF.
    auto fd3 = vfs.Open("/elsewhere", kOpenRead | kOpenWrite);
    EXPECT_TRUE(fd3.ok());
    EXPECT_TRUE(vfs.Fsync(*fd3).ok());
    observe("read-before-trunc", vfs.Pread(*fd3, 0, 64));
    EXPECT_TRUE(vfs.Truncate("/elsewhere", 5).ok());
    observe("read-after-trunc", vfs.Pread(*fd3, 0, 64));
    return log;
  };
  auto accel = run(true);
  auto base = run(false);
  ASSERT_EQ(accel.size(), base.size());
  for (size_t i = 0; i < accel.size(); ++i) {
    EXPECT_EQ(accel[i], base[i]) << "diverged at step " << i;
  }
  // Spot-check the semantics themselves, not just agreement.
  EXPECT_EQ(accel[1], "read-unlinked -> ENOENT");
  EXPECT_EQ(accel[2], "write-unlinked -> ENOENT");
  EXPECT_EQ(accel[3], "read-recreated -> " + Digest(Bytes{}));
  EXPECT_EQ(accel[4], "read-replaced -> " + Digest(BytesFromString("replacement")));
  EXPECT_EQ(accel[5], "read-renamed-away -> ENOENT");
}

// Semantic faults are bugs the fast path must faithfully mirror, not mask
// and not amplify: a write that drops its tail byte and a stat that lies
// about size look exactly as broken through handles as through paths.
TEST_F(IoCoherenceTest, SemanticFaultsLookIdenticalThroughHandles) {
  auto run = [](bool accel) {
    std::vector<std::string> log;
    RamDisk disk(kDiskBlocks, 52);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    Vfs vfs;
    vfs.SetHandleAcceleration(accel);
    EXPECT_TRUE(vfs.Mount("/", fs).ok());

    auto fd = vfs.Open("/buggy", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd.ok());
    fs->SetSemanticFault(SafeFsSemanticFault::kWriteIgnoresTailByte);
    log.push_back("write -> " + Code(vfs.Write(*fd, BytesFromString("abcdef"))));
    fs->SetSemanticFault(SafeFsSemanticFault::kNone);
    auto out = vfs.Pread(*fd, 0, 64);
    log.push_back("read -> " + (out.ok() ? Digest(*out) : ErrnoName(out.error())));

    // kStatSizeOffByOne feeds the append cursor through StatHandle/Stat; the
    // appended byte must land at the same (wrong) offset on both planes.
    fs->SetSemanticFault(SafeFsSemanticFault::kStatSizeOffByOne);
    auto fda = vfs.Open("/buggy", kOpenWrite | kOpenAppend);
    EXPECT_TRUE(fda.ok());
    log.push_back("append -> " + Code(vfs.Write(*fda, BytesFromString("Z"))));
    fs->SetSemanticFault(SafeFsSemanticFault::kNone);
    auto after = vfs.Pread(*fd, 0, 64);
    log.push_back("after -> " + (after.ok() ? Digest(*after) : ErrnoName(after.error())));
    return log;
  };
  auto accel = run(true);
  auto base = run(false);
  EXPECT_EQ(accel, base);
  // The first fault is visible through the handle plane: the tail byte is
  // gone, so only "abcde" came back.
  EXPECT_EQ(accel[1], "read -> " + Digest(BytesFromString("abcde")));
}

// Warm sequential reads must be served by the fast path with read-ahead
// actually engaging — and return exactly the written bytes.
TEST_F(IoCoherenceTest, SequentialReadsEngageReadAheadAndStayCorrect) {
  RamDisk disk(kDiskBlocks, 53);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", fs).ok());

  constexpr uint64_t kFileBlocks = 24;
  Rng rng(530);
  Bytes content = rng.NextBytes(kFileBlocks * kBlockSize);
  auto fd = vfs.Open("/seq", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs.Pwrite(*fd, 0, ByteView(content)).ok());
  ASSERT_TRUE(vfs.Fsync(*fd).ok());  // checkpoint: the inode is clean again

  ASSERT_TRUE(vfs.Seek(*fd, 0).ok());
  Bytes reread;
  reread.reserve(content.size());
  for (;;) {
    auto chunk = vfs.Read(*fd, kBlockSize);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) {
      break;
    }
    reread.insert(reread.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(reread, content);

  auto stats = fs->io_stats();
  EXPECT_GT(stats.fast_reads, 0u);
  EXPECT_GT(stats.blockmap_hits, 0u);
  EXPECT_GT(stats.readahead_issued, 0u);
  EXPECT_GT(stats.readahead_hits, 0u);
}

// Randomized interleaving across threads: each thread hammers its own file
// through its own descriptor on one shared accelerated stack. Disjoint
// files make the final logical state interleaving-independent, so the tree
// must equal the model built by running the same per-thread scripts
// sequentially. Run under TSAN in CI.
TEST_F(IoCoherenceTest, EightThreadFdStressMatchesSequentialModel) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;

  auto run_script = [](Vfs& vfs, int t) {
    Rng rng(7000 + t);
    const std::string path = "/t" + std::to_string(t) + "/f";
    auto fd = vfs.Open(path, kOpenRead | kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fd.ok());
    for (int i = 0; i < kOpsPerThread; ++i) {
      switch (rng.NextBelow(6)) {
        case 0: {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(2000));
          (void)vfs.Pwrite(*fd, rng.NextBelow(12000), ByteView(data));
          break;
        }
        case 1:
          (void)vfs.Pread(*fd, rng.NextBelow(16000), 1 + rng.NextBelow(4096));
          break;
        case 2:
          (void)vfs.Read(*fd, 1 + rng.NextBelow(4096));
          break;
        case 3: {
          Bytes data = rng.NextBytes(1 + rng.NextBelow(1000));
          (void)vfs.Write(*fd, ByteView(data));
          break;
        }
        case 4:
          (void)vfs.Seek(*fd, rng.NextBelow(12000));
          break;
        default:
          if (rng.NextBelow(8) == 0) {
            (void)vfs.Fsync(*fd);
          }
          break;
      }
    }
    ASSERT_TRUE(vfs.Close(*fd).ok());
  };

  RamDisk disk(kDiskBlocks, 54);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", fs).ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(vfs.Mkdir("/t" + std::to_string(t)).ok());
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&vfs, &run_script, t] { run_script(vfs, t); });
  }
  for (auto& w : workers) {
    w.join();
  }

  // Sequential reference: same scripts, one at a time, on the model stack.
  auto memfs = std::make_shared<MemFs>();
  Vfs model_vfs;
  ASSERT_TRUE(model_vfs.Mount("/", memfs).ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(model_vfs.Mkdir("/t" + std::to_string(t)).ok());
    run_script(model_vfs, t);
  }
  ExpectSameTree(*fs, memfs->model(), "safefs(8-thread fd stress)");

  // The stress run must have touched both planes of the machinery.
  auto stats = fs->io_stats();
  EXPECT_GT(stats.fast_reads + stats.slow_reads, 0u);
}

// --- the asynchronous submission/completion plane ---

// One randomized batched-aio workload. Positional reads, writes, and fsyncs
// accumulate into a batch tagged with monotonically increasing user_data
// serials; namespace operations (open/close/unlink/rename/truncate) flush
// the batch first, acting as order barriers the way a real application
// would quiesce its ring before renaming files out from under it. With
// `q == nullptr` the identical op sequence executes through the synchronous
// syscalls in serial order — the reference plane.
std::vector<std::string> RunAioScript(Vfs& vfs, uint64_t seed, AioQueue* q) {
  std::vector<std::string> log;
  Rng rng(seed);
  const std::vector<std::string> pool{"/a0", "/a1", "/a2", "/d/b0", "/d/b1"};
  (void)vfs.Mkdir("/d");
  std::vector<Fd> fds;
  uint64_t serial = 0;
  std::vector<AioOp> batch;

  auto flush_batch = [&] {
    if (batch.empty()) {
      return;
    }
    if (q != nullptr) {
      std::vector<AioOpKind> kinds;
      kinds.reserve(batch.size());
      for (auto& op : batch) {
        kinds.push_back(op.kind);
        ASSERT_TRUE(q->Enqueue(std::move(op)));
      }
      ASSERT_EQ(q->Submit(), kinds.size());
      std::vector<AioCompletion> done;
      ASSERT_EQ(q->HarvestBlocking(done, kinds.size()), kinds.size());
      // Completions may surface in any order; the cookies recover the
      // submission order the log is keyed on.
      std::sort(done.begin(), done.end(),
                [](const AioCompletion& a, const AioCompletion& b) {
                  return a.user_data < b.user_data;
                });
      for (size_t i = 0; i < done.size(); ++i) {
        switch (kinds[i]) {
          case AioOpKind::kRead:
            log.push_back("aio-read -> " + (done[i].error == Errno::kOk
                                                ? Digest(done[i].data)
                                                : ErrnoName(done[i].error)));
            break;
          case AioOpKind::kWrite:
            log.push_back("aio-write -> " + std::string(ErrnoName(done[i].error)));
            break;
          case AioOpKind::kFsync:
            log.push_back("aio-fsync -> " + std::string(ErrnoName(done[i].error)));
            break;
        }
      }
    } else {
      for (const auto& op : batch) {
        switch (op.kind) {
          case AioOpKind::kRead: {
            auto out = vfs.Pread(op.fd, op.offset, op.length);
            log.push_back("aio-read -> " +
                          (out.ok() ? Digest(*out) : ErrnoName(out.error())));
            break;
          }
          case AioOpKind::kWrite:
            log.push_back("aio-write -> " +
                          Code(vfs.Pwrite(op.fd, op.offset, ByteView(op.data))));
            break;
          case AioOpKind::kFsync:
            log.push_back("aio-fsync -> " + Code(vfs.Fsync(op.fd)));
            break;
        }
      }
    }
    batch.clear();
  };

  for (int i = 0; i < 500; ++i) {
    const std::string& p = pool[rng.NextBelow(pool.size())];
    const std::string& r = pool[rng.NextBelow(pool.size())];
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2: {  // stage a positional read
        if (fds.empty()) {
          break;
        }
        AioOp op;
        op.kind = AioOpKind::kRead;
        op.fd = fds[rng.NextBelow(fds.size())];
        op.offset = rng.NextBelow(20000);
        op.length = 1 + rng.NextBelow(4096);
        op.user_data = ++serial;
        batch.push_back(std::move(op));
        break;
      }
      case 3:
      case 4:
      case 5: {  // stage a positional write
        if (fds.empty()) {
          break;
        }
        AioOp op;
        op.kind = AioOpKind::kWrite;
        op.fd = fds[rng.NextBelow(fds.size())];
        op.offset = rng.NextBelow(16000);
        op.data = rng.NextBytes(1 + rng.NextBelow(2500));
        op.user_data = ++serial;
        batch.push_back(std::move(op));
        break;
      }
      case 6: {  // stage an interleaved fsync
        if (fds.empty() || rng.NextBelow(3) != 0) {
          break;
        }
        AioOp op;
        op.kind = AioOpKind::kFsync;
        op.fd = fds[rng.NextBelow(fds.size())];
        op.user_data = ++serial;
        batch.push_back(std::move(op));
        break;
      }
      case 7: {  // barrier: open
        flush_batch();
        auto fd = vfs.Open(p, kOpenRead | kOpenWrite | kOpenCreate);
        log.push_back("open " + p + " -> " +
                      (fd.ok() ? "fd" : ErrnoName(fd.error())));
        if (fd.ok()) {
          fds.push_back(*fd);
        }
        break;
      }
      case 8: {  // barrier: close (the fd stays in the pool → EBADF later)
        if (fds.empty() || rng.NextBelow(2) != 0) {
          break;
        }
        flush_batch();
        size_t at = rng.NextBelow(fds.size());
        log.push_back("close -> " + Code(vfs.Close(fds[at])));
        if (rng.NextBelow(4) != 0) {
          fds.erase(fds.begin() + at);
        }
        break;
      }
      default: {  // barrier: namespace churn under live descriptors
        flush_batch();
        switch (rng.NextBelow(3)) {
          case 0:
            log.push_back("unlink " + p + " -> " + Code(vfs.Unlink(p)));
            break;
          case 1:
            log.push_back("rename " + p + " " + r + " -> " + Code(vfs.Rename(p, r)));
            break;
          default:
            log.push_back("truncate " + p + " -> " +
                          Code(vfs.Truncate(p, rng.NextBelow(20000))));
            break;
        }
        break;
      }
    }
    if (batch.size() >= 16) {
      flush_batch();
    }
  }
  flush_batch();
  while (!fds.empty()) {
    (void)vfs.Close(fds.back());
    fds.pop_back();
  }
  return log;
}

// The async tentpole's headline property: a randomized batched workload
// through the submission/completion rings — buffered write-back, delayed
// allocation, interleaved fsyncs, namespace churn between batches — is
// observably identical to the same ops through the synchronous base plane
// with write-back disabled, down to a block-for-block identical disk image
// after sync. Delayed allocation must replay to the very same blocks.
TEST_F(IoCoherenceTest, AsyncBatchedSubmissionsAreBitIdenticalToSyncPlane) {
  for (uint64_t seed : {91u, 912u, 9121u}) {
    RamDisk disk_async(kDiskBlocks, seed);
    auto async_fs = SafeFs::Format(disk_async, kInodes, 64).value();
    Vfs async_vfs;
    ASSERT_TRUE(async_vfs.Mount("/", async_fs).ok());
    std::vector<std::string> async_log;
    {
      AioQueue q(async_vfs, 64);
      async_log = RunAioScript(async_vfs, seed, &q);
      auto stats = q.stats();
      ASSERT_EQ(stats.completed, stats.submitted);
      ASSERT_EQ(stats.harvested, stats.submitted);
      ASSERT_GT(stats.submitted, 0u);
    }

    RamDisk disk_sync(kDiskBlocks, seed);
    auto sync_fs = SafeFs::Format(disk_sync, kInodes, 64).value();
    sync_fs->SetWriteBack(false);
    Vfs sync_vfs;
    ASSERT_TRUE(sync_vfs.Mount("/", sync_fs).ok());
    auto sync_log = RunAioScript(sync_vfs, seed, nullptr);

    ExpectSameLog(async_log, sync_log, "aio(write-back) vs sync(base)", seed);
    ASSERT_TRUE(async_vfs.SyncAll().ok());
    ASSERT_TRUE(sync_vfs.SyncAll().ok());
    ExpectIdenticalDisks(disk_async, disk_sync);

    // The async run must actually have buffered writes; the base run must
    // not have touched the write-back machinery at all.
    EXPECT_GT(async_fs->io_stats().fast_writes, 0u) << "seed " << seed;
    EXPECT_EQ(sync_fs->io_stats().fast_writes, 0u) << "seed " << seed;
  }
}

// Stale descriptors through the rings: batched ops on an unlinked-name fd
// must fail exactly like synchronous calls, and once a new file takes the
// name the same descriptor's batched ops must see the new file. Both planes
// run the same scripted sequence; logs must match line for line.
TEST_F(IoCoherenceTest, AsyncOpsOnStaleHandlesMatchSyncPlane) {
  auto run = [](bool async) {
    std::vector<std::string> log;
    RamDisk disk(kDiskBlocks, 61);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    if (!async) {
      fs->SetWriteBack(false);
    }
    Vfs vfs;
    EXPECT_TRUE(vfs.Mount("/", fs).ok());
    AioQueue q(vfs, 8);

    auto do_write = [&](Fd fd, uint64_t offset, const Bytes& data,
                        const char* tag) {
      if (async) {
        AioOp op;
        op.kind = AioOpKind::kWrite;
        op.fd = fd;
        op.offset = offset;
        op.data = data;
        ASSERT_TRUE(q.Enqueue(std::move(op)));
        ASSERT_EQ(q.Submit(), 1u);
        std::vector<AioCompletion> done;
        ASSERT_EQ(q.HarvestBlocking(done, 1), 1u);
        log.push_back(std::string(tag) + " -> " + ErrnoName(done[0].error));
      } else {
        log.push_back(std::string(tag) + " -> " + Code(vfs.Pwrite(fd, offset, ByteView(data))));
      }
    };
    auto do_read = [&](Fd fd, uint64_t offset, uint64_t length, const char* tag) {
      if (async) {
        AioOp op;
        op.kind = AioOpKind::kRead;
        op.fd = fd;
        op.offset = offset;
        op.length = length;
        ASSERT_TRUE(q.Enqueue(std::move(op)));
        ASSERT_EQ(q.Submit(), 1u);
        std::vector<AioCompletion> done;
        ASSERT_EQ(q.HarvestBlocking(done, 1), 1u);
        log.push_back(std::string(tag) + " -> " +
                      (done[0].error == Errno::kOk ? Digest(done[0].data)
                                                   : ErrnoName(done[0].error)));
      } else {
        auto out = vfs.Pread(fd, offset, length);
        log.push_back(std::string(tag) + " -> " +
                      (out.ok() ? Digest(*out) : ErrnoName(out.error())));
      }
    };

    auto fd = vfs.Open("/f", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd.ok());
    do_write(*fd, 0, BytesFromString("original content"), "write");
    do_read(*fd, 0, 64, "read");

    log.push_back("unlink -> " + Code(vfs.Unlink("/f")));
    do_write(*fd, 0, BytesFromString("x"), "write-unlinked");
    do_read(*fd, 0, 64, "read-unlinked");

    auto fd2 = vfs.Open("/f", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(fd2.ok());
    do_write(*fd2, 0, BytesFromString("replacement"), "write-new");
    // The original descriptor rebinds to the new file, batched or not.
    do_read(*fd, 0, 64, "read-replaced");

    EXPECT_TRUE(vfs.SyncAll().ok());
    return log;
  };

  auto async_log = run(true);
  auto sync_log = run(false);
  ExpectSameLog(async_log, sync_log, "aio stale handles vs sync", 61);
  EXPECT_EQ(async_log[4], "read-unlinked -> " + std::string(ErrnoName(Errno::kENOENT)));
  EXPECT_EQ(async_log[6], "read-replaced -> " + Digest(BytesFromString("replacement")));
}

}  // namespace
}  // namespace skern
