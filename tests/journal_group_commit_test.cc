// Tests for journal group commit: Submit/Flush batching semantics, barrier
// accounting, and the crash matrix over every write position of a batched
// commit (recovery must yield none or all of the batch).
#include <gtest/gtest.h>

#include "src/block/block_device.h"
#include "src/block/journal.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 64;
constexpr uint64_t kJournalStart = 48;
constexpr uint64_t kJournalLen = 16;

Bytes Pattern(uint8_t fill) { return Bytes(kBlockSize, fill); }

Bytes ReadDirect(BlockDevice& dev, uint64_t block) {
  Bytes out(kBlockSize, 0);
  EXPECT_TRUE(dev.ReadBlock(block, MutableByteView(out)).ok());
  return out;
}

Journal::Tx OneBlockTx(Journal& journal, uint64_t home, uint8_t fill) {
  auto tx = journal.Begin();
  tx.AddBlock(home, ByteView(Pattern(fill)));
  return tx;
}

TEST(JournalGroupCommitTest, SubmitDefersUntilFlush) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 3, 0x33)).ok());
  EXPECT_EQ(journal.pending_tx_count(), 1u);
  EXPECT_EQ(journal.stats().commits, 0u);
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0));  // nothing durable yet
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(journal.pending_tx_count(), 0u);
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().txs_committed, 1u);
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
}

TEST(JournalGroupCommitTest, BatchSharesOneOnDiskCommit) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0x11)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 2, 0x22)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 3, 0x33)).ok());
  EXPECT_EQ(journal.pending_tx_count(), 3u);
  EXPECT_EQ(journal.pending_block_count(), 3u);
  ASSERT_TRUE(journal.Flush().ok());
  // Three logical transactions, one descriptor/commit sequence, one txid.
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().txs_committed, 3u);
  EXPECT_EQ(journal.stats().blocks_journaled, 3u);
  EXPECT_EQ(journal.sequence(), 2u);
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0x11));
  EXPECT_EQ(ReadDirect(disk, 2), Pattern(0x22));
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
}

TEST(JournalGroupCommitTest, BlocksCoalesceAcrossTransactions) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 5, 0x01)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 5, 0x02)).ok());  // last wins
  EXPECT_EQ(journal.pending_block_count(), 1u);
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(journal.stats().blocks_journaled, 1u);
  EXPECT_EQ(ReadDirect(disk, 5), Pattern(0x02));
}

TEST(JournalGroupCommitTest, AutoFlushAtMaxBatchBound) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  journal.set_max_batch_txs(2);
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0x11)).ok());
  EXPECT_EQ(journal.stats().commits, 0u);
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 2, 0x22)).ok());
  // The second submit hit the bound and flushed the batch.
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.pending_tx_count(), 0u);
  EXPECT_EQ(ReadDirect(disk, 2), Pattern(0x22));
}

TEST(JournalGroupCommitTest, AutoFlushWhenBatchWouldExceedCapacity) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, 5);  // capacity = 2
  ASSERT_TRUE(journal.Format().ok());
  auto big = journal.Begin();
  big.AddBlock(1, ByteView(Pattern(0x11)));
  big.AddBlock(2, ByteView(Pattern(0x22)));
  ASSERT_TRUE(journal.Submit(std::move(big)).ok());
  EXPECT_EQ(journal.stats().commits, 0u);
  // Doesn't fit alongside the staged batch: the batch flushes first.
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 3, 0x33)).ok());
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.pending_tx_count(), 1u);
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0x11));
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0));  // still pending
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
}

TEST(JournalGroupCommitTest, OversizeSubmitRejectedWithoutDisturbingBatch) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, 5);  // capacity = 2
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0x11)).ok());
  auto oversize = journal.Begin();
  oversize.AddBlock(2, ByteView(Pattern(2)));
  oversize.AddBlock(3, ByteView(Pattern(3)));
  oversize.AddBlock(4, ByteView(Pattern(4)));
  EXPECT_EQ(journal.Submit(std::move(oversize)).code(), Errno::kENOSPC);
  // The staged batch survived the rejection, untouched and unflushed.
  EXPECT_EQ(journal.pending_tx_count(), 1u);
  EXPECT_EQ(journal.stats().commits, 0u);
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0x11));
  EXPECT_EQ(ReadDirect(disk, 2), Pattern(0));
}

TEST(JournalGroupCommitTest, BatchingCutsBarriersPerTransaction) {
  constexpr int kTxs = 8;
  auto run = [](bool batched) {
    RamDisk disk(kDiskBlocks);
    Journal journal(disk, kJournalStart, kJournalLen);
    EXPECT_TRUE(journal.Format().ok());
    uint64_t flushes_before = journal.stats().device_flushes;
    for (int i = 0; i < kTxs; ++i) {
      auto tx = journal.Begin();
      tx.AddBlock(static_cast<uint64_t>(i), ByteView(Pattern(static_cast<uint8_t>(i + 1))));
      Status s = batched ? journal.Submit(std::move(tx)) : journal.Commit(std::move(tx));
      EXPECT_TRUE(s.ok());
    }
    if (batched) {
      EXPECT_TRUE(journal.Flush().ok());
    }
    for (int i = 0; i < kTxs; ++i) {
      Bytes out(kBlockSize, 0);
      EXPECT_TRUE(disk.ReadBlock(static_cast<uint64_t>(i), MutableByteView(out)).ok());
      EXPECT_EQ(out, Pattern(static_cast<uint8_t>(i + 1)));
    }
    return journal.stats().device_flushes - flushes_before;
  };
  uint64_t unbatched_flushes = run(false);
  uint64_t batched_flushes = run(true);
  EXPECT_EQ(unbatched_flushes, 4u * kTxs);  // four barriers per tx
  EXPECT_EQ(batched_flushes, 4u);           // four barriers for the batch
}

TEST(JournalGroupCommitTest, UnflushedBatchIsLostAtCrash) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Commit(OneBlockTx(journal, 1, 0xA1)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0xB1)).ok());
  disk.CrashNow(CrashPersistence::kLoseAll);
  Journal recovered(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(recovered.Recover().ok());
  // Submit promised no durability; the committed state is intact.
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0xA1));
}

// The crash matrix (satellite of the group-commit contract): crash the device
// at EVERY write position inside a batched flush of three transactions. After
// recovery the home blocks show either none of the batch or all of it — a
// batch is exactly as atomic as a single transaction used to be.
TEST(JournalGroupCommitTest, CrashMatrixYieldsNoneOrAllOfBatch) {
  // A 3-block batch flush issues: 1 desc + 3 data + 1 commit + 3 home + 1 sb
  // = 9 writes (plus barriers). Probe each, under write-reordering crashes.
  for (uint64_t crash_at = 1; crash_at <= 9; ++crash_at) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      RamDisk disk(kDiskBlocks, seed * 100 + crash_at);
      Journal setup(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(setup.Format().ok());
      auto base = setup.Begin();
      base.AddBlock(1, ByteView(Pattern(0xA1)));
      base.AddBlock(2, ByteView(Pattern(0xA2)));
      base.AddBlock(3, ByteView(Pattern(0xA3)));
      ASSERT_TRUE(setup.Commit(std::move(base)).ok());

      // Three logical transactions staged into one batch; the crash fires
      // mid-Flush, between/inside the batch's barrier sequence.
      ASSERT_TRUE(setup.Submit(OneBlockTx(setup, 1, 0xB1)).ok());
      ASSERT_TRUE(setup.Submit(OneBlockTx(setup, 2, 0xB2)).ok());
      ASSERT_TRUE(setup.Submit(OneBlockTx(setup, 3, 0xB3)).ok());
      disk.ScheduleCrashAfterWrites(crash_at, CrashPersistence::kRandomSubset,
                                    /*tear_last=*/true);
      Status s = setup.Flush();
      if (s.ok()) {
        continue;  // crash armed beyond this flush's writes
      }

      // "Reboot": recover on a fresh journal instance.
      Journal recovered(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(recovered.Recover().ok())
          << "crash_at=" << crash_at << " seed=" << seed;
      Bytes b1 = ReadDirect(disk, 1);
      Bytes b2 = ReadDirect(disk, 2);
      Bytes b3 = ReadDirect(disk, 3);
      bool all_old = b1 == Pattern(0xA1) && b2 == Pattern(0xA2) && b3 == Pattern(0xA3);
      bool all_new = b1 == Pattern(0xB1) && b2 == Pattern(0xB2) && b3 == Pattern(0xB3);
      EXPECT_TRUE(all_old || all_new)
          << "crash_at=" << crash_at << " seed=" << seed
          << ": batch applied partially after recovery";
    }
  }
}

}  // namespace
}  // namespace skern
