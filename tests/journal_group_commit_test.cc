// Tests for journal group commit: Submit/Flush batching semantics, barrier
// accounting, and the crash matrix over every write position of a batched
// commit (recovery must yield none or all of the batch).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/block/block_device.h"
#include "src/block/journal.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 64;
constexpr uint64_t kJournalStart = 48;
constexpr uint64_t kJournalLen = 16;

Bytes Pattern(uint8_t fill) { return Bytes(kBlockSize, fill); }

Bytes ReadDirect(BlockDevice& dev, uint64_t block) {
  Bytes out(kBlockSize, 0);
  EXPECT_TRUE(dev.ReadBlock(block, MutableByteView(out)).ok());
  return out;
}

Journal::Tx OneBlockTx(Journal& journal, uint64_t home, uint8_t fill) {
  auto tx = journal.Begin();
  tx.AddBlock(home, ByteView(Pattern(fill)));
  return tx;
}

TEST(JournalGroupCommitTest, SubmitDefersUntilFlush) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 3, 0x33)).ok());
  EXPECT_EQ(journal.pending_tx_count(), 1u);
  EXPECT_EQ(journal.stats().commits, 0u);
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0));  // nothing durable yet
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(journal.pending_tx_count(), 0u);
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().txs_committed, 1u);
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
}

TEST(JournalGroupCommitTest, BatchSharesOneOnDiskCommit) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0x11)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 2, 0x22)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 3, 0x33)).ok());
  EXPECT_EQ(journal.pending_tx_count(), 3u);
  EXPECT_EQ(journal.pending_block_count(), 3u);
  ASSERT_TRUE(journal.Flush().ok());
  // Three logical transactions, one descriptor/commit sequence, one txid.
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().txs_committed, 3u);
  EXPECT_EQ(journal.stats().blocks_journaled, 3u);
  EXPECT_EQ(journal.sequence(), 2u);
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0x11));
  EXPECT_EQ(ReadDirect(disk, 2), Pattern(0x22));
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
}

TEST(JournalGroupCommitTest, BlocksCoalesceAcrossTransactions) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 5, 0x01)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 5, 0x02)).ok());  // last wins
  EXPECT_EQ(journal.pending_block_count(), 1u);
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(journal.stats().blocks_journaled, 1u);
  EXPECT_EQ(ReadDirect(disk, 5), Pattern(0x02));
}

TEST(JournalGroupCommitTest, AutoFlushAtMaxBatchBound) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  journal.set_max_batch_txs(2);
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0x11)).ok());
  EXPECT_EQ(journal.stats().commits, 0u);
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 2, 0x22)).ok());
  // The second submit hit the bound and flushed the batch.
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.pending_tx_count(), 0u);
  EXPECT_EQ(ReadDirect(disk, 2), Pattern(0x22));
}

TEST(JournalGroupCommitTest, AutoFlushWhenBatchWouldExceedCapacity) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, 5);  // capacity = 2
  ASSERT_TRUE(journal.Format().ok());
  auto big = journal.Begin();
  big.AddBlock(1, ByteView(Pattern(0x11)));
  big.AddBlock(2, ByteView(Pattern(0x22)));
  ASSERT_TRUE(journal.Submit(std::move(big)).ok());
  EXPECT_EQ(journal.stats().commits, 0u);
  // Doesn't fit alongside the staged batch: the batch flushes first.
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 3, 0x33)).ok());
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.pending_tx_count(), 1u);
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0x11));
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0));  // still pending
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
}

TEST(JournalGroupCommitTest, OversizeSubmitRejectedWithoutDisturbingBatch) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, 5);  // capacity = 2
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0x11)).ok());
  auto oversize = journal.Begin();
  oversize.AddBlock(2, ByteView(Pattern(2)));
  oversize.AddBlock(3, ByteView(Pattern(3)));
  oversize.AddBlock(4, ByteView(Pattern(4)));
  EXPECT_EQ(journal.Submit(std::move(oversize)).code(), Errno::kENOSPC);
  // The staged batch survived the rejection, untouched and unflushed.
  EXPECT_EQ(journal.pending_tx_count(), 1u);
  EXPECT_EQ(journal.stats().commits, 0u);
  ASSERT_TRUE(journal.Flush().ok());
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0x11));
  EXPECT_EQ(ReadDirect(disk, 2), Pattern(0));
}

TEST(JournalGroupCommitTest, BatchingCutsBarriersPerTransaction) {
  constexpr int kTxs = 8;
  auto run = [](bool batched) {
    RamDisk disk(kDiskBlocks);
    Journal journal(disk, kJournalStart, kJournalLen);
    EXPECT_TRUE(journal.Format().ok());
    uint64_t flushes_before = journal.stats().device_flushes;
    for (int i = 0; i < kTxs; ++i) {
      auto tx = journal.Begin();
      tx.AddBlock(static_cast<uint64_t>(i), ByteView(Pattern(static_cast<uint8_t>(i + 1))));
      Status s = batched ? journal.Submit(std::move(tx)) : journal.Commit(std::move(tx));
      EXPECT_TRUE(s.ok());
    }
    if (batched) {
      EXPECT_TRUE(journal.Flush().ok());
    }
    for (int i = 0; i < kTxs; ++i) {
      Bytes out(kBlockSize, 0);
      EXPECT_TRUE(disk.ReadBlock(static_cast<uint64_t>(i), MutableByteView(out)).ok());
      EXPECT_EQ(out, Pattern(static_cast<uint8_t>(i + 1)));
    }
    return journal.stats().device_flushes - flushes_before;
  };
  uint64_t unbatched_flushes = run(false);
  uint64_t batched_flushes = run(true);
  EXPECT_EQ(unbatched_flushes, 4u * kTxs);  // four barriers per tx
  EXPECT_EQ(batched_flushes, 4u);           // four barriers for the batch
}

TEST(JournalGroupCommitTest, UnflushedBatchIsLostAtCrash) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Commit(OneBlockTx(journal, 1, 0xA1)).ok());
  ASSERT_TRUE(journal.Submit(OneBlockTx(journal, 1, 0xB1)).ok());
  disk.CrashNow(CrashPersistence::kLoseAll);
  Journal recovered(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(recovered.Recover().ok());
  // Submit promised no durability; the committed state is intact.
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0xA1));
}

// The crash matrix (satellite of the group-commit contract): crash the device
// at EVERY write position inside a batched flush of three transactions. After
// recovery the home blocks show either none of the batch or all of it — a
// batch is exactly as atomic as a single transaction used to be.
TEST(JournalGroupCommitTest, CrashMatrixYieldsNoneOrAllOfBatch) {
  // A 3-block batch flush issues: 1 desc + 3 data + 1 commit + 3 home + 1 sb
  // = 9 writes (plus barriers). Probe each, under write-reordering crashes.
  for (uint64_t crash_at = 1; crash_at <= 9; ++crash_at) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      RamDisk disk(kDiskBlocks, seed * 100 + crash_at);
      Journal setup(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(setup.Format().ok());
      auto base = setup.Begin();
      base.AddBlock(1, ByteView(Pattern(0xA1)));
      base.AddBlock(2, ByteView(Pattern(0xA2)));
      base.AddBlock(3, ByteView(Pattern(0xA3)));
      ASSERT_TRUE(setup.Commit(std::move(base)).ok());

      // Three logical transactions staged into one batch; the crash fires
      // mid-Flush, between/inside the batch's barrier sequence.
      ASSERT_TRUE(setup.Submit(OneBlockTx(setup, 1, 0xB1)).ok());
      ASSERT_TRUE(setup.Submit(OneBlockTx(setup, 2, 0xB2)).ok());
      ASSERT_TRUE(setup.Submit(OneBlockTx(setup, 3, 0xB3)).ok());
      disk.ScheduleCrashAfterWrites(crash_at, CrashPersistence::kRandomSubset,
                                    /*tear_last=*/true);
      Status s = setup.Flush();
      if (s.ok()) {
        continue;  // crash armed beyond this flush's writes
      }

      // "Reboot": recover on a fresh journal instance.
      Journal recovered(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(recovered.Recover().ok())
          << "crash_at=" << crash_at << " seed=" << seed;
      Bytes b1 = ReadDirect(disk, 1);
      Bytes b2 = ReadDirect(disk, 2);
      Bytes b3 = ReadDirect(disk, 3);
      bool all_old = b1 == Pattern(0xA1) && b2 == Pattern(0xA2) && b3 == Pattern(0xA3);
      bool all_new = b1 == Pattern(0xB1) && b2 == Pattern(0xB2) && b3 == Pattern(0xB3);
      EXPECT_TRUE(all_old || all_new)
          << "crash_at=" << crash_at << " seed=" << seed
          << ": batch applied partially after recovery";
    }
  }
}

// --- lazy checkpointing and the multi-batch ring ---

TEST(JournalGroupCommitTest, LazyCheckpointDefersHomeWritesButReadHomeSeesThem) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  journal.SetLazyCheckpoint(true);

  ASSERT_TRUE(journal.Commit(OneBlockTx(journal, 7, 0x77)).ok());
  // Committed and durable — but the home block is stale on the device; the
  // content lives in the journal ring and the overlay.
  EXPECT_TRUE(journal.HasUncheckpointed());
  EXPECT_EQ(journal.stats().checkpoints, 0u);
  EXPECT_EQ(ReadDirect(disk, 7), Pattern(0));
  Bytes via_overlay(kBlockSize, 0);
  ASSERT_TRUE(journal.ReadHome(7, MutableByteView(via_overlay)).ok());
  EXPECT_EQ(via_overlay, Pattern(0x77));

  // Checkpoint folds the overlay into the home locations and empties it.
  ASSERT_TRUE(journal.Checkpoint().ok());
  EXPECT_FALSE(journal.HasUncheckpointed());
  EXPECT_EQ(journal.overlay_block_count(), 0u);
  EXPECT_EQ(ReadDirect(disk, 7), Pattern(0x77));
  EXPECT_EQ(journal.stats().checkpoints, 1u);
}

TEST(JournalGroupCommitTest, CommittedBatchesAppendUntilTheAreaForcesCheckpoint) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);  // capacity 13
  ASSERT_TRUE(journal.Format().ok());
  journal.SetLazyCheckpoint(true);

  // Each one-block batch occupies 3 ring slots (desc + data + commit); the
  // 16-block area (1 superblock + 15 ring) holds 5 such records. Committing
  // more must force a checkpoint to reclaim the ring, not fail.
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(
        journal.Commit(OneBlockTx(journal, 1 + static_cast<uint64_t>(i), 0x40 + i)).ok())
        << "commit " << i;
  }
  EXPECT_GT(journal.stats().checkpoints, 0u);
  EXPECT_LT(journal.stats().checkpoints, 9u);  // still batching checkpoints
  ASSERT_TRUE(journal.Checkpoint().ok());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(ReadDirect(disk, 1 + static_cast<uint64_t>(i)),
              Pattern(static_cast<uint8_t>(0x40 + i)));
  }
}

// Group-commit fairness under concurrency: many threads Commit() at once;
// each transaction lands exactly once (ticketed FIFO hand-off between the
// staging and commit planes), and batches coalesce so the device sees fewer
// commits than transactions. Run under TSAN in CI.
TEST(JournalGroupCommitTest, ConcurrentCommittersAllLandExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr int kTxsPerThread = 12;
  RamDisk disk(kDiskBlocks * 4);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());

  std::vector<std::thread> committers;
  committers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&journal, t] {
      for (int i = 0; i < kTxsPerThread; ++i) {
        // Each thread owns one home block and writes a recognizable final
        // value last, so coalescing across batches cannot corrupt it.
        auto tx = journal.Begin();
        tx.AddBlock(static_cast<uint64_t>(t),
                    ByteView(Pattern(static_cast<uint8_t>(0x80 + t))));
        EXPECT_TRUE(journal.Commit(std::move(tx)).ok());
      }
    });
  }
  for (auto& c : committers) {
    c.join();
  }

  auto stats = journal.stats();
  EXPECT_EQ(stats.txs_committed, static_cast<uint64_t>(kThreads) * kTxsPerThread);
  // Every thread's block carries its final pattern.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ReadDirect(disk, static_cast<uint64_t>(t)),
              Pattern(static_cast<uint8_t>(0x80 + t)));
  }
  // And a fresh recovery finds nothing outstanding.
  Journal recovered(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.stats().replays, 0u);
}

TEST(JournalGroupCommitTest, FailedCommitPoisonsAreaThenNextCommitRecovers) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Commit(OneBlockTx(journal, 1, 0xA1)).ok());

  // The next record's data block errors: the flush fails and the batch is
  // discarded, but the journal stays usable.
  disk.InjectBlockError(kJournalStart + 2);
  EXPECT_FALSE(journal.Commit(OneBlockTx(journal, 1, 0xB1)).ok());
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0xA1));

  disk.ClearBlockErrors();
  ASSERT_TRUE(journal.Commit(OneBlockTx(journal, 1, 0xC1)).ok());
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0xC1));
  // A reboot after the poisoned window replays cleanly too.
  Journal recovered(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0xC1));
}

// The concurrent-transaction crash matrix: with several committed batches
// sitting in the ring (lazy checkpoint — the write-back plane's mode), crash
// the device at EVERY write position of the next batch's commit protocol,
// under write reordering with a torn final write. Recovery must land on a
// whole-batch boundary: the ring's committed prefix fully applied, the torn
// tail fully ignored.
TEST(JournalGroupCommitTest, CrashMatrixOverMultiBatchRingReplaysWholePrefix) {
  // Batch 3 writes desc + 2 data + commit = 4 positions (lazy mode writes no
  // home blocks during commit).
  for (uint64_t crash_at = 1; crash_at <= 4; ++crash_at) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      RamDisk disk(kDiskBlocks, seed * 100 + crash_at);
      Journal setup(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(setup.Format().ok());
      auto base = setup.Begin();
      base.AddBlock(1, ByteView(Pattern(0xA1)));
      base.AddBlock(2, ByteView(Pattern(0xA2)));
      base.AddBlock(3, ByteView(Pattern(0xA3)));
      ASSERT_TRUE(setup.Commit(std::move(base)).ok());
      setup.SetLazyCheckpoint(true);

      // Two committed-but-not-checkpointed batches accumulate in the ring.
      auto b1 = setup.Begin();
      b1.AddBlock(1, ByteView(Pattern(0xB1)));
      b1.AddBlock(2, ByteView(Pattern(0xB2)));
      ASSERT_TRUE(setup.Commit(std::move(b1)).ok());
      auto b2 = setup.Begin();
      b2.AddBlock(2, ByteView(Pattern(0xC2)));
      b2.AddBlock(3, ByteView(Pattern(0xC3)));
      ASSERT_TRUE(setup.Commit(std::move(b2)).ok());

      // The third batch crashes mid-commit.
      auto b3 = setup.Begin();
      b3.AddBlock(1, ByteView(Pattern(0xD1)));
      b3.AddBlock(3, ByteView(Pattern(0xD3)));
      disk.ScheduleCrashAfterWrites(crash_at, CrashPersistence::kRandomSubset,
                                    /*tear_last=*/true);
      Status s = setup.Commit(std::move(b3));
      if (s.ok()) {
        continue;  // crash armed beyond this commit's writes
      }

      Journal recovered(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(recovered.Recover().ok())
          << "crash_at=" << crash_at << " seed=" << seed;
      Bytes r1 = ReadDirect(disk, 1);
      Bytes r2 = ReadDirect(disk, 2);
      Bytes r3 = ReadDirect(disk, 3);
      // Batches 1 and 2 were durable before the crash: recovery must replay
      // both. Batch 3 is all-or-nothing on top.
      bool through_b2 =
          r1 == Pattern(0xB1) && r2 == Pattern(0xC2) && r3 == Pattern(0xC3);
      bool through_b3 =
          r1 == Pattern(0xD1) && r2 == Pattern(0xC2) && r3 == Pattern(0xD3);
      EXPECT_TRUE(through_b2 || through_b3)
          << "crash_at=" << crash_at << " seed=" << seed
          << ": recovery did not land on a batch boundary";
      EXPECT_GE(recovered.stats().replays, 2u)
          << "crash_at=" << crash_at << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace skern
