// Tests for the write-ahead journal: commit protocol, recovery, and the
// crash-atomicity property under exhaustive and randomized crash points.
#include <gtest/gtest.h>

#include "src/block/block_device.h"
#include "src/block/journal.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 64;
constexpr uint64_t kJournalStart = 48;
constexpr uint64_t kJournalLen = 16;

Bytes Pattern(uint8_t fill) { return Bytes(kBlockSize, fill); }

Bytes ReadDirect(BlockDevice& dev, uint64_t block) {
  Bytes out(kBlockSize, 0);
  EXPECT_TRUE(dev.ReadBlock(block, MutableByteView(out)).ok());
  return out;
}

TEST(JournalTest, FormatAndRecoverCleanJournal) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Recover().ok());
  EXPECT_EQ(journal.stats().empty_recoveries, 1u);
  EXPECT_EQ(journal.sequence(), 1u);
}

TEST(JournalTest, CommitAppliesToHomeLocations) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  auto tx = journal.Begin();
  tx.AddBlock(3, ByteView(Pattern(0x33)));
  tx.AddBlock(7, ByteView(Pattern(0x77)));
  ASSERT_TRUE(journal.Commit(std::move(tx)).ok());
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x33));
  EXPECT_EQ(ReadDirect(disk, 7), Pattern(0x77));
  EXPECT_EQ(journal.sequence(), 2u);
  EXPECT_EQ(journal.stats().commits, 1u);
  EXPECT_EQ(journal.stats().blocks_journaled, 2u);
}

TEST(JournalTest, EmptyCommitIsNoop) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  ASSERT_TRUE(journal.Commit(journal.Begin()).ok());
  EXPECT_EQ(journal.stats().commits, 0u);
  EXPECT_EQ(journal.sequence(), 1u);
}

TEST(JournalTest, DuplicateBlockCoalesces) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());
  auto tx = journal.Begin();
  tx.AddBlock(3, ByteView(Pattern(0x01)));
  tx.AddBlock(3, ByteView(Pattern(0x02)));  // last write wins
  EXPECT_EQ(tx.BlockCount(), 1u);
  ASSERT_TRUE(journal.Commit(std::move(tx)).ok());
  EXPECT_EQ(ReadDirect(disk, 3), Pattern(0x02));
}

TEST(JournalTest, OversizeTransactionRejected) {
  RamDisk disk(kDiskBlocks);
  Journal journal(disk, kJournalStart, 5);  // capacity = 2
  ASSERT_TRUE(journal.Format().ok());
  auto tx = journal.Begin();
  tx.AddBlock(1, ByteView(Pattern(1)));
  tx.AddBlock(2, ByteView(Pattern(2)));
  tx.AddBlock(3, ByteView(Pattern(3)));
  EXPECT_EQ(journal.Commit(std::move(tx)).code(), Errno::kENOSPC);
  // Home blocks untouched.
  EXPECT_EQ(ReadDirect(disk, 1), Pattern(0));
}

TEST(JournalTest, SequenceSurvivesRemount) {
  RamDisk disk(kDiskBlocks);
  {
    Journal journal(disk, kJournalStart, kJournalLen);
    ASSERT_TRUE(journal.Format().ok());
    auto tx = journal.Begin();
    tx.AddBlock(1, ByteView(Pattern(1)));
    ASSERT_TRUE(journal.Commit(std::move(tx)).ok());
  }
  Journal journal2(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal2.Recover().ok());
  EXPECT_EQ(journal2.sequence(), 2u);
}

// The core crash-atomicity property: crash the device at EVERY write position
// inside a commit; after recovery the home blocks show either none or all of
// the transaction — never a mix.
TEST(JournalTest, CrashAtomicityExhaustiveOverCrashPoints) {
  // A commit of 3 blocks issues: 1 desc + 3 data + 1 commit + 3 home + 1 sb
  // = 9 writes (plus flushes). Probe each.
  for (uint64_t crash_at = 1; crash_at <= 9; ++crash_at) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      RamDisk disk(kDiskBlocks, seed * 100 + crash_at);
      Journal setup(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(setup.Format().ok());
      // Established base content.
      auto base = setup.Begin();
      base.AddBlock(1, ByteView(Pattern(0xA1)));
      base.AddBlock(2, ByteView(Pattern(0xA2)));
      base.AddBlock(3, ByteView(Pattern(0xA3)));
      ASSERT_TRUE(setup.Commit(std::move(base)).ok());

      disk.ScheduleCrashAfterWrites(crash_at, CrashPersistence::kRandomSubset,
                                    /*tear_last=*/true);
      auto tx = setup.Begin();
      tx.AddBlock(1, ByteView(Pattern(0xB1)));
      tx.AddBlock(2, ByteView(Pattern(0xB2)));
      tx.AddBlock(3, ByteView(Pattern(0xB3)));
      Status s = setup.Commit(std::move(tx));
      if (s.ok()) {
        continue;  // crash armed beyond this commit's writes
      }

      // "Reboot": recover on a fresh journal instance.
      Journal recovered(disk, kJournalStart, kJournalLen);
      ASSERT_TRUE(recovered.Recover().ok())
          << "crash_at=" << crash_at << " seed=" << seed;
      Bytes b1 = ReadDirect(disk, 1);
      Bytes b2 = ReadDirect(disk, 2);
      Bytes b3 = ReadDirect(disk, 3);
      bool all_old = b1 == Pattern(0xA1) && b2 == Pattern(0xA2) && b3 == Pattern(0xA3);
      bool all_new = b1 == Pattern(0xB1) && b2 == Pattern(0xB2) && b3 == Pattern(0xB3);
      EXPECT_TRUE(all_old || all_new)
          << "crash_at=" << crash_at << " seed=" << seed << ": mixed state after recovery";
    }
  }
}

// Property sweep: randomized multi-transaction histories with a crash at a
// random write; the recovered state must equal the last committed history
// prefix.
struct CrashSweepParams {
  uint64_t seed;
  int transactions;
};

class JournalCrashSweepTest : public ::testing::TestWithParam<CrashSweepParams> {};

TEST_P(JournalCrashSweepTest, RecoversToCommittedPrefix) {
  const auto params = GetParam();
  Rng rng(params.seed);
  RamDisk disk(kDiskBlocks, params.seed);
  Journal journal(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(journal.Format().ok());

  // Expected durable content per home block after each committed txn.
  std::map<uint64_t, Bytes> committed;
  uint64_t crash_in = 3 + rng.NextBelow(40);  // crash within the next N writes
  disk.ScheduleCrashAfterWrites(crash_in, CrashPersistence::kRandomSubset, true);

  std::map<uint64_t, Bytes> pending_snapshot = committed;
  bool crashed = false;
  for (int t = 0; t < params.transactions && !crashed; ++t) {
    auto tx = journal.Begin();
    std::map<uint64_t, Bytes> txn_content;
    int blocks = 1 + static_cast<int>(rng.NextBelow(4));
    for (int b = 0; b < blocks; ++b) {
      uint64_t home = rng.NextBelow(16);
      Bytes content = rng.NextBytes(kBlockSize);
      tx.AddBlock(home, ByteView(content));
      txn_content[home] = content;
    }
    Status s = journal.Commit(std::move(tx));
    if (s.ok()) {
      for (auto& [home, content] : txn_content) {
        committed[home] = content;
      }
    } else {
      crashed = true;
    }
  }
  if (!crashed) {
    GTEST_SKIP() << "crash point beyond workload; nothing to verify";
  }

  Journal recovered(disk, kJournalStart, kJournalLen);
  ASSERT_TRUE(recovered.Recover().ok());
  // Every block the committed history wrote must hold either its last
  // committed content, or (only for blocks also touched by the crashed,
  // uncommitted txn) possibly the crashed txn's content if recovery replayed
  // it — but replay happens only with a durable commit record, in which case
  // the txn IS committed. So: check committed contents exactly, allowing the
  // final in-flight transaction to have been fully applied if its commit
  // record made it to the replay path.
  uint64_t replays = recovered.stats().replays;
  for (const auto& [home, content] : committed) {
    Bytes actual = ReadDirect(disk, home);
    if (actual != content) {
      // Permissible only if a replayed transaction overwrote this block.
      EXPECT_GT(replays, 0u) << "block " << home << " diverged without any replay";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCrashes, JournalCrashSweepTest,
                         ::testing::Values(CrashSweepParams{11, 10}, CrashSweepParams{22, 10},
                                           CrashSweepParams{33, 15}, CrashSweepParams{44, 15},
                                           CrashSweepParams{55, 20}, CrashSweepParams{66, 20},
                                           CrashSweepParams{77, 8}, CrashSweepParams{88, 12}));

}  // namespace
}  // namespace skern
