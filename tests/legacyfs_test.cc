// Tests for legacyfs: correct operation through the adapter when no faults
// are injected, the ERR_PTR surface, crash behaviour without a journal, and
// the manifestation of each injected bug class.
#include <gtest/gtest.h>

#include <memory>
#include <atomic>
#include <thread>

#include "src/base/err_ptr.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/specfs/specfs.h"
#include "src/ownership/leak_detector.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 256;
constexpr uint64_t kInodes = 64;

class LegacyFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    LeakDetector::Get().ResetForTesting();
    disk_ = std::make_unique<RamDisk>(kDiskBlocks, 11);
    cache_ = std::make_unique<BufferCache>(*disk_, 128);
    geo_ = MakeGeometry(kDiskBlocks, kInodes, 0);
    fs_ = MakeLegacyFs(*cache_, &geo_, /*format=*/true);
    ASSERT_NE(fs_, nullptr);
  }

  void TearDown() override {
    fs_.reset();
    cache_.reset();
  }

  std::unique_ptr<RamDisk> disk_;
  std::unique_ptr<BufferCache> cache_;
  FsGeometry geo_;
  std::shared_ptr<FileSystem> fs_;
};

TEST_F(LegacyFsTest, BasicRoundTrip) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, BytesFromString("legacy data")).ok());
  auto data = fs_->Read("/f", 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringFromBytes(data.value()), "legacy data");
}

TEST_F(LegacyFsTest, ErrorSemanticsMatchTheModel) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->Create("/f").code(), Errno::kEEXIST);
  EXPECT_EQ(fs_->Create("/ghost/x").code(), Errno::kENOENT);
  EXPECT_EQ(fs_->Create("/f/x").code(), Errno::kENOTDIR);
  EXPECT_EQ(fs_->Unlink("/d").code(), Errno::kEISDIR);
  EXPECT_EQ(fs_->Rmdir("/f").code(), Errno::kENOTDIR);
  EXPECT_EQ(fs_->Stat("/missing").error(), Errno::kENOENT);
}

TEST_F(LegacyFsTest, DirectoriesAndRename) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Create("/a/f").ok());
  ASSERT_TRUE(fs_->Write("/a/f", 0, BytesFromString("xyz")).ok());
  ASSERT_TRUE(fs_->Rename("/a", "/b").ok());
  EXPECT_EQ(fs_->Stat("/a").error(), Errno::kENOENT);
  EXPECT_EQ(StringFromBytes(fs_->Read("/b/f", 0, 3).value()), "xyz");
  auto names = fs_->Readdir("/b");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"f"});
}

TEST_F(LegacyFsTest, TruncateAndSparse) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 2 * kBlockSize, BytesFromString("tail")).ok());
  EXPECT_EQ(fs_->Stat("/f")->size, 2 * kBlockSize + 4);
  EXPECT_EQ(fs_->Read("/f", 10, 8).value(), Bytes(8, 0));  // hole
  ASSERT_TRUE(fs_->Truncate("/f", 5).ok());
  EXPECT_EQ(fs_->Stat("/f")->size, 5u);
}

TEST_F(LegacyFsTest, RefinementAgreesWhenHealthy) {
  // Un-faulted legacyfs is functionally correct — wrap it in specfs and run a
  // workload; zero mismatches expected. (The difference from safefs is what
  // happens under faults and crashes, not the happy path.)
  RefinementStats::Get().ResetForTesting();
  ScopedRefinementMode mode(RefinementMode::kRecording);
  SpecFs spec(fs_);
  (void)spec.Mkdir("/d");
  (void)spec.Create("/d/a");
  (void)spec.Write("/d/a", 100, BytesFromString("payload"));
  (void)spec.Read("/d/a", 0, 200);
  (void)spec.Truncate("/d/a", 50);
  (void)spec.Rename("/d/a", "/d/b");
  (void)spec.Readdir("/d");
  (void)spec.Unlink("/d/b");
  (void)spec.Rmdir("/d");
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

TEST_F(LegacyFsTest, PersistsAfterSyncAndRemount) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, BytesFromString("kept")).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_.reset();
  cache_ = std::make_unique<BufferCache>(*disk_, 128);
  fs_ = MakeLegacyFs(*cache_, nullptr, /*format=*/false);
  ASSERT_NE(fs_, nullptr);
  EXPECT_EQ(StringFromBytes(fs_->Read("/f", 0, 4).value()), "kept");
}

TEST_F(LegacyFsTest, CrashWithoutJournalLosesUnsyncedData) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Write("/f", 0, BytesFromString("unsynced")).ok());
  fs_.reset();
  disk_->CrashNow(CrashPersistence::kLoseAll);
  cache_ = std::make_unique<BufferCache>(*disk_, 128);
  fs_ = MakeLegacyFs(*cache_, nullptr, /*format=*/false);
  ASSERT_NE(fs_, nullptr);
  // The file exists (synced) but the write is gone.
  auto data = fs_->Read("/f", 0, 8);
  ASSERT_TRUE(data.ok());
  EXPECT_NE(StringFromBytes(data.value()), "unsynced");
}

TEST_F(LegacyFsTest, CrashMidWorkloadCanLeaveMixedState) {
  // No atomicity: a crash between related metadata writes leaves a state
  // that is neither before nor after — demonstrated by a rename that
  // half-survives (in at least one seed).
  // The rename moves a file between two directories, so its two dirent
  // updates live in two different blocks; a crash *during* the writeback can
  // persist one without the other.
  bool mixed_seen = false;
  for (uint64_t seed = 0; seed < 30 && !mixed_seen; ++seed) {
    for (uint64_t crash_at = 1; crash_at <= 4 && !mixed_seen; ++crash_at) {
      RamDisk disk(kDiskBlocks, seed);
      BufferCache cache(disk, 128);
      FsGeometry geo = MakeGeometry(kDiskBlocks, kInodes, 0);
      auto fs = MakeLegacyFs(cache, &geo, true);
      ASSERT_TRUE(fs->Mkdir("/d1").ok());
      ASSERT_TRUE(fs->Mkdir("/d2").ok());
      ASSERT_TRUE(fs->Create("/d1/a").ok());
      ASSERT_TRUE(fs->Sync().ok());
      ASSERT_TRUE(fs->Rename("/d1/a", "/d2/b").ok());
      disk.ScheduleCrashAfterWrites(crash_at, CrashPersistence::kRandomSubset);
      (void)fs->Sync();  // crashes mid-writeback
      fs.reset();
      BufferCache cache2(disk, 128);
      auto fs2 = MakeLegacyFs(cache2, nullptr, false);
      bool has_a = fs2->Stat("/d1/a").ok();
      bool has_b = fs2->Stat("/d2/b").ok();
      if (has_a == has_b) {
        // Both present (duplicated file) or both missing (lost file): the
        // non-atomic outcome a journal would have prevented.
        mixed_seen = true;
      }
    }
  }
  EXPECT_TRUE(mixed_seen);
}

// --- fault manifestation ---

TEST_F(LegacyFsTest, TypeConfusionCorruptsSize) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  LegacyFaultsOf(*fs_)->type_confuse_write_cookie = true;
  ASSERT_TRUE(fs_->Write("/f", 0, BytesFromString("1234")).ok());
  // The confused write_end smashed i_size: it no longer equals 4.
  EXPECT_NE(fs_->Stat("/f")->size, 4u);
}

TEST_F(LegacyFsTest, ErrPtrMissingCheckCreatesDanglingEntry) {
  LegacyFaultsOf(*fs_)->errptr_missing_check = true;
  // Renaming a nonexistent source "succeeds" and plants a garbage dirent.
  EXPECT_TRUE(fs_->Rename("/ghost", "/dangling").ok());
  auto names = fs_->Readdir("/");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ(names->front(), "dangling");
  // The entry points at garbage: stat goes wrong.
  EXPECT_FALSE(fs_->Stat("/dangling").ok());
}

TEST_F(LegacyFsTest, LeakOnUnlinkShowsInLedger) {
  LegacyFaultsOf(*fs_)->leak_node_on_unlink = true;
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Stat("/f").ok());  // instantiates the node + private info
  size_t live_before = LeakDetector::Get().LiveCount();
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  EXPECT_EQ(LeakDetector::Get().LiveCount(), live_before);  // never freed
  ASSERT_GT(live_before, 0u);
}

TEST_F(LegacyFsTest, NoLeakWithoutFault) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Stat("/f").ok());
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  EXPECT_EQ(LeakDetector::Get().LiveCount(), 0u);
}

TEST_F(LegacyFsTest, DoubleFreeCorruptsNeighbourAllocation) {
  LegacyFaultsOf(*fs_)->double_free_block = true;
  // Fill two files, then trigger a double free via truncate of an already
  // truncated file: the second bfree of a clear bit clears a neighbour's.
  ASSERT_TRUE(fs_->Create("/victim").ok());
  ASSERT_TRUE(fs_->Write("/victim", 0, Bytes(kBlockSize, 0x11)).ok());
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Bytes(kBlockSize, 0x22)).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 0).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 0).ok());  // no-op, no free
  // Force a path that frees the same block region again.
  ASSERT_TRUE(fs_->Write("/f", 0, Bytes(kBlockSize, 0x33)).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 0).ok());
  ASSERT_TRUE(fs_->Truncate("/f", kBlockSize).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 0).ok());
  // Now allocate new blocks: one of them may be the victim's block.
  ASSERT_TRUE(fs_->Create("/thief").ok());
  ASSERT_TRUE(fs_->Write("/thief", 0, Bytes(3 * kBlockSize, 0xEE)).ok());
  // Victim's content possibly clobbered; at minimum the accounting diverged.
  auto victim = fs_->Read("/victim", 0, kBlockSize);
  ASSERT_TRUE(victim.ok());
  bool clobbered = victim.value() != Bytes(kBlockSize, 0x11);
  // The essence of the bug: silent cross-file interference is now possible.
  // (Whether it hit this seed's layout is allocation-order dependent, so we
  // assert the weaker, deterministic fact: no error was ever reported.)
  SUCCEED() << (clobbered ? "victim clobbered" : "accounting corrupted silently");
}

TEST_F(LegacyFsTest, SizeRaceLosesAnUpdate) {
  LegacyFaultsOf(*fs_)->skip_size_lock = true;
  ASSERT_TRUE(fs_->Create("/raced").ok());
  // Two threads extend the same file; with the unlocked i_size update a
  // larger concurrent size can be overwritten by a stale smaller one.
  bool lost_update_seen = false;
  for (int attempt = 0; attempt < 100 && !lost_update_seen; ++attempt) {
    ASSERT_TRUE(fs_->Truncate("/raced", 0).ok());
    std::atomic<bool> go{false};
    std::thread t1([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      (void)fs_->Write("/raced", 0, Bytes(100, 1));
    });
    std::thread t2([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      (void)fs_->Write("/raced", 0, Bytes(300, 2));
    });
    go.store(true, std::memory_order_release);
    t1.join();
    t2.join();
    uint64_t size = fs_->Stat("/raced")->size;
    if (size != 300) {
      lost_update_seen = true;  // the bigger write's size update was lost
    }
  }
  EXPECT_TRUE(lost_update_seen);
}

TEST_F(LegacyFsTest, TruncateUnderflowLeaksSpace) {
  LegacyFaultsOf(*fs_)->truncate_underflow = true;
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Bytes(4 * kBlockSize, 1)).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 0).ok());
  EXPECT_EQ(fs_->Stat("/f")->size, 0u);
  // The blocks were never freed: writing a big new file now hits ENOSPC
  // earlier than it should. Count free space by filling.
  uint64_t filled = 0;
  ASSERT_TRUE(fs_->Create("/fill").ok());
  while (fs_->Write("/fill", filled * kBlockSize, Bytes(kBlockSize, 2)).ok()) {
    ++filled;
    if (filled > kDiskBlocks) {
      break;
    }
  }
  FsGeometry geo = MakeGeometry(kDiskBlocks, kInodes, 0);
  // 4 blocks leaked (plus metadata overhead): strictly fewer fillable blocks
  // than the data area minus directory overhead would allow.
  EXPECT_LT(filled + 4, geo.data_blocks);
}

TEST_F(LegacyFsTest, DirentOffByOneClobbersNeighbour) {
  // Arrange a used slot directly after a free one, then re-fill the free
  // slot with the fault active: the overflow nulls the neighbour's ino LSB.
  ASSERT_TRUE(fs_->Create("/aa").ok());
  ASSERT_TRUE(fs_->Create("/bb").ok());
  ASSERT_TRUE(fs_->Create("/cc").ok());
  ASSERT_TRUE(fs_->Unlink("/bb").ok());
  ASSERT_TRUE(fs_->Stat("/cc").ok());
  LegacyFaultsOf(*fs_)->dirent_off_by_one = true;
  ASSERT_TRUE(fs_->Create("/dd").ok());  // lands in bb's old slot
  // /cc's dirent ino was clobbered (low byte zeroed): it either vanished or
  // points at a different inode now.
  // Deterministic assertion: cc's inode number was 4 (root=1,aa=2,bb=3,cc=4);
  // zeroing its LSB makes it 0 => the entry reads as free => cc disappears.
  EXPECT_FALSE(fs_->Stat("/cc").ok());
}

}  // namespace
}  // namespace skern
