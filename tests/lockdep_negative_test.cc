// Negative tests for the lock-order checker: the cases where lockdep MUST
// fire. The positive paths (clean nesting, striped siblings) live in
// sync_test.cc; these tests pin down the failure behavior — panic messages,
// violation records, and the always-on SKERN_ASSERT_HELD — so a regression
// that silently stops detecting deadlocks cannot land.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/sync/lock_registry.h"
#include "src/sync/mutex.h"

namespace skern {
namespace {

class LockdepNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    LockRegistry::Get().set_panic_on_violation(false);
  }
  void TearDown() override {
    LockRegistry::Get().ResetForTesting();
    LockRegistry::Get().set_panic_on_violation(true);
  }
};

TEST_F(LockdepNegativeTest, AbThenBaCyclePanicsInStrictMode) {
  LockRegistry::Get().set_panic_on_violation(true);
  TrackedMutex a("lockdepneg.cycle.a");
  TrackedMutex b("lockdepneg.cycle.b");
  {
    MutexGuard ga(a);
    MutexGuard gb(b);  // records a -> b
  }
  ScopedPanicAsException panic_guard;
  b.Lock();
  EXPECT_THROW(a.Lock(), PanicException);  // b -> a closes the cycle
  // The failed acquire registered the hold before panicking and never locked
  // the underlying mutex; rebalance by hand.
  LockRegistry::Get().OnRelease(a.class_id());
  b.Unlock();

  ASSERT_GE(LockRegistry::Get().violation_count(), 1u);
  const LockOrderViolation v = LockRegistry::Get().Violations().front();
  EXPECT_EQ(v.held_name, "lockdepneg.cycle.b");
  EXPECT_EQ(v.acquired_name, "lockdepneg.cycle.a");
}

TEST_F(LockdepNegativeTest, CycleIsRecordedInRecordOnlyMode) {
  TrackedMutex a("lockdepneg.record.a");
  TrackedMutex b("lockdepneg.record.b");
  {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  {
    MutexGuard gb(b);
    MutexGuard ga(a);  // violation, but no panic
  }
  EXPECT_EQ(LockRegistry::Get().violation_count(), 1u);
}

TEST_F(LockdepNegativeTest, SelfDeadlockReacquirePanics) {
  LockRegistry::Get().set_panic_on_violation(true);
  TrackedMutex m("lockdepneg.self");
  ScopedPanicAsException panic_guard;
  m.Lock();
  EXPECT_THROW(m.Lock(), PanicException);  // re-acquire by holder = deadlock
  LockRegistry::Get().OnRelease(m.class_id());
  m.Unlock();

  ASSERT_GE(LockRegistry::Get().violation_count(), 1u);
  const LockOrderViolation v = LockRegistry::Get().Violations().front();
  EXPECT_EQ(v.held, v.acquired);
  EXPECT_EQ(v.held_name, "lockdepneg.self");
}

TEST_F(LockdepNegativeTest, SelfDeadlockDetectedAcrossInstancesOfOneClass) {
  // Two instances sharing a class name are one lock class (striped locks);
  // holding one while acquiring the other is flagged like a re-acquire.
  TrackedMutex a("lockdepneg.striped");
  TrackedMutex b("lockdepneg.striped");
  a.Lock();
  b.Lock();  // record-only: violation logged, acquisition proceeds
  EXPECT_GE(LockRegistry::Get().violation_count(), 1u);
  b.Unlock();
  a.Unlock();
}

TEST_F(LockdepNegativeTest, AssertHeldPanicsWhenNotHeld) {
  TrackedMutex m("lockdepneg.assert.mutex");
  ScopedPanicAsException panic_guard;
  EXPECT_THROW(SKERN_ASSERT_HELD(m), PanicException);
  {
    MutexGuard guard(m);
    SKERN_ASSERT_HELD(m);  // held: must not panic
  }
  EXPECT_THROW(SKERN_ASSERT_HELD(m), PanicException);  // released again
}

TEST_F(LockdepNegativeTest, AssertHeldCoversSpinAndRwLocks) {
  TrackedSpinLock spin("lockdepneg.assert.spin");
  TrackedRwLock rw("lockdepneg.assert.rw");
  ScopedPanicAsException panic_guard;
  EXPECT_THROW(SKERN_ASSERT_HELD(spin), PanicException);
  EXPECT_THROW(SKERN_ASSERT_HELD(rw), PanicException);
  {
    SpinLockGuard guard(spin);
    SKERN_ASSERT_HELD(spin);
  }
  {
    ReadGuard guard(rw);
    SKERN_ASSERT_HELD(rw);
  }
}

// Satellite check for the contention counter fix: an uncontended Lock() must
// not count, an acquisition that found the mutex held must.
TEST_F(LockdepNegativeTest, ContendedCounterCountsOnlyBlockingAcquires) {
  TrackedMutex m("lockdepneg.contended");
  for (int i = 0; i < 100; ++i) {
    MutexGuard guard(m);
  }
  EXPECT_EQ(m.contended_count(), 0u) << "uncontended acquires must not count";

  // Force real contention: hold the lock while another thread acquires.
  // The window between `attempting` and the blocked try_lock is not
  // observable, so retry with a small grace sleep until the counter moves.
  for (int attempt = 0; attempt < 100 && m.contended_count() == 0; ++attempt) {
    std::atomic<bool> attempting{false};
    m.Lock();
    std::thread contender([&] {
      attempting.store(true);
      MutexGuard guard(m);
    });
    while (!attempting.load()) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    m.Unlock();
    contender.join();
  }
  EXPECT_GE(m.contended_count(), 1u);
  // The aggregate metric (exported through procfs /metrics) moved too.
  EXPECT_GE(obs::MetricsRegistry::Get().GetCounter("sync.lock.contended").Value(), 1u);
}

}  // namespace
}  // namespace skern
