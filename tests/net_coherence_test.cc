// Differential coherence: the sharded zero-copy stack against the seed-shaped
// monolithic stack, over the same scripted trace on a lossy, delayed wire.
//
// The script is a pure function of its seed; the wire's drop decisions are a
// pure function of the Network seed and the packet sequence. If the two stack
// organizations (and the zero-copy ablation states) are behaviorally
// equivalent, every world delivers byte-identical per-connection streams and
// consumes the wire identically (same sent/delivered/dropped counts).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/net/buf_chain.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"
#include "src/obs/metrics.h"

namespace skern {
namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr uint16_t kPort = 80;
constexpr int kPairs = 4;

enum class StackKind { kMonolithic, kModular };

struct TraceResult {
  // Keyed by the 1-byte connection tag each client sends first.
  std::map<uint8_t, Bytes> client_to_server;
  std::map<uint8_t, Bytes> server_to_client;
  NetworkStats wire;
};

// Runs the scripted trace in one world and returns what every side received.
TraceResult RunTrace(StackKind kind, bool zero_copy, uint64_t script_seed, uint64_t net_seed,
                     double drop_rate) {
  SetNetZeroCopy(zero_copy);
  SimClock clock;
  Network network(clock, net_seed);
  network.set_drop_rate(drop_rate);

  std::unique_ptr<SocketLayer> client;
  std::unique_ptr<SocketLayer> server;
  if (kind == StackKind::kMonolithic) {
    client = std::make_unique<MonoNetStack>(clock, network, kClientIp);
    server = std::make_unique<MonoNetStack>(clock, network, kServerIp);
  } else {
    client = MakeStandardModularStack(clock, network, kClientIp);
    server = MakeStandardModularStack(clock, network, kServerIp);
  }

  auto ls = server->Socket(kProtoTcp);
  EXPECT_TRUE(ls.ok());
  EXPECT_TRUE(server->Bind(*ls, kPort).ok());
  EXPECT_TRUE(server->Listen(*ls).ok());

  std::vector<SocketId> cs(kPairs);
  std::vector<Bytes> sent_c2s(kPairs), sent_s2c(kPairs);
  for (int p = 0; p < kPairs; ++p) {
    auto c = client->Socket(kProtoTcp);
    EXPECT_TRUE(c.ok());
    EXPECT_TRUE(client->Connect(*c, NetAddr{kServerIp, kPort}).ok());
    cs[p] = *c;
  }
  clock.Advance(3 * kSecond);  // handshakes complete even through losses

  // Each client leads with its 1-byte tag so accepted connections can be
  // matched back regardless of accept order.
  for (int p = 0; p < kPairs; ++p) {
    Bytes tag{static_cast<uint8_t>(p)};
    EXPECT_TRUE(client->Send(cs[p], ByteView(tag)).ok());
    sent_c2s[p].push_back(static_cast<uint8_t>(p));
  }

  // Accept everything; map server conn -> client index lazily via the tag.
  std::vector<SocketId> accepted;
  std::map<SocketId, uint8_t> conn_tag;
  std::map<SocketId, Bytes> got_c2s;
  auto accept_all = [&] {
    for (;;) {
      auto a = server->Accept(*ls);
      if (!a.ok()) {
        break;
      }
      accepted.push_back(*a);
    }
  };
  auto drain_server = [&] {
    accept_all();
    for (SocketId conn : accepted) {
      for (;;) {
        auto chunk = server->Recv(conn, 4096);
        if (!chunk.ok() || chunk->empty()) {
          break;
        }
        Bytes& stream = got_c2s[conn];
        stream.insert(stream.end(), chunk->begin(), chunk->end());
      }
    }
  };
  std::map<int, Bytes> got_s2c;  // client index -> received
  auto drain_client = [&] {
    for (int p = 0; p < kPairs; ++p) {
      for (;;) {
        auto chunk = client->Recv(cs[p], 4096);
        if (!chunk.ok() || chunk->empty()) {
          break;
        }
        got_s2c[p].insert(got_s2c[p].end(), chunk->begin(), chunk->end());
      }
    }
  };

  // The random phase: sends in both directions, clock advances, periodic
  // drains. Every decision comes from the script rng, so every world sees
  // the identical call sequence.
  Rng script(script_seed);
  for (int step = 0; step < 80; ++step) {
    int p = static_cast<int>(script.Next() % kPairs);
    switch (script.Next() % 4) {
      case 0: {
        Bytes blob = script.NextBytes(1 + script.Next() % 1500);
        EXPECT_TRUE(client->Send(cs[p], ByteView(blob)).ok());
        sent_c2s[p].insert(sent_c2s[p].end(), blob.begin(), blob.end());
        break;
      }
      case 1: {
        // Server-side send requires the conn to be accepted and tagged.
        drain_server();
        for (SocketId conn : accepted) {
          auto it = got_c2s.find(conn);
          if (it == got_c2s.end() || it->second.empty()) {
            continue;
          }
          if (conn_tag.find(conn) == conn_tag.end()) {
            conn_tag[conn] = it->second[0];
          }
        }
        Bytes blob = script.NextBytes(1 + script.Next() % 1500);
        for (SocketId conn : accepted) {
          auto it = conn_tag.find(conn);
          if (it != conn_tag.end() && it->second == static_cast<uint8_t>(p)) {
            EXPECT_TRUE(server->Send(conn, ByteView(blob)).ok());
            sent_s2c[p].insert(sent_s2c[p].end(), blob.begin(), blob.end());
          }
        }
        break;
      }
      case 2:
        clock.Advance((1 + script.Next() % 120) * kMillisecond);
        break;
      case 3:
        drain_server();
        drain_client();
        break;
    }
  }

  // Let retransmission finish everything, then drain both sides dry.
  clock.Advance(120 * kSecond);
  drain_server();
  drain_client();

  TraceResult result;
  for (SocketId conn : accepted) {
    auto it = got_c2s.find(conn);
    if (it == got_c2s.end() || it->second.empty()) {
      continue;
    }
    result.client_to_server[it->second[0]] = it->second;
  }
  for (int p = 0; p < kPairs; ++p) {
    result.server_to_client[static_cast<uint8_t>(p)] = got_s2c[p];
  }
  result.wire = network.stats();

  // What arrived must be exactly what the script sent (per stream, in order).
  for (int p = 0; p < kPairs; ++p) {
    EXPECT_EQ(result.client_to_server[static_cast<uint8_t>(p)], sent_c2s[p])
        << "c->s stream " << p << " corrupt";
    EXPECT_EQ(result.server_to_client[static_cast<uint8_t>(p)], sent_s2c[p])
        << "s->c stream " << p << " corrupt";
  }

  SetNetZeroCopy(true);  // restore the default for other tests
  return result;
}

class CoherenceTraceTest : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

// ISSUE satellite: randomized differential test. Mono, modular+zero-copy,
// and modular+full-copy must deliver byte-identical streams over the same
// scripted lossy trace. The two modular variants must also produce the
// identical packet sequence (zero-copy changes ownership, never the wire);
// mono legitimately differs in packet counts — its seed engine slices at
// MSS where the modular engine emits scatter-gather jumbo segments.
TEST_P(CoherenceTraceTest, AllStackVariantsDeliverIdenticalStreams) {
  auto [seed, drop] = GetParam();
  TraceResult mono = RunTrace(StackKind::kMonolithic, /*zero_copy=*/false, seed, seed + 1, drop);
  TraceResult mod_zc = RunTrace(StackKind::kModular, /*zero_copy=*/true, seed, seed + 1, drop);
  TraceResult mod_copy = RunTrace(StackKind::kModular, /*zero_copy=*/false, seed, seed + 1, drop);

  EXPECT_EQ(mono.client_to_server, mod_zc.client_to_server);
  EXPECT_EQ(mono.server_to_client, mod_zc.server_to_client);
  EXPECT_EQ(mono.client_to_server, mod_copy.client_to_server);
  EXPECT_EQ(mono.server_to_client, mod_copy.server_to_client);

  // Same packet sequence -> same rng consumption -> identical wire stats
  // between the two modular variants. Mono emits more packets (MSS slicing
  // vs. large-segment offload), so only sanity-check its trace shape.
  EXPECT_EQ(mod_zc.wire.sent, mod_copy.wire.sent);
  EXPECT_EQ(mod_zc.wire.dropped, mod_copy.wire.dropped);
  EXPECT_EQ(mod_zc.wire.delivered, mod_copy.wire.delivered);
  EXPECT_GE(mono.wire.sent, mod_zc.wire.sent);
  EXPECT_GT(mono.wire.dropped, 0u);
  EXPECT_GT(mod_zc.wire.dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossyTraces, CoherenceTraceTest,
                         ::testing::Values(std::make_tuple(11, 0.05), std::make_tuple(29, 0.10),
                                           std::make_tuple(47, 0.08)));

class AcceptOverflowTest : public ::testing::TestWithParam<StackKind> {};

// ISSUE satellite: accept-queue overflow semantics, locked in for both
// stacks: a SYN arriving at a full backlog is dropped SILENTLY (no RST) and
// counted in net.tcp.accept_overflow; the client keeps retrying until its
// retransmission budget aborts the connection.
TEST_P(AcceptOverflowTest, BacklogFullDropsSynSilentlyAndCountsIt) {
  SimClock clock;
  Network network(clock, 5);  // default delay, no drops
  std::unique_ptr<SocketLayer> client;
  std::unique_ptr<SocketLayer> server;
  if (GetParam() == StackKind::kMonolithic) {
    client = std::make_unique<MonoNetStack>(clock, network, kClientIp);
    server = std::make_unique<MonoNetStack>(clock, network, kServerIp);
  } else {
    client = MakeStandardModularStack(clock, network, kClientIp);
    server = MakeStandardModularStack(clock, network, kServerIp);
  }

  auto ls = server->Socket(kProtoTcp);
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(server->Bind(*ls, kPort).ok());
  ASSERT_TRUE(server->Listen(*ls).ok());
  ASSERT_TRUE(server->SetOption(*ls, kSockOptAcceptBacklog, 4).ok());

  const uint64_t overflow_before =
      obs::MetricsRegistry::Get().GetCounter("net.tcp.accept_overflow").Value();

  constexpr int kClients = 10;
  std::vector<SocketId> cs(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto c = client->Socket(kProtoTcp);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(client->Connect(*c, NetAddr{kServerIp, kPort}).ok());
    cs[i] = *c;
  }

  // Silent drop means the refused clients are still alive and retrying well
  // past the first RTT: the wire stays busy between t=2s and t=4s. (An RST
  // would have killed them within one round trip.)
  clock.Advance(2 * kSecond);
  const uint64_t sent_at_2s = network.stats().sent;
  clock.Advance(2 * kSecond);
  EXPECT_GT(network.stats().sent, sent_at_2s) << "refused clients stopped retrying: RST leaked?";

  // Exhaust every retry budget (kMaxRetries doublings of the 200ms RTO).
  clock.Advance(120 * kSecond);

  int accepted = 0;
  while (server->Accept(*ls).ok()) {
    ++accepted;
  }
  EXPECT_EQ(accepted, 4);  // exactly the backlog, never more

  const uint64_t overflow_after =
      obs::MetricsRegistry::Get().GetCounter("net.tcp.accept_overflow").Value();
  EXPECT_GE(overflow_after - overflow_before, uint64_t{kClients - 4});

  // After retry exhaustion the wire is quiet: everyone gave up cleanly.
  const uint64_t sent_settled = network.stats().sent;
  clock.Advance(5 * kSecond);
  EXPECT_EQ(network.stats().sent, sent_settled);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, AcceptOverflowTest,
                         ::testing::Values(StackKind::kMonolithic, StackKind::kModular),
                         [](const auto& suite_info) {
                           return suite_info.param == StackKind::kMonolithic ? "Monolithic"
                                                                             : "Modular";
                         });

// ISSUE satellite: unroutable sends are visible in the wire stats and the
// obs registry, not silently swallowed.
TEST(UnroutableTest, UnroutableSendIsCounted) {
  SimClock clock;
  Network network(clock, 3);
  network.set_delay(0);
  auto client = MakeStandardModularStack(clock, network, kClientIp);

  const uint64_t ctr_before =
      obs::MetricsRegistry::Get().GetCounter("net.wire.dropped_unroutable").Value();
  auto s = client->Socket(kProtoUdp);
  ASSERT_TRUE(s.ok());
  // IP 99 has no attached stack.
  ASSERT_TRUE(client->SendTo(*s, NetAddr{99, 1234}, BytesFromString("void")).ok());

  EXPECT_EQ(network.stats().dropped_unroutable, uint64_t{1});
  EXPECT_EQ(network.stats().dropped, uint64_t{1});
  EXPECT_EQ(obs::MetricsRegistry::Get().GetCounter("net.wire.dropped_unroutable").Value(),
            ctr_before + 1);
}

// The zero-copy plumbing must actually share: a multi-segment chain sent
// through the modular stack reaches the peer without per-hop payload copies.
TEST(ZeroCopyTest, SendChainSharesSegmentsEndToEnd) {
  SetNetZeroCopy(true);
  SimClock clock;
  Network network(clock, 9);
  network.set_delay(0);
  auto client = MakeStandardModularStack(clock, network, kClientIp);
  auto server = MakeStandardModularStack(clock, network, kServerIp);

  auto ls = server->Socket(kProtoTcp);
  ASSERT_TRUE(server->Bind(*ls, kPort).ok());
  ASSERT_TRUE(server->Listen(*ls).ok());
  auto cs = client->Socket(kProtoTcp);
  ASSERT_TRUE(client->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  auto conn = server->Accept(*ls);
  ASSERT_TRUE(conn.ok());

  BufChain chain;
  chain.AppendOwned(BytesFromString("alpha-"));
  chain.AppendOwned(BytesFromString("beta-"));
  chain.AppendOwned(BytesFromString("gamma"));

  ResetBufChainStats();
  ASSERT_TRUE(client->SendChain(*cs, std::move(chain)).ok());
  auto got = server->RecvChain(*conn, 64);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->EqualsBytes(ByteView(BytesFromString("alpha-beta-gamma"))));

  BufChainStats stats = GetBufChainStats();
  EXPECT_EQ(stats.bytes_copied, uint64_t{0}) << "a hop deep-copied the payload";
  EXPECT_GT(stats.bytes_shared, uint64_t{0});

  // Ablation: with the switch off, the same transfer degrades to copies.
  SetNetZeroCopy(false);
  BufChain chain2;
  chain2.AppendOwned(BytesFromString("copy-me"));
  ResetBufChainStats();
  ASSERT_TRUE(client->SendChain(*cs, std::move(chain2)).ok());
  auto got2 = server->RecvChain(*conn, 64);
  ASSERT_TRUE(got2.ok());
  EXPECT_TRUE(got2->EqualsBytes(ByteView(BytesFromString("copy-me"))));
  EXPECT_GT(GetBufChainStats().bytes_copied, uint64_t{0});
  SetNetZeroCopy(true);
}

}  // namespace
}  // namespace skern
