// Concurrency tests for the network data plane.
//
// The simulated Network delivers inline on the sending thread when delay is
// zero, so concurrent senders drive the full stack — demux, per-socket locks,
// TCP engine, receive queues — from many threads at once with no clock
// pumping. The sharded stack must keep independent sockets independent; the
// monolithic stack under its big kernel lock must stay merely correct.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"

namespace skern {
namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;

enum class StackKind { kMonolithic, kModular };

// Two stacks over one wire, inline delivery, id-allocator hooks exposed.
class TwoHostWorld {
 public:
  explicit TwoHostWorld(StackKind kind) : network_(clock_, 7) {
    network_.set_delay(0);
    if (kind == StackKind::kMonolithic) {
      auto c = std::make_unique<MonoNetStack>(clock_, network_, kClientIp);
      auto s = std::make_unique<MonoNetStack>(clock_, network_, kServerIp);
      c->EnableBigKernelLock();
      s->EnableBigKernelLock();
      set_client_next_id_ = [raw = c.get()](uint32_t v) { raw->SetNextSocketIdForTesting(v); };
      client_ = std::move(c);
      server_ = std::move(s);
    } else {
      auto c = MakeStandardModularStack(clock_, network_, kClientIp);
      auto s = MakeStandardModularStack(clock_, network_, kServerIp);
      set_client_next_id_ = [raw = c.get()](uint32_t v) { raw->SetNextSocketIdForTesting(v); };
      client_ = std::move(c);
      server_ = std::move(s);
    }
  }

  SimClock clock_;
  Network network_;
  std::unique_ptr<SocketLayer> client_;
  std::unique_ptr<SocketLayer> server_;
  std::function<void(uint32_t)> set_client_next_id_;
};

class NetConcurrencyTest : public ::testing::TestWithParam<StackKind> {};

// ISSUE satellite: UDP SendTo/RecvFrom under concurrent senders. Every
// datagram must arrive exactly once and intact.
TEST_P(NetConcurrencyTest, ConcurrentUdpSendersDeliverEveryDatagramIntact) {
  TwoHostWorld w(GetParam());
  auto srv = w.server_->Socket(kProtoUdp);
  ASSERT_TRUE(srv.ok());
  ASSERT_TRUE(w.server_->Bind(*srv, 4000).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> send_failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto s = w.client_->Socket(kProtoUdp);
      if (!s.ok()) {
        send_failures.fetch_add(kPerThread);
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        std::string msg = "t" + std::to_string(t) + ":" + std::to_string(i);
        if (!w.client_->SendTo(*s, NetAddr{kServerIp, 4000}, BytesFromString(msg)).ok()) {
          send_failures.fetch_add(1);
        }
      }
      w.client_->Close(*s);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(send_failures.load(), 0);

  std::set<std::string> seen;
  int total = 0;
  for (;;) {
    auto r = w.server_->RecvFrom(*srv);
    if (!r.ok()) {
      break;
    }
    ++total;
    seen.insert(StringFromBytes(r->second));
  }
  EXPECT_EQ(total, kThreads * kPerThread);            // nothing lost, nothing duplicated
  EXPECT_EQ(seen.size(), size_t{kThreads * kPerThread});  // every payload intact
}

// Eight TCP connections driven full-duplex by eight threads. Per-connection
// streams must stay ordered and uncorrupted while other connections hammer
// the stack from sibling threads.
TEST_P(NetConcurrencyTest, ConcurrentTcpConnectionsEchoIndependently) {
  TwoHostWorld w(GetParam());
  auto ls = w.server_->Socket(kProtoTcp);
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(w.server_->Bind(*ls, 80).ok());
  ASSERT_TRUE(w.server_->Listen(*ls).ok());

  constexpr int kConns = 8;
  constexpr int kRounds = 25;
  std::vector<SocketId> cs(kConns), sc(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto c = w.client_->Socket(kProtoTcp);
    ASSERT_TRUE(c.ok());
    // Inline delivery completes the whole handshake inside Connect.
    ASSERT_TRUE(w.client_->Connect(*c, NetAddr{kServerIp, 80}).ok());
    auto a = w.server_->Accept(*ls);
    ASSERT_TRUE(a.ok());
    cs[i] = *c;
    sc[i] = *a;
  }

  std::atomic<int> mismatches{0};
  auto pump = [&](SocketLayer& from_stack, SocketId from, SocketLayer& to_stack, SocketId to,
                  const std::string& tag) {
    for (int r = 0; r < kRounds; ++r) {
      std::string msg;
      for (int k = 0; k < 40; ++k) {
        msg += tag + std::to_string(r) + ".";
      }
      if (!from_stack.Send(from, BytesFromString(msg)).ok()) {
        mismatches.fetch_add(1);
        return;
      }
      std::string got;
      while (got.size() < msg.size()) {
        auto chunk = to_stack.Recv(to, msg.size());
        if (!chunk.ok()) {
          mismatches.fetch_add(1);
          return;
        }
        got += StringFromBytes(*chunk);
      }
      if (got != msg) {
        mismatches.fetch_add(1);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kConns; ++i) {
    threads.emplace_back([&, i] {
      pump(*w.client_, cs[i], *w.server_, sc[i], "c" + std::to_string(i) + "-");
      pump(*w.server_, sc[i], *w.client_, cs[i], "s" + std::to_string(i) + "-");
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  for (int i = 0; i < kConns; ++i) {
    EXPECT_TRUE(w.client_->Close(cs[i]).ok());
    EXPECT_TRUE(w.server_->Close(sc[i]).ok());
  }
}

// ISSUE satellite: socket-id allocation is atomic — concurrent Socket()
// calls never hand out the same id.
TEST_P(NetConcurrencyTest, SocketIdsUniqueUnderConcurrentAllocation) {
  TwoHostWorld w(GetParam());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::vector<SocketId>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto s = w.client_->Socket(kProtoUdp);
        if (s.ok()) {
          per_thread[t].push_back(*s);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<SocketId> ids;
  for (const auto& v : per_thread) {
    for (SocketId id : v) {
      EXPECT_GT(id, 0);
      ids.insert(id);
    }
  }
  EXPECT_EQ(ids.size(), size_t{kThreads * kPerThread});
}

// ISSUE satellite: the allocator is wrap-safe. The seed's `next_id_++`
// eventually went negative; the fix masks to positive int31, skips 0, and
// probes past ids that are still open.
TEST_P(NetConcurrencyTest, SocketIdAllocationSurvivesWrap) {
  TwoHostWorld w(GetParam());
  auto first = w.client_->Socket(kProtoUdp);  // fresh stack: id 1
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1);

  w.set_client_next_id_(0x7fffffffu);
  auto top = w.client_->Socket(kProtoUdp);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(*top, 0x7fffffff);  // the last positive id is usable

  // Wrap: raw 0x80000000 masks to 0 (skipped), 1 is still open (probed
  // past), so the next free id is 2.
  auto wrapped = w.client_->Socket(kProtoUdp);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(*wrapped, 2);

  // All three stay independently usable.
  EXPECT_TRUE(w.client_->Bind(*first, 5001).ok());
  EXPECT_TRUE(w.client_->Bind(*top, 5002).ok());
  EXPECT_TRUE(w.client_->Bind(*wrapped, 5003).ok());
  EXPECT_TRUE(w.client_->Close(*first).ok());
  EXPECT_TRUE(w.client_->Close(*top).ok());
  EXPECT_TRUE(w.client_->Close(*wrapped).ok());
}

// Concurrent Close against in-flight traffic: the control-block liveness
// protocol must turn use-after-close races into clean kEBADF, never crashes.
TEST_P(NetConcurrencyTest, CloseRacesWithTrafficAreClean) {
  TwoHostWorld w(GetParam());
  auto srv = w.server_->Socket(kProtoUdp);
  ASSERT_TRUE(srv.ok());
  ASSERT_TRUE(w.server_->Bind(*srv, 4200).ok());

  constexpr int kIters = 50;
  for (int i = 0; i < kIters; ++i) {
    auto s = w.client_->Socket(kProtoUdp);
    ASSERT_TRUE(s.ok());
    std::thread sender([&] {
      for (int j = 0; j < 20; ++j) {
        // kEBADF once the closer wins the race is the expected outcome.
        w.client_->SendTo(*s, NetAddr{kServerIp, 4200}, BytesFromString("x"));
      }
    });
    std::thread closer([&] { w.client_->Close(*s); });
    sender.join();
    closer.join();
    // The id is dead afterwards regardless of who won.
    EXPECT_EQ(w.client_->SendTo(*s, NetAddr{kServerIp, 4200}, BytesFromString("y")).code(),
              Errno::kEBADF);
  }
  // Drain whatever made it through; queue must be intact.
  while (w.server_->RecvFrom(*srv).ok()) {
  }
}

INSTANTIATE_TEST_SUITE_P(BothStacks, NetConcurrencyTest,
                         ::testing::Values(StackKind::kMonolithic, StackKind::kModular),
                         [](const auto& suite_info) {
                           return suite_info.param == StackKind::kMonolithic ? "Monolithic"
                                                                             : "Modular";
                         });

}  // namespace
}  // namespace skern
