// EventPoller: the epoll-style readiness engine over the sharded stack.
//
// Level triggers re-report until the condition clears; edge triggers report
// once per rising edge and re-arm via Arm() or by draining to kEAGAIN. The
// wire runs with zero delay so readiness transitions happen inline, and the
// cross-thread test uses a real sender thread against a blocked Wait().
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/poller.h"
#include "src/net/stack_modular.h"
#include "src/obs/metrics.h"

namespace skern {
namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr uint16_t kPort = 80;

using namespace std::chrono_literals;

class PollerTest : public ::testing::Test {
 protected:
  PollerTest() : network_(clock_, 7) {
    network_.set_delay(0);
    client_ = MakeStandardModularStack(clock_, network_, kClientIp);
    server_ = MakeStandardModularStack(clock_, network_, kServerIp);
    poller_ = std::make_unique<EventPoller>(*server_);
  }

  SocketId BoundUdp(uint16_t port) {
    auto s = server_->Socket(kProtoUdp);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(server_->Bind(*s, port).ok());
    return *s;
  }

  void SendDatagram(uint16_t port, const std::string& msg) {
    auto s = client_->Socket(kProtoUdp);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(client_->SendTo(*s, NetAddr{kServerIp, port}, BytesFromString(msg)).ok());
    ASSERT_TRUE(client_->Close(*s).ok());
  }

  SimClock clock_;
  Network network_;
  std::unique_ptr<ModularNetStack> client_;
  std::unique_ptr<ModularNetStack> server_;
  std::unique_ptr<EventPoller> poller_;
};

TEST_F(PollerTest, RegisterUnknownSocketIsEbadf) {
  EXPECT_EQ(poller_->Register(9999, kPollIn, TriggerMode::kLevel).code(), Errno::kEBADF);
}

TEST_F(PollerTest, DoubleRegisterIsEexist) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());
  EXPECT_EQ(poller_->Register(s, kPollIn, TriggerMode::kEdge).code(), Errno::kEEXIST);
}

TEST_F(PollerTest, LevelTriggerReportsUntilDrained) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());

  SendDatagram(4000, "hello");
  auto events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_EQ(events[0].sock, s);
  EXPECT_TRUE(events[0].mask & kPollIn);

  // Still undrained: level trigger keeps reporting.
  events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_EQ(events[0].sock, s);

  // Drain to kEAGAIN; the IN condition clears and Wait times out.
  ASSERT_TRUE(server_->RecvFrom(s).ok());
  EXPECT_EQ(server_->RecvFrom(s).error(), Errno::kEAGAIN);
  events = poller_->Wait(8, 5ms);
  EXPECT_TRUE(events.empty());
}

TEST_F(PollerTest, EdgeTriggerReportsOncePerRisingEdge) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kEdge).ok());

  SendDatagram(4000, "one");
  auto events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});

  // No new edge, nothing drained: edge mode stays silent.
  events = poller_->Wait(8, 5ms);
  EXPECT_TRUE(events.empty());

  // Drain to kEAGAIN (clears IN), then a new datagram is a fresh edge.
  ASSERT_TRUE(server_->RecvFrom(s).ok());
  EXPECT_EQ(server_->RecvFrom(s).error(), Errno::kEAGAIN);
  SendDatagram(4000, "two");
  events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_TRUE(events[0].mask & kPollIn);
}

TEST_F(PollerTest, ArmRequeuesAStillReadySocket) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kEdge).ok());
  SendDatagram(4000, "stuck");
  ASSERT_EQ(poller_->Wait(8, 0ms).size(), size_t{1});
  ASSERT_TRUE(poller_->Wait(8, 5ms).empty());  // edge consumed

  // The explicit re-arm for consumers that could not drain: Arm re-queues
  // because the socket is still ready.
  ASSERT_TRUE(poller_->Arm(s, kPollIn).ok());
  auto events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_EQ(events[0].sock, s);
}

TEST_F(PollerTest, RegisterDeliversPreexistingReadiness) {
  SocketId s = BoundUdp(4000);
  SendDatagram(4000, "early");  // ready before anyone watches
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kEdge).ok());
  auto events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_EQ(events[0].sock, s);
}

TEST_F(PollerTest, MaskFiltersUninterestingBits) {
  SocketId s = BoundUdp(4000);
  // A fresh UDP socket is writable; we only care about IN.
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());
  auto events = poller_->Wait(8, 5ms);
  EXPECT_TRUE(events.empty());  // OUT alone does not match the armed mask

  SendDatagram(4000, "now");
  events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_TRUE(events[0].mask & kPollIn);
  EXPECT_FALSE(events[0].mask & kPollOut);  // delivered mask is intersected
}

TEST_F(PollerTest, DeregisterStopsDelivery) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());
  ASSERT_TRUE(poller_->Deregister(s).ok());
  SendDatagram(4000, "unseen");
  EXPECT_TRUE(poller_->Wait(8, 5ms).empty());
  EXPECT_EQ(poller_->Deregister(s).code(), Errno::kENOENT);
}

TEST_F(PollerTest, StaleQueueEntryIsSpuriousNotDelivered) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());
  SendDatagram(4000, "gone");
  const uint64_t spurious_before =
      obs::MetricsRegistry::Get().GetCounter("net.poll.spurious").Value();
  // Drain before Wait: the queued wakeup is stale.
  ASSERT_TRUE(server_->RecvFrom(s).ok());
  EXPECT_EQ(server_->RecvFrom(s).error(), Errno::kEAGAIN);
  EXPECT_TRUE(poller_->Wait(8, 0ms).empty());
  EXPECT_GT(obs::MetricsRegistry::Get().GetCounter("net.poll.spurious").Value(), spurious_before);
}

TEST_F(PollerTest, ListenerBecomesReadableOnPendingAccept) {
  auto ls = server_->Socket(kProtoTcp);
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(server_->Listen(*ls).ok());
  ASSERT_TRUE(poller_->Register(*ls, kPollIn, TriggerMode::kEdge).ok());

  auto cs = client_->Socket(kProtoTcp);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(client_->Connect(*cs, NetAddr{kServerIp, kPort}).ok());

  auto events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_EQ(events[0].sock, *ls);
  EXPECT_TRUE(events[0].mask & kPollIn);

  // Drain the accept queue to kEAGAIN: IN clears, the edge re-arms.
  ASSERT_TRUE(server_->Accept(*ls).ok());
  EXPECT_EQ(server_->Accept(*ls).error(), Errno::kEAGAIN);
  EXPECT_TRUE(poller_->Wait(8, 5ms).empty());

  auto cs2 = client_->Socket(kProtoTcp);
  ASSERT_TRUE(client_->Connect(*cs2, NetAddr{kServerIp, kPort}).ok());
  events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});  // fresh edge for the second client
}

TEST_F(PollerTest, PeerCloseRaisesHup) {
  auto ls = server_->Socket(kProtoTcp);
  ASSERT_TRUE(server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(server_->Listen(*ls).ok());
  auto cs = client_->Socket(kProtoTcp);
  ASSERT_TRUE(client_->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  auto conn = server_->Accept(*ls);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(poller_->Register(*conn, kPollIn | kPollHup, TriggerMode::kLevel).ok());

  ASSERT_TRUE(client_->Close(*cs).ok());
  auto events = poller_->Wait(8, 0ms);
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_TRUE(events[0].mask & kPollHup);
}

// The C10M shape end to end: a blocked Wait on one thread, traffic arriving
// from another, wakeup through Event signalling — no polling loop.
TEST_F(PollerTest, CrossThreadWakeupFromBlockedWait) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());

  std::vector<PollEvent> events;
  std::thread waiter([&] { events = poller_->Wait(8, 5s); });
  std::this_thread::sleep_for(20ms);  // let the waiter block
  SendDatagram(4000, "wake");
  waiter.join();
  ASSERT_EQ(events.size(), size_t{1});
  EXPECT_EQ(events[0].sock, s);
  EXPECT_TRUE(events[0].mask & kPollIn);
}

TEST_F(PollerTest, ManySocketsWaitReturnsOnlyTheReadyOnes) {
  constexpr int kSockets = 200;
  std::vector<SocketId> socks;
  for (int i = 0; i < kSockets; ++i) {
    SocketId s = BoundUdp(static_cast<uint16_t>(4000 + i));
    ASSERT_TRUE(poller_->Register(s, kPollIn, TriggerMode::kLevel).ok());
    socks.push_back(s);
  }
  // Three of 200 become ready; Wait discovers exactly those, O(ready).
  SendDatagram(4007, "a");
  SendDatagram(4099, "b");
  SendDatagram(4151, "c");
  auto events = poller_->Wait(16, 0ms);
  ASSERT_EQ(events.size(), size_t{3});
  std::set<SocketId> got;
  for (const auto& e : events) {
    got.insert(e.sock);
  }
  EXPECT_EQ(got, (std::set<SocketId>{socks[7], socks[99], socks[151]}));
}

TEST_F(PollerTest, ClosedSocketSelfCleansFromPoller) {
  SocketId s = BoundUdp(4000);
  ASSERT_TRUE(poller_->Register(s, kPollIn | kPollHup, TriggerMode::kLevel).ok());
  SendDatagram(4000, "x");
  ASSERT_TRUE(server_->Close(s).ok());
  // The close published HUP, but HUP delivery needs the ctl to still be
  // reachable; whether the event arrives or the entry self-cleans, Wait must
  // not crash and a second Register of the same id is kEBADF.
  poller_->Wait(8, 5ms);
  EXPECT_EQ(poller_->Register(s, kPollIn, TriggerMode::kLevel).code(), Errno::kEBADF);
}

}  // namespace
}  // namespace skern
