// Property sweeps over the network substrate: across loss rates and seeds,
// TCP must deliver every byte in order (or abort cleanly), while UDP loses
// exactly what the wire loses — reliability is the protocol's job, and the
// sweep checks it holds under every adversary level, on both stack designs.
#include <gtest/gtest.h>

#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"

namespace skern {
namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr uint16_t kPort = 80;

struct SweepParams {
  bool modular;
  double drop_rate;
  uint64_t seed;
};

class NetSweepTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(NetSweepTest, TcpDeliversEverythingInOrder) {
  const auto params = GetParam();
  SimClock clock;
  Network network(clock, params.seed);
  std::unique_ptr<SocketLayer> client;
  std::unique_ptr<SocketLayer> server;
  if (params.modular) {
    client = MakeStandardModularStack(clock, network, kClientIp);
    server = MakeStandardModularStack(clock, network, kServerIp);
  } else {
    client = std::make_unique<MonoNetStack>(clock, network, kClientIp);
    server = std::make_unique<MonoNetStack>(clock, network, kServerIp);
  }
  auto ls = server->Socket(kProtoTcp);
  ASSERT_TRUE(server->Bind(*ls, kPort).ok());
  ASSERT_TRUE(server->Listen(*ls).ok());
  auto cs = client->Socket(kProtoTcp);
  ASSERT_TRUE(client->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  clock.Advance(20 * kSecond);  // handshake with room for retries
  network.set_drop_rate(params.drop_rate);

  auto conn = server->Accept(*ls);
  ASSERT_TRUE(conn.ok());
  Rng rng(params.seed * 13 + 1);
  Bytes blob = rng.NextBytes(12'000);
  // Chunked sends keep the wire packet count high on both engines — the
  // chain engine would otherwise emit one jumbo segment (LSO) and give the
  // loss adversary almost nothing to roll against.
  for (size_t off = 0; off < blob.size(); off += 1000) {
    ASSERT_TRUE(client->Send(*cs, ByteView(blob).Subview(off, 1000)).ok());
    clock.Advance(kSecond);
  }
  clock.Advance(300 * kSecond);

  Bytes received;
  for (;;) {
    auto chunk = server->Recv(*conn, 8192);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    received.insert(received.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(received, blob) << "loss=" << params.drop_rate << " seed=" << params.seed;
  if (params.drop_rate > 0.0) {
    EXPECT_GT(network.stats().dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossLevels, NetSweepTest,
    ::testing::Values(SweepParams{false, 0.0, 1}, SweepParams{true, 0.0, 1},
                      SweepParams{false, 0.1, 2}, SweepParams{true, 0.1, 2},
                      SweepParams{false, 0.2, 3}, SweepParams{true, 0.2, 3},
                      SweepParams{false, 0.1, 7}, SweepParams{true, 0.2, 11}));

}  // namespace
}  // namespace skern
