// Tests for the network substrate: TCP engine behaviour, both socket-layer
// organizations (shared conformance suite), UDP, loss recovery, and the
// modular stack's drop-in protocol extensibility.
#include <gtest/gtest.h>

#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"
#include "src/net/tcp.h"

namespace skern {
namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr uint16_t kPort = 80;

enum class StackKind { kMonolithic, kModular };

// Fixture wiring two stacks of the given kind over one simulated network.
class TwoHostNet {
 public:
  explicit TwoHostNet(StackKind kind, uint64_t seed = 7) : network_(clock_, seed) {
    if (kind == StackKind::kMonolithic) {
      client_ = std::make_unique<MonoNetStack>(clock_, network_, kClientIp);
      server_ = std::make_unique<MonoNetStack>(clock_, network_, kServerIp);
    } else {
      client_ = MakeStandardModularStack(clock_, network_, kClientIp);
      server_ = MakeStandardModularStack(clock_, network_, kServerIp);
    }
  }

  void Run(SimTime duration = 100 * kMillisecond) { clock_.Advance(duration); }

  SimClock clock_;
  Network network_;
  std::unique_ptr<SocketLayer> client_;
  std::unique_ptr<SocketLayer> server_;
};

class SocketLayerConformanceTest : public ::testing::TestWithParam<StackKind> {};

TEST_P(SocketLayerConformanceTest, TcpConnectAcceptEcho) {
  TwoHostNet net(GetParam());
  auto ls = net.server_->Socket(kProtoTcp);
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(net.server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(net.server_->Listen(*ls).ok());

  auto cs = net.client_->Socket(kProtoTcp);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(net.client_->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  net.Run();

  auto conn = net.server_->Accept(*ls);
  ASSERT_TRUE(conn.ok());

  // Client -> server.
  ASSERT_TRUE(net.client_->Send(*cs, BytesFromString("ping")).ok());
  net.Run();
  auto got = net.server_->Recv(*conn, 64);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(StringFromBytes(got.value()), "ping");

  // Server -> client.
  ASSERT_TRUE(net.server_->Send(*conn, BytesFromString("pong")).ok());
  net.Run();
  auto back = net.client_->Recv(*cs, 64);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(StringFromBytes(back.value()), "pong");
}

TEST_P(SocketLayerConformanceTest, AcceptBeforeHandshakeIsEagain) {
  TwoHostNet net(GetParam());
  auto ls = net.server_->Socket(kProtoTcp);
  ASSERT_TRUE(ls.ok());
  ASSERT_TRUE(net.server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(net.server_->Listen(*ls).ok());
  EXPECT_EQ(net.server_->Accept(*ls).error(), Errno::kEAGAIN);
}

TEST_P(SocketLayerConformanceTest, ConnectionRefusedGetsRst) {
  TwoHostNet net(GetParam());
  auto cs = net.client_->Socket(kProtoTcp);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(net.client_->Connect(*cs, NetAddr{kServerIp, 9999}).ok());
  net.Run();
  // The RST closed the connection; Recv reports EOF/not-connected.
  auto r = net.client_->Recv(*cs, 16);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_P(SocketLayerConformanceTest, LargeTransferSegmentsAndReassembles) {
  TwoHostNet net(GetParam());
  auto ls = net.server_->Socket(kProtoTcp);
  ASSERT_TRUE(net.server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(net.server_->Listen(*ls).ok());
  auto cs = net.client_->Socket(kProtoTcp);
  ASSERT_TRUE(net.client_->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  net.Run();
  auto conn = net.server_->Accept(*ls);
  ASSERT_TRUE(conn.ok());

  Rng rng(99);
  Bytes blob = rng.NextBytes(10'000);  // 10 segments at MSS 1000
  ASSERT_TRUE(net.client_->Send(*cs, ByteView(blob)).ok());
  net.Run(2 * kSecond);
  Bytes received;
  for (;;) {
    auto chunk = net.server_->Recv(*conn, 4096);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    received.insert(received.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(received, blob);
}

TEST_P(SocketLayerConformanceTest, LossyLinkStillDeliversEverything) {
  TwoHostNet net(GetParam(), /*seed=*/3);
  net.network_.set_drop_rate(0.2);
  auto ls = net.server_->Socket(kProtoTcp);
  ASSERT_TRUE(net.server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(net.server_->Listen(*ls).ok());
  auto cs = net.client_->Socket(kProtoTcp);
  ASSERT_TRUE(net.client_->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  net.Run(10 * kSecond);  // handshake may need retransmits

  auto conn = net.server_->Accept(*ls);
  ASSERT_TRUE(conn.ok());
  Rng rng(5);
  Bytes blob = rng.NextBytes(5'000);
  // Ten separate sends -> enough wire packets that a 20% lossy link
  // certainly drops at least one, on both the MSS-slicing seed engine and
  // the LSO-emitting modular engine.
  for (size_t off = 0; off < blob.size(); off += 500) {
    ASSERT_TRUE(net.client_->Send(*cs, ByteView(blob).Subview(off, 500)).ok());
    net.Run(12 * kSecond);
  }
  net.Run(120 * kSecond);  // generous: RTO backoff under 20% loss

  Bytes received;
  for (;;) {
    auto chunk = net.server_->Recv(*conn, 4096);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    received.insert(received.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(received, blob);
  EXPECT_GT(net.network_.stats().dropped, 0u);
}

TEST_P(SocketLayerConformanceTest, CloseDeliversEof) {
  TwoHostNet net(GetParam());
  auto ls = net.server_->Socket(kProtoTcp);
  ASSERT_TRUE(net.server_->Bind(*ls, kPort).ok());
  ASSERT_TRUE(net.server_->Listen(*ls).ok());
  auto cs = net.client_->Socket(kProtoTcp);
  ASSERT_TRUE(net.client_->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  net.Run();
  auto conn = net.server_->Accept(*ls);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(net.client_->Send(*cs, BytesFromString("bye")).ok());
  ASSERT_TRUE(net.client_->Close(*cs).ok());
  net.Run();
  // Data still readable, then EOF.
  EXPECT_EQ(StringFromBytes(net.server_->Recv(*conn, 16).value()), "bye");
  auto eof = net.server_->Recv(*conn, 16);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->empty());
}

TEST_P(SocketLayerConformanceTest, UdpDatagrams) {
  TwoHostNet net(GetParam());
  auto srv = net.server_->Socket(kProtoUdp);
  ASSERT_TRUE(srv.ok());
  ASSERT_TRUE(net.server_->Bind(*srv, 53).ok());
  auto cli = net.client_->Socket(kProtoUdp);
  ASSERT_TRUE(cli.ok());
  ASSERT_TRUE(net.client_->SendTo(*cli, NetAddr{kServerIp, 53}, BytesFromString("query")).ok());
  net.Run();
  auto got = net.server_->RecvFrom(*srv);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(StringFromBytes(got->second), "query");
  EXPECT_EQ(got->first.ip, kClientIp);
  // Reply to the observed source.
  ASSERT_TRUE(net.server_->SendTo(*srv, got->first, BytesFromString("answer")).ok());
  net.Run();
  auto reply = net.client_->RecvFrom(*cli);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(StringFromBytes(reply->second), "answer");
}

TEST_P(SocketLayerConformanceTest, UdpIsUnreliableUnderLoss) {
  TwoHostNet net(GetParam(), /*seed=*/11);
  net.network_.set_drop_rate(0.5);
  auto srv = net.server_->Socket(kProtoUdp);
  ASSERT_TRUE(net.server_->Bind(*srv, 53).ok());
  auto cli = net.client_->Socket(kProtoUdp);
  int received = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.client_->SendTo(*cli, NetAddr{kServerIp, 53}, BytesFromString("x")).ok());
  }
  net.Run();
  while (net.server_->RecvFrom(*srv).ok()) {
    ++received;
  }
  EXPECT_GT(received, 0);
  EXPECT_LT(received, 50);  // no retransmission: losses stay lost
}

TEST_P(SocketLayerConformanceTest, PortConflicts) {
  TwoHostNet net(GetParam());
  auto a = net.server_->Socket(kProtoUdp);
  auto b = net.server_->Socket(kProtoUdp);
  ASSERT_TRUE(net.server_->Bind(*a, 1000).ok());
  EXPECT_EQ(net.server_->Bind(*b, 1000).code(), Errno::kEADDRINUSE);
}

TEST_P(SocketLayerConformanceTest, BadDescriptors) {
  TwoHostNet net(GetParam());
  EXPECT_EQ(net.client_->Send(999, BytesFromString("x")).code(), Errno::kEBADF);
  EXPECT_EQ(net.client_->Recv(999, 1).error(), Errno::kEBADF);
  EXPECT_EQ(net.client_->Close(999).code(), Errno::kEBADF);
  EXPECT_EQ(net.client_->Socket(99).error(), Errno::kEPROTONOSUPPORT);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, SocketLayerConformanceTest,
                         ::testing::Values(StackKind::kMonolithic, StackKind::kModular),
                         [](const ::testing::TestParamInfo<StackKind>& param_info) {
                           return param_info.param == StackKind::kMonolithic ? "Monolithic"
                                                                             : "Modular";
                         });

// --- TCP engine specifics ---

TEST(TcpEngineTest, RetransmitsOnLoss) {
  SimClock clock;
  Network network(clock, 13);
  network.set_drop_rate(0.3);
  auto client = MakeStandardModularStack(clock, network, kClientIp);
  auto server = MakeStandardModularStack(clock, network, kServerIp);
  auto ls = server->Socket(kProtoTcp);
  ASSERT_TRUE(server->Bind(*ls, kPort).ok());
  ASSERT_TRUE(server->Listen(*ls).ok());
  auto cs = client->Socket(kProtoTcp);
  ASSERT_TRUE(client->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  clock.Advance(10 * kSecond);
  auto conn = server->Accept(*ls);
  ASSERT_TRUE(conn.ok());
  Rng rng(17);
  Bytes blob = rng.NextBytes(8000);
  ASSERT_TRUE(client->Send(*cs, ByteView(blob)).ok());
  clock.Advance(120 * kSecond);
  Bytes received;
  for (;;) {
    auto chunk = server->Recv(*conn, 4096);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    received.insert(received.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_GT(network.stats().dropped, 0u);
}

TEST(TcpEngineTest, HandshakeTimeoutAborts) {
  SimClock clock;
  Network network(clock, 1);
  network.set_drop_rate(1.0);  // black hole
  auto client = MakeStandardModularStack(clock, network, kClientIp);
  auto cs = client->Socket(kProtoTcp);
  ASSERT_TRUE(client->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  clock.Advance(600 * kSecond);  // beyond max retries with backoff
  auto r = client->Recv(*cs, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());  // connection dead -> EOF semantics
}

TEST(TcpEngineTest, StateNamesComplete) {
  for (int i = 0; i <= static_cast<int>(TcpState::kTimeWait); ++i) {
    EXPECT_STRNE(TcpStateName(static_cast<TcpState>(i)), "?");
  }
}

// --- the step-1 payoff on the modular stack: a new protocol drops in ---

// A toy datagram protocol ("reverse echo") implemented without touching any
// generic stack code.
class ReverseModule : public ProtocolModule {
 public:
  ReverseModule(Network& network, uint32_t ip) : network_(network), ip_(ip) {}

  uint8_t ProtoId() const override { return 200; }
  std::string Name() const override { return "reverse"; }

  struct Sock : ProtoSocketState {
    uint16_t port = 0;
    std::deque<std::pair<NetAddr, Bytes>> rx;
  };

  std::unique_ptr<ProtoSocketState> NewSocket() override { return std::make_unique<Sock>(); }
  Status Bind(ProtoSocketState& s, uint16_t port) override {
    auto& sock = static_cast<Sock&>(s);
    sock.port = port;
    ports_[port] = &sock;
    return Status::Ok();
  }
  Status Listen(ProtoSocketState&) override { return Status::Error(Errno::kENOSYS); }
  Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState&) override {
    return Errno::kENOSYS;
  }
  Status Connect(ProtoSocketState&, NetAddr) override {
    return Status::Error(Errno::kENOSYS);
  }
  Status Send(ProtoSocketState&, ByteView) override { return Status::Error(Errno::kENOSYS); }
  Result<Bytes> Recv(ProtoSocketState&, uint64_t) override { return Errno::kENOSYS; }

  Status SendTo(ProtoSocketState& s, NetAddr remote, ByteView data) override {
    auto& sock = static_cast<Sock&>(s);
    Packet pkt;
    pkt.proto = 200;
    pkt.src_ip = ip_;
    pkt.src_port = sock.port;
    pkt.dst_ip = remote.ip;
    pkt.dst_port = remote.port;
    pkt.payload = data.ToBytes();
    network_.Send(std::move(pkt));
    return Status::Ok();
  }
  Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState& s) override {
    auto& sock = static_cast<Sock&>(s);
    if (sock.rx.empty()) {
      return Errno::kEAGAIN;
    }
    auto front = std::move(sock.rx.front());
    sock.rx.pop_front();
    return front;
  }
  Status CloseSocket(ProtoSocketState& s) override {
    ports_.erase(static_cast<Sock&>(s).port);
    return Status::Ok();
  }
  void OnPacket(const Packet& packet) override {
    auto it = ports_.find(packet.dst_port);
    if (it != ports_.end()) {
      // The protocol's quirk: payload arrives reversed.
      Bytes flat = packet.payload.ToBytes();
      Bytes reversed(flat.rbegin(), flat.rend());
      it->second->rx.emplace_back(NetAddr{packet.src_ip, packet.src_port},
                                  std::move(reversed));
    }
  }

 private:
  Network& network_;
  uint32_t ip_;
  std::map<uint16_t, Sock*> ports_;
};

TEST(ModularExtensibilityTest, NewProtocolDropsInWithoutGenericChanges) {
  SimClock clock;
  Network network(clock, 2);
  ModularNetStack a(network, kClientIp);
  ModularNetStack b(network, kServerIp);
  ASSERT_TRUE(a.RegisterProtocol(std::make_unique<ReverseModule>(network, kClientIp)).ok());
  ASSERT_TRUE(b.RegisterProtocol(std::make_unique<ReverseModule>(network, kServerIp)).ok());

  auto srv = b.Socket(200);
  ASSERT_TRUE(srv.ok());
  ASSERT_TRUE(b.Bind(*srv, 7).ok());
  auto cli = a.Socket(200);
  ASSERT_TRUE(cli.ok());
  ASSERT_TRUE(a.Bind(*cli, 8).ok());
  ASSERT_TRUE(a.SendTo(*cli, NetAddr{kServerIp, 7}, BytesFromString("skern")).ok());
  clock.Advance(kSecond);
  auto got = b.RecvFrom(*srv);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(StringFromBytes(got->second), "nreks");
  EXPECT_EQ(b.ProtocolNames().size(), 1u);
}

TEST(ModularExtensibilityTest, DuplicateRegistrationRejected) {
  SimClock clock;
  Network network(clock, 2);
  ModularNetStack stack(network, kClientIp);
  ASSERT_TRUE(stack.RegisterProtocol(MakeUdpModule(network, kClientIp)).ok());
  EXPECT_EQ(stack.RegisterProtocol(MakeUdpModule(network, kClientIp)).code(), Errno::kEEXIST);
}

// The monolithic stack cannot accept a new protocol at all: the unknown
// family is rejected at socket creation, and packets for it vanish.
TEST(ModularExtensibilityTest, MonolithicRejectsUnknownFamily) {
  SimClock clock;
  Network network(clock, 2);
  MonoNetStack stack(clock, network, kClientIp);
  EXPECT_EQ(stack.Socket(200).error(), Errno::kEPROTONOSUPPORT);
}

}  // namespace
}  // namespace skern
