// Flight-recorder tests: the always-on last-N-events ring must collect
// without a trace session, survive overwrite, and — the whole point — be
// dumped to stderr by the panic path so an abort ships its recent history.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/base/panic.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

// Records from this process-wide ring filtered down to one test's events.
std::vector<obs::TraceRecord> SnapshotOf(const char* name) {
  std::vector<obs::TraceRecord> out;
  for (const auto& record : obs::FlightSnapshot()) {
    if (obs::TraceEventName(record.event_id) == name) {
      out.push_back(record);
    }
  }
  return out;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::ResetFlightForTesting(); }
  void TearDown() override {
    obs::SetFlightRecorderEnabled(true);  // restore the process default
    obs::ResetFlightForTesting();
  }
};

TEST_F(FlightRecorderTest, CollectsWithoutTraceSession) {
  ASSERT_FALSE(obs::TraceSession::Get().active());
  ASSERT_TRUE(obs::FlightRecorderEnabled());
  SKERN_TRACE("flighttest", "always_on", 11, 22);
  auto records = SnapshotOf("flighttest.always_on");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].arg0, 11u);
  EXPECT_EQ(records[0].arg1, 22u);
  // And the session stayed empty: flight collection is not a trace session.
  EXPECT_TRUE(obs::TraceSession::Get().Drain().empty());
}

TEST_F(FlightRecorderTest, DisableStopsCollection) {
  obs::SetFlightRecorderEnabled(false);
  EXPECT_FALSE(obs::FlightRecorderEnabled());
  SKERN_TRACE("flighttest", "while_off", 1);
  EXPECT_TRUE(SnapshotOf("flighttest.while_off").empty());
  obs::SetFlightRecorderEnabled(true);
  SKERN_TRACE("flighttest", "while_on", 2);
  EXPECT_EQ(SnapshotOf("flighttest.while_on").size(), 1u);
}

TEST_F(FlightRecorderTest, OverwritesOldestKeepsNewest) {
  // Push far more than one ring holds; the survivors must be the most
  // recent writes, contiguous up to the last one.
  constexpr uint64_t kWrites = 4096;
  for (uint64_t i = 0; i < kWrites; ++i) {
    SKERN_TRACE("flighttest", "wrap", i);
  }
  auto records = SnapshotOf("flighttest.wrap");
  ASSERT_FALSE(records.empty());
  ASSERT_LT(records.size(), kWrites);  // bounded: it is a last-N ring
  uint64_t lo = records.front().arg0;
  uint64_t hi = records.front().arg0;
  for (const auto& record : records) {
    lo = std::min(lo, record.arg0);
    hi = std::max(hi, record.arg0);
  }
  EXPECT_EQ(hi, kWrites - 1);                    // newest survived
  EXPECT_EQ(hi - lo + 1, records.size());        // a contiguous tail
  EXPECT_GT(lo, 0u);                             // oldest were overwritten
}

TEST_F(FlightRecorderTest, EightThreadStressSnapshotsStayWellFormed) {
  // 8 writers hammer the always-on ring while the main thread snapshots
  // concurrently — the TSan-facing test: no data races, and every observed
  // record is structurally sane (the documented tolerance is a torn record's
  // *payload* mixing two writes, never an out-of-range value).
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        SKERN_TRACE("flighttest", "stress", static_cast<uint64_t>(t), i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int round = 0; round < 50; ++round) {
    for (const auto& record : SnapshotOf("flighttest.stress")) {
      EXPECT_LT(record.arg0, static_cast<uint64_t>(kThreads));
      EXPECT_LT(record.arg1, kPerThread);
    }
  }
  for (auto& writer : writers) {
    writer.join();
  }
  auto records = SnapshotOf("flighttest.stress");
  EXPECT_FALSE(records.empty());
}

TEST_F(FlightRecorderTest, PanicSnapshotMatchesRegularSnapshot) {
  SKERN_TRACE("flighttest", "lastbreath", 7);
  auto panic_view = obs::FlightSnapshotForPanic();
  bool found = false;
  for (const auto& record : panic_view) {
    if (obs::TraceEventName(record.event_id) == "flighttest.lastbreath") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

using FlightRecorderDeathTest = FlightRecorderTest;

TEST_F(FlightRecorderDeathTest, CheckFailureDumpsRecentEvents) {
  // The acceptance property: a CHECK-triggered abort must dump the flight
  // ring, and the dump must contain the events emitted just before death.
  EXPECT_DEATH(
      {
        SKERN_TRACE("flighttest", "predeath", 41, 42);
        SKERN_TRACE("flighttest", "predeath", 43, 44);
        SKERN_CHECK(1 + 1 == 3);
      },
      "skern flight recorder");
  EXPECT_DEATH(
      {
        SKERN_TRACE("flighttest", "predeath", 41, 42);
        SKERN_CHECK_MSG(false, "flight death test");
      },
      "flighttest.predeath 41 42");
}

#ifndef NDEBUG
TEST_F(FlightRecorderDeathTest, DcheckFailureDumpsRecentEvents) {
  EXPECT_DEATH(
      {
        SKERN_TRACE("flighttest", "dcheck_predeath", 5, 6);
        SKERN_DCHECK(false);
      },
      "flighttest.dcheck_predeath 5 6");
}
#endif

TEST_F(FlightRecorderDeathTest, DisabledRecorderDumpsNothing) {
  EXPECT_DEATH(
      {
        SKERN_TRACE("flighttest", "predeath", 1, 2);
        obs::SetFlightRecorderEnabled(false);
        obs::ResetFlightForTesting();
        SKERN_CHECK(false);
      },
      "last 0 event");
}

}  // namespace
}  // namespace skern
