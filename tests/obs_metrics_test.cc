// Unit tests for the metrics registry: counter/gauge semantics, log2-bucket
// histogram math (bucket mapping and percentile estimation), the text
// renderer, and reference stability across ResetAllForTesting.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace skern {
namespace obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Get().ResetAllForTesting(); }
};

TEST_F(MetricsTest, CounterIncrementsAndAdds) {
  Counter& c = MetricsRegistry::Get().GetCounter("t.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST_F(MetricsTest, GaugeMovesBothWays) {
  Gauge& g = MetricsRegistry::Get().GetGauge("t.gauge");
  g.Set(10);
  g.Add(5);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -5);
}

TEST_F(MetricsTest, SameNameReturnsSameMetric) {
  Counter& a = MetricsRegistry::Get().GetCounter("t.same");
  Counter& b = MetricsRegistry::Get().GetCounter("t.same");
  EXPECT_EQ(&a, &b);
  a.Inc();
  EXPECT_EQ(b.Value(), 1u);
}

TEST_F(MetricsTest, BucketForIsLog2) {
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(Histogram::BucketFor(1024), 11u);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST_F(MetricsTest, HistogramTracksCountSumMax) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.hist");
  h.Observe(1);
  h.Observe(10);
  h.Observe(100);
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 111u);
  EXPECT_EQ(snap.max, 100u);
}

TEST_F(MetricsTest, PercentilesOfUniformSpread) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.uniform");
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Observe(v);
  }
  auto snap = h.GetSnapshot();
  // Log2 buckets are coarse: accept the estimate within the bucket that
  // holds the true quantile (a factor-of-two band).
  EXPECT_GE(snap.p50, 256u);
  EXPECT_LE(snap.p50, 1024u);
  EXPECT_GE(snap.p95, 512u);
  EXPECT_LE(snap.p95, 1024u);
  EXPECT_GE(snap.p99, 512u);
  EXPECT_LE(snap.p99, 1024u);
  EXPECT_GE(snap.p95, snap.p50);
  EXPECT_GE(snap.p99, snap.p95);
}

TEST_F(MetricsTest, PercentileOfSingleValueIsExactBucket) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.single");
  for (int i = 0; i < 100; ++i) {
    h.Observe(64);
  }
  auto snap = h.GetSnapshot();
  // All mass in bucket [64,128): every percentile lands inside it.
  EXPECT_GE(snap.p50, 64u);
  EXPECT_LT(snap.p50, 128u);
  EXPECT_GE(snap.p99, 64u);
  EXPECT_LT(snap.p99, 128u);
}

TEST_F(MetricsTest, EmptyHistogramSnapshotIsZero) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.empty");
  auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p50, 0u);
  EXPECT_EQ(snap.p99, 0u);
}

TEST_F(MetricsTest, RenderTextOneLinePerMetricSorted) {
  MetricsRegistry::Get().GetCounter("t.b").Inc(2);
  MetricsRegistry::Get().GetCounter("t.a").Inc();
  MetricsRegistry::Get().GetHistogram("t.c").Observe(5);
  std::string text = MetricsRegistry::Get().RenderText();
  auto pos_a = text.find("t.a 1\n");
  auto pos_b = text.find("t.b 2\n");
  auto pos_c = text.find("t.c count=1");
  ASSERT_NE(pos_a, std::string::npos) << text;
  ASSERT_NE(pos_b, std::string::npos) << text;
  ASSERT_NE(pos_c, std::string::npos) << text;
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
}

TEST_F(MetricsTest, ResetKeepsReferencesValid) {
  Counter& c = MetricsRegistry::Get().GetCounter("t.stable");
  c.Inc(7);
  MetricsRegistry::Get().ResetAllForTesting();
  // The registry zeroes in place; cached references (as hot paths hold via
  // function-local statics) must stay usable.
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  EXPECT_EQ(MetricsRegistry::Get().GetCounter("t.stable").Value(), 1u);
}

TEST_F(MetricsTest, CountersAreThreadSafe) {
  Counter& c = MetricsRegistry::Get().GetCounter("t.mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ScopedLatencyObservesOnce) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.scoped");
  { ScopedLatency timer(h); }
  EXPECT_EQ(h.GetSnapshot().count, 1u);
}

TEST_F(MetricsTest, MacroSitesRespectMasterGate) {
  Counter& c = MetricsRegistry::Get().GetCounter("t.gate");
  SetMetricsEnabled(false);
  SKERN_COUNTER_INC("t.gate");
  SKERN_HISTOGRAM_OBSERVE("t.gate_hist", 5);
  EXPECT_EQ(c.Value(), 0u);
  SetMetricsEnabled(true);
  SKERN_COUNTER_INC("t.gate");
  SKERN_HISTOGRAM_OBSERVE("t.gate_hist", 5);
  EXPECT_EQ(c.Value(), 1u);
  EXPECT_EQ(MetricsRegistry::Get().GetHistogram("t.gate_hist").Count(), 1u);
}

TEST_F(MetricsTest, LatencyTimingCanBeDisabled) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.gated");
  SetLatencyTimingEnabled(false);
  { ScopedLatency timer(h); }
  EXPECT_EQ(h.GetSnapshot().count, 0u);
  SetLatencyTimingEnabled(true);
  { ScopedLatency timer(h); }
  EXPECT_EQ(h.GetSnapshot().count, 1u);
}

}  // namespace
}  // namespace obs
}  // namespace skern
