// Span-tracing tests: begin/end emission, per-thread ids and parenting,
// gating, latency-histogram feeding, plane tagging, and lock-wait
// attribution from real contended TrackedMutex acquisitions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sync/mutex.h"

namespace skern {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceSession::Get().ResetForTesting();
    obs::MetricsRegistry::Get().ResetAllForTesting();
  }
  void TearDown() override {
    obs::TraceSession::Get().ResetForTesting();
    obs::SetMetricsEnabled(true);
    obs::SetLatencyTimingEnabled(true);
    obs::SetFlightRecorderEnabled(true);
  }
};

std::vector<obs::TraceRecord> DrainSession() { return obs::TraceSession::Get().Drain(); }

// Separate functions, as in real layered code — and they keep an inner
// bracket's variables from shadowing an outer one's.
void RunInnerSpan() { SKERN_SPAN("spantest", "inner"); }
void RunWorkerRootSpan() { SKERN_SPAN("spantest", "worker_root"); }

TEST_F(SpanTest, EmitsBalancedBeginEndWithNesting) {
  obs::TraceSession::Get().Start();
  {
    SKERN_SPAN("spantest", "outer");
    RunInnerSpan();
  }
  obs::TraceSession::Get().Stop();
  auto records = DrainSession();
  ASSERT_EQ(records.size(), 4u);

  const auto& outer_begin = records[0];
  const auto& inner_begin = records[1];
  const auto& inner_end = records[2];
  const auto& outer_end = records[3];

  EXPECT_TRUE(outer_begin.reserved & obs::kSpanBegin);
  EXPECT_TRUE(inner_begin.reserved & obs::kSpanBegin);
  EXPECT_TRUE(inner_end.reserved & obs::kSpanEnd);
  EXPECT_TRUE(outer_end.reserved & obs::kSpanEnd);

  // Parenting: inner's parent is outer's id; outer is a root (parent 0).
  EXPECT_EQ(outer_begin.arg1, 0u);
  EXPECT_EQ(inner_begin.arg1, outer_begin.arg0);
  // Ids pair begin with end.
  EXPECT_EQ(outer_begin.arg0, outer_end.arg0);
  EXPECT_EQ(inner_begin.arg0, inner_end.arg0);
  EXPECT_NE(outer_begin.arg0, inner_begin.arg0);
  // Depth grows with nesting (roots are depth 0).
  EXPECT_EQ(outer_begin.reserved & obs::kSpanDepthMask, 0u);
  EXPECT_EQ(inner_begin.reserved & obs::kSpanDepthMask, 1u);
  // Names intern as subsys.op.
  EXPECT_EQ(obs::TraceEventName(outer_begin.event_id), "spantest.outer");
  EXPECT_EQ(obs::TraceEventName(inner_begin.event_id), "spantest.inner");
}

TEST_F(SpanTest, SequentialSpansGetDistinctIds) {
  obs::TraceSession::Get().Start();
  for (int i = 0; i < 3; ++i) {
    SKERN_SPAN("spantest", "seq");
  }
  obs::TraceSession::Get().Stop();
  auto records = DrainSession();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_NE(records[0].arg0, records[2].arg0);
  EXPECT_NE(records[2].arg0, records[4].arg0);
}

TEST_F(SpanTest, ParentingNeverCrossesThreads) {
  obs::TraceSession::Get().Start();
  {
    SKERN_SPAN("spantest", "main_outer");
    std::thread worker(RunWorkerRootSpan);
    worker.join();
  }
  obs::TraceSession::Get().Stop();
  for (const auto& record : DrainSession()) {
    if ((record.reserved & obs::kSpanBegin) &&
        obs::TraceEventName(record.event_id) == "spantest.worker_root") {
      // The worker's span is a root even though main had a span open.
      EXPECT_EQ(record.arg1, 0u);
      EXPECT_EQ(record.reserved & obs::kSpanDepthMask, 0u);
    }
  }
}

TEST_F(SpanTest, LockedVariantCarriesFlag) {
  obs::TraceSession::Get().Start();
  {
    SKERN_SPAN_LOCKED("spantest", "locked_op");
  }
  obs::TraceSession::Get().Stop();
  auto records = DrainSession();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].reserved & obs::kSpanLocked);
  EXPECT_TRUE(records[1].reserved & obs::kSpanLocked);
}

TEST_F(SpanTest, PlaneTagRidesTheEndRecord) {
  obs::TraceSession::Get().Start();
  {
    SKERN_SPAN("spantest", "fastpath");
    skern_span_scope_.set_plane(obs::SpanPlane::kFast);
  }
  {
    SKERN_SPAN("spantest", "slowpath");
    skern_span_scope_.set_plane(obs::SpanPlane::kSlow);
  }
  obs::TraceSession::Get().Stop();
  auto records = DrainSession();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[0].reserved & obs::kSpanPlaneFast);  // begin: not yet known
  EXPECT_TRUE(records[1].reserved & obs::kSpanPlaneFast);
  EXPECT_TRUE(records[3].reserved & obs::kSpanPlaneSlow);
}

TEST_F(SpanTest, FullyGatedSpanEmitsAndObservesNothing) {
  // All sinks and metrics off: the span must leave no record and no
  // histogram sample — the "disabled span is one relaxed load" contract's
  // observable half.
  obs::SetFlightRecorderEnabled(false);
  obs::SetMetricsEnabled(false);
  {
    SKERN_SPAN("spantest", "gated");
  }
  obs::SetMetricsEnabled(true);
  obs::SetFlightRecorderEnabled(true);
  EXPECT_TRUE(DrainSession().empty());
  EXPECT_TRUE(
      obs::MetricsRegistry::Get().HistogramSnapshots("span.spantest.gated").empty());
}

TEST_F(SpanTest, LatencyOnlyGateFeedsHistogramWithoutRecords) {
  // Metrics on, every trace sink off: close still observes the latency
  // histogram but no begin/end records exist anywhere.
  obs::SetFlightRecorderEnabled(false);
  {
    SKERN_SPAN("spantest", "latency_only");
  }
  obs::SetFlightRecorderEnabled(true);
  EXPECT_TRUE(DrainSession().empty());
  auto snaps = obs::MetricsRegistry::Get().HistogramSnapshots("span.spantest.latency_only");
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].first, "span.spantest.latency_only.ns");
  EXPECT_EQ(snaps[0].second.count, 1u);
}

TEST_F(SpanTest, PlaneSplitsLatencySeries) {
  {
    SKERN_SPAN("spantest", "planes");
    skern_span_scope_.set_plane(obs::SpanPlane::kFast);
  }
  {
    SKERN_SPAN("spantest", "planes");
    skern_span_scope_.set_plane(obs::SpanPlane::kSlow);
  }
  {
    SKERN_SPAN("spantest", "planes");
  }
  auto snaps = obs::MetricsRegistry::Get().HistogramSnapshots("span.spantest.planes");
  ASSERT_EQ(snaps.size(), 3u);  // .fast.ns, .ns, .slow.ns
  for (const auto& [name, snap] : snaps) {
    EXPECT_EQ(snap.count, 1u) << name;
  }
}

TEST_F(SpanTest, ContendedMutexChargesTheEnclosingSpan) {
  // Real contention end-to-end: a worker holds the mutex while this thread,
  // inside a span, blocks on it. The wait must land in the span's
  // lock_wait_ns histogram AND in the per-class contention profile that
  // procfs /contention reports.
  LockRegistry::Get().ResetForTesting();
  TrackedMutex mutex("spantest.contended_mutex");
  std::atomic<bool> held{false};
  std::thread holder([&] {
    mutex.Lock();
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    mutex.Unlock();
  });
  while (!held.load(std::memory_order_acquire)) {
  }
  {
    SKERN_SPAN_LOCKED("spantest", "contended_op");
    mutex.Lock();  // the holder is mid-sleep: this blocks
    mutex.Unlock();
  }
  holder.join();

  auto snaps = obs::MetricsRegistry::Get().HistogramSnapshots(
      "span.spantest.contended_op.lock_wait_ns");
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].second.count, 1u);
  EXPECT_GT(snaps[0].second.sum, 0u);

  auto top = LockRegistry::Get().TopContended(10);
  bool found = false;
  for (const auto& entry : top) {
    if (entry.name == "spantest.contended_mutex") {
      found = true;
      EXPECT_GE(entry.count, 1u);
      EXPECT_GT(entry.total_wait_ns, 0u);
      // Quantiles are log2-bucket upper-bound estimates, so only check that
      // they are populated and ordered, not against the exact max.
      EXPECT_GT(entry.p50_ns, 0u);
      EXPECT_GE(entry.p99_ns, entry.p50_ns);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SpanTest, UncontendedLockChargesNothing) {
  TrackedMutex mutex("spantest.quiet_mutex");
  {
    SKERN_SPAN_LOCKED("spantest", "quiet_op");
    mutex.Lock();
    mutex.Unlock();
  }
  EXPECT_TRUE(obs::MetricsRegistry::Get()
                  .HistogramSnapshots("span.spantest.quiet_op.lock_wait_ns")
                  .empty());
}

}  // namespace
}  // namespace skern
