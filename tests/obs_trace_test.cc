// Tests for the tracepoint subsystem: session gating, record integrity under
// concurrent writers, ring overflow accounting, timestamp merging, and the
// SimClock hookup.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/obs/trace.h"

namespace skern {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceSession::Get().ResetForTesting(); }
  void TearDown() override { TraceSession::Get().ResetForTesting(); }
};

TEST_F(TraceTest, DisabledEmitsNothing) {
  EXPECT_FALSE(TraceSession::Get().active());
  SKERN_TRACE("test", "ignored", 1, 2);
  EXPECT_TRUE(TraceSession::Get().Drain().empty());
}

TEST_F(TraceTest, RecordsCarryEventAndArgs) {
  TraceSession::Get().Start();
  SKERN_TRACE("test", "one_arg", 42);
  SKERN_TRACE("test", "two_args", 7, 9);
  SKERN_TRACE("test", "no_args");
  TraceSession::Get().Stop();

  auto records = TraceSession::Get().Drain();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(TraceEventName(records[0].event_id), "test.one_arg");
  EXPECT_EQ(records[0].arg0, 42u);
  EXPECT_EQ(records[0].arg1, 0u);
  EXPECT_EQ(TraceEventName(records[1].event_id), "test.two_args");
  EXPECT_EQ(records[1].arg0, 7u);
  EXPECT_EQ(records[1].arg1, 9u);
  EXPECT_EQ(TraceEventName(records[2].event_id), "test.no_args");
}

TEST_F(TraceTest, DrainConsumesByDefaultPeekDoesNot) {
  TraceSession::Get().Start();
  SKERN_TRACE("test", "once");
  TraceSession::Get().Stop();

  EXPECT_EQ(TraceSession::Get().Drain(/*consume=*/false).size(), 1u);
  EXPECT_EQ(TraceSession::Get().Drain().size(), 1u);
  EXPECT_TRUE(TraceSession::Get().Drain().empty());
}

TEST_F(TraceTest, StartClearsStaleRecords) {
  TraceSession::Get().Start();
  SKERN_TRACE("test", "stale");
  TraceSession::Get().Stop();
  TraceSession::Get().Start();  // a session begins empty
  SKERN_TRACE("test", "fresh");
  TraceSession::Get().Stop();

  auto records = TraceSession::Get().Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(TraceEventName(records[0].event_id), "test.fresh");
}

TEST_F(TraceTest, DrainMergesByTimestamp) {
  SimClock clock;
  SetTraceClock(&clock);
  TraceSession::Get().Start();
  clock.Advance(300);
  SKERN_TRACE("test", "late");
  // A second thread's record with an earlier sim timestamp must sort first
  // even though it is pushed afterwards.
  // (The clock only moves on the main thread; the worker reads it.)
  uint64_t worker_ts = 0;
  {
    SimClock early_clock;
    // Emit from another thread at ts=100 by temporarily switching clocks.
    early_clock.Advance(100);
    SetTraceClock(&early_clock);
    std::thread worker([&] { SKERN_TRACE("test", "early"); });
    worker.join();
    worker_ts = 100;
    SetTraceClock(&clock);
  }
  TraceSession::Get().Stop();
  SetTraceClock(nullptr);

  auto records = TraceSession::Get().Drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(TraceEventName(records[0].event_id), "test.early");
  EXPECT_EQ(records[0].ts, worker_ts);
  EXPECT_EQ(TraceEventName(records[1].event_id), "test.late");
  EXPECT_EQ(records[1].ts, 300u);
}

TEST_F(TraceTest, ConcurrentWritersLoseNothingUnderCapacity) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 1000;  // well under the 8192 ring capacity
  TraceSession::Get().Start();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        SKERN_TRACE("test", "mt", static_cast<uint64_t>(t), i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  TraceSession::Get().Stop();

  auto records = TraceSession::Get().Drain();
  EXPECT_EQ(TraceSession::Get().dropped(), 0u);
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads) * kPerThread);
  // No torn records: every (writer, seq) pair arrives exactly once, and each
  // writer's sequence is intact.
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& r : records) {
    EXPECT_EQ(TraceEventName(r.event_id), "test.mt");
    EXPECT_LT(r.arg0, static_cast<uint64_t>(kThreads));
    EXPECT_LT(r.arg1, kPerThread);
    EXPECT_TRUE(seen.emplace(r.arg0, r.arg1).second)
        << "duplicate record " << r.arg0 << "/" << r.arg1;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST_F(TraceTest, OverflowDropsNewestAndCounts) {
  TraceSession::Get().Start();
  constexpr uint64_t kEmit = 20000;  // ring capacity is 8192
  for (uint64_t i = 0; i < kEmit; ++i) {
    SKERN_TRACE("test", "flood", i);
  }
  TraceSession::Get().Stop();

  auto records = TraceSession::Get().Drain();
  EXPECT_LT(records.size(), kEmit);
  EXPECT_EQ(records.size() + TraceSession::Get().dropped(), kEmit);
  // Drop-newest: the retained records are the oldest ones, in order.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].arg0, i);
  }
}

TEST_F(TraceTest, RenderTraceTextFormat) {
  SimClock clock;
  SetTraceClock(&clock);
  TraceSession::Get().Start();
  clock.Advance(5);
  SKERN_TRACE("test", "render", 1, 2);
  TraceSession::Get().Stop();
  SetTraceClock(nullptr);

  std::string text = RenderTraceText(TraceSession::Get().Drain());
  EXPECT_NE(text.find("5 "), std::string::npos) << text;
  EXPECT_NE(text.find("test.render 1 2"), std::string::npos) << text;
}

}  // namespace
}  // namespace obs
}  // namespace skern
