// Model-based property test for the ownership runtime: random operation
// sequences on an Owned<T> cell, with a reference state machine predicting
// exactly which operations must be flagged and how many times. The checker's
// verdicts must match the model on every step — the ownership analogue of
// the file-system refinement tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/ownership/owned.h"
#include "src/ownership/ownership.h"

namespace skern {
namespace {

struct Payload {
  int value = 0;
};

class OwnershipPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    OwnershipStats::Get().ResetForTesting();
    SetOwnershipMode(OwnershipMode::kRecording);
  }
  void TearDown() override { SetOwnershipMode(OwnershipMode::kChecked); }
};

TEST_P(OwnershipPropertyTest, CheckerAgreesWithReferenceModel) {
  Rng rng(GetParam());
  auto& stats = OwnershipStats::Get();

  for (int episode = 0; episode < 80; ++episode) {
    auto cell = std::make_unique<Owned<Payload>>(Owned<Payload>::Make(episode));

    // Reference model of the cell, mirroring the checker's semantics:
    //  * freed        — lifecycle is kFreed;
    //  * held_shared  — number of shared lends that actually hold a borrow;
    //  * held_excl    — an exclusive lend actually holds the borrow word.
    bool freed = false;
    int held_shared = 0;
    bool held_excl = false;

    std::vector<SharedLend<Payload>> shared;
    std::vector<bool> shared_holds;  // parallel: does shared[i] hold a borrow?
    std::unique_ptr<ExclusiveLend<Payload>> exclusive;
    bool exclusive_holds = false;

    int steps = 4 + static_cast<int>(rng.NextBelow(14));
    for (int step = 0; step < steps; ++step) {
      uint64_t before = stats.Total();
      uint64_t expected = 0;

      switch (rng.NextBelow(7)) {
        case 0: {  // owner read: one violation if freed / exclusively lent
          if (freed || held_excl) {
            expected = 1;
          }
          (void)cell->Get();
          break;
        }
        case 1: {  // owner write: one violation if freed or any lend holds
          if (freed || held_excl || held_shared > 0) {
            expected = 1;
          }
          cell->GetMut().value += 1;
          break;
        }
        case 2: {  // take a shared lend
          // LendShared pre-checks freed; the constructor flags an active
          // exclusive and then refuses the reservation.
          uint64_t pre = freed ? 1 : 0;
          uint64_t ctor = held_excl ? 1 : 0;
          expected = pre + ctor;
          shared.push_back(cell->LendShared());
          bool holds = !held_excl;  // reservation succeeds unless exclusive
          shared_holds.push_back(holds);
          if (holds) {
            ++held_shared;
          }
          break;
        }
        case 3: {  // drop one shared lend (LIFO)
          if (!shared.empty()) {
            bool held = shared_holds.back();
            shared.pop_back();
            shared_holds.pop_back();
            if (held) {
              --held_shared;
            }
          }
          break;
        }
        case 4: {  // take the exclusive lend (at most one handle in the test)
          if (exclusive != nullptr) {
            break;
          }
          uint64_t pre = freed ? 1 : 0;
          uint64_t ctor = (held_shared > 0 || held_excl) ? 1 : 0;
          expected = pre + ctor;
          exclusive = std::make_unique<ExclusiveLend<Payload>>(cell->LendExclusive());
          exclusive_holds = (ctor == 0);
          if (exclusive_holds) {
            held_excl = true;
          }
          break;
        }
        case 5: {  // drop the exclusive lend
          if (exclusive != nullptr) {
            exclusive.reset();
            if (exclusive_holds) {
              held_excl = false;
              exclusive_holds = false;
            }
          }
          break;
        }
        case 6: {  // free
          if (freed) {
            expected = 1;  // double free
          } else {
            if (held_shared > 0 || held_excl) {
              expected = 1;  // freeing with lends outstanding
            }
            freed = true;
          }
          cell->Free();
          break;
        }
      }

      uint64_t observed = stats.Total() - before;
      ASSERT_EQ(observed, expected)
          << "episode " << episode << " step " << step << ": checker and model disagree";
    }

    // Tear down in a safe order: lends first, then the owner. The owner's
    // destructor must raise nothing new (lends are gone; already-freed cells
    // skip the release path).
    uint64_t before_teardown = stats.Total();
    exclusive.reset();
    shared.clear();
    cell.reset();
    EXPECT_EQ(stats.Total(), before_teardown)
        << "teardown raised unexpected violations in episode " << episode;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OwnershipPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// The transfer protocol: after a transfer, every old-handle operation is
// flagged at least once and new-handle operations are always clean.
TEST(OwnershipTransferProperty, OldHandleAlwaysFlaggedNewHandleNever) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto& stats = OwnershipStats::Get();
  for (int op = 0; op < 4; ++op) {
    OwnershipStats::Get().ResetForTesting();
    auto original = Owned<Payload>::Make(1);
    auto in_flight = original.Transfer();
    auto new_owner = in_flight.Accept();

    uint64_t before = stats.Total();
    switch (op) {
      case 0:
        (void)original.Get();
        break;
      case 1:
        original.GetMut().value = 9;
        break;
      case 2:
        (void)original.LendShared();
        break;
      case 3:
        original.Free();
        break;
    }
    EXPECT_GE(stats.Total(), before + 1) << "old-handle op " << op << " not flagged";

    before = stats.Total();
    (void)new_owner.Get();
    new_owner.GetMut().value = 5;
    {
      auto lend = new_owner.LendShared();
      (void)lend.Get();
    }
    EXPECT_EQ(stats.Total(), before) << "new-handle ops were wrongly flagged";
  }
}

}  // namespace
}  // namespace skern
