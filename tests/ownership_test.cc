// Tests for the three ownership-sharing models of §4.3 and their runtime
// enforcement, plus the leak detector.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/base/panic.h"
#include "src/ownership/leak_detector.h"
#include "src/ownership/owned.h"
#include "src/ownership/ownership.h"

namespace skern {
namespace {

struct Payload {
  explicit Payload(int v = 0) : value(v) {}
  int value;
};

class OwnershipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OwnershipStats::Get().ResetForTesting();
    LeakDetector::Get().ResetForTesting();
    SetOwnershipMode(OwnershipMode::kChecked);
  }
  void TearDown() override { SetOwnershipMode(OwnershipMode::kChecked); }
};

TEST_F(OwnershipTest, OwnerReadsAndWrites) {
  auto cell = Owned<Payload>::Make(7);
  EXPECT_EQ(cell.Get().value, 7);
  cell.GetMut().value = 8;
  EXPECT_EQ((*cell).value, 8);
  EXPECT_EQ(cell->value, 8);
  EXPECT_TRUE(cell.valid());
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

// --- model 1: ownership transfer ---

TEST_F(OwnershipTest, TransferMovesOwnership) {
  auto cell = Owned<Payload>::Make(1);
  Transferred<Payload> in_flight = cell.Transfer();
  Owned<Payload> new_owner = in_flight.Accept();
  EXPECT_EQ(new_owner.Get().value, 1);
  EXPECT_FALSE(cell.valid());
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

TEST_F(OwnershipTest, CallerAccessAfterTransferIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(1);
  auto in_flight = cell.Transfer();
  auto new_owner = in_flight.Accept();
  (void)cell.Get();  // the §4.3 contract breach: "caller can no longer access"
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kUseAfterTransfer), 1u);
}

TEST_F(OwnershipTest, TransferPanicsOnUseInCheckedMode) {
  auto cell = Owned<Payload>::Make(1);
  auto in_flight = cell.Transfer();
  auto new_owner = in_flight.Accept();
  ScopedPanicAsException panic_guard;
  EXPECT_THROW(cell.Get(), PanicException);
}

TEST_F(OwnershipTest, DroppedTransferIsAViolation) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  {
    auto cell = Owned<Payload>::Make(1);
    auto in_flight = cell.Transfer();
    // never accepted
  }
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kUnconsumedTransfer), 1u);
}

TEST_F(OwnershipTest, TransferChain) {
  // Ownership can hop through several owners; only the last one frees.
  auto a = Owned<Payload>::Make(42);
  auto b = a.Transfer().Accept();
  auto c = b.Transfer().Accept();
  EXPECT_EQ(c.Get().value, 42);
  EXPECT_FALSE(a.valid());
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

// --- model 2: exclusive lend ---

TEST_F(OwnershipTest, ExclusiveLendGrantsMutation) {
  auto cell = Owned<Payload>::Make(1);
  {
    auto lend = cell.LendExclusive();
    lend->value = 99;
    lend.Get().value += 1;
  }
  EXPECT_EQ(cell.Get().value, 100);
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

TEST_F(OwnershipTest, OwnerBlockedDuringExclusiveLend) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(1);
  {
    auto lend = cell.LendExclusive();
    (void)cell.Get();  // "the caller cannot access the memory until the call returns"
    EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kUseWhileLentExclusive), 1u);
    cell.GetMut().value = 2;  // also blocked
    EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kUseWhileLentExclusive), 2u);
  }
  // After the lend returns, the owner has full rights again.
  EXPECT_EQ(cell.GetMut().value, 2);
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kUseWhileLentExclusive), 2u);
}

TEST_F(OwnershipTest, SecondExclusiveLendIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(1);
  auto lend1 = cell.LendExclusive();
  auto lend2 = cell.LendExclusive();  // a would-be data race
  EXPECT_GE(OwnershipStats::Get().Count(OwnershipViolation::kUseWhileLentExclusive), 1u);
}

// --- model 3: shared lend ---

TEST_F(OwnershipTest, ManySharedReaders) {
  auto cell = Owned<Payload>::Make(5);
  auto r1 = cell.LendShared();
  auto r2 = cell.LendShared();
  auto r3 = cell.LendShared();
  EXPECT_EQ(r1->value + r2->value + r3->value, 15);
  EXPECT_EQ(cell.Get().value, 5);  // owner may also read
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

TEST_F(OwnershipTest, MutationDuringSharedLendIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(5);
  {
    auto reader = cell.LendShared();
    cell.GetMut().value = 6;  // "none can mutate the memory until the call returns"
    EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kMutateWhileShared), 1u);
  }
  cell.GetMut().value = 7;  // fine now
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kMutateWhileShared), 1u);
}

TEST_F(OwnershipTest, ExclusiveDuringSharedIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(5);
  auto reader = cell.LendShared();
  auto writer = cell.LendExclusive();
  EXPECT_GE(OwnershipStats::Get().Total(), 1u);
}

TEST_F(OwnershipTest, SharedDuringExclusiveIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(5);
  auto writer = cell.LendExclusive();
  auto reader = cell.LendShared();
  EXPECT_GE(OwnershipStats::Get().Count(OwnershipViolation::kUseWhileLentExclusive), 1u);
}

// --- free / use-after-free ---

TEST_F(OwnershipTest, UseAfterExplicitFreeIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<Payload>::Make(1);
  cell.Free();
  (void)cell.Get();
  // After Free the handle is empty; access reports through the transfer path
  // or the UAF path depending on lifecycle visibility — either way it is
  // caught, never silent.
  EXPECT_GE(OwnershipStats::Get().Total(), 1u);
}

TEST_F(OwnershipTest, FreeWithOutstandingLendIsCaught) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto* cell = new Owned<Payload>(Payload{1});
  auto lend = cell->LendShared();
  delete cell;  // destructor frees while a shared lend is outstanding
  EXPECT_GE(OwnershipStats::Get().Count(OwnershipViolation::kUseAfterFree), 1u);
}

TEST_F(OwnershipTest, MoveAssignFreesPrevious) {
  auto a = Owned<Payload>::Make(1);
  auto b = Owned<Payload>::Make(2);
  a = std::move(b);
  EXPECT_EQ(a.Get().value, 2);
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

// --- unchecked mode (the performance ablation) ---

TEST_F(OwnershipTest, UncheckedModeSkipsEnforcement) {
  ScopedOwnershipMode mode(OwnershipMode::kUnchecked);
  auto cell = Owned<Payload>::Make(1);
  {
    auto lend = cell.LendExclusive();
    (void)cell.Get();  // would be a violation in checked mode
  }
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

// --- concurrency: the checker actually catches cross-thread races ---

struct RacyPayload {
  std::atomic<int> value{0};
};

TEST_F(OwnershipTest, ConcurrentExclusiveLendsDetected) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  auto cell = Owned<RacyPayload>::Make();
  // Thread A holds the exclusive lend while thread B attempts another one:
  // a deterministic cross-thread conflict (no scheduler luck required).
  auto held = cell.LendExclusive();
  std::thread contender([&] {
    auto racing = cell.LendExclusive();
    racing->value.fetch_add(1, std::memory_order_relaxed);
  });
  contender.join();
  EXPECT_GE(OwnershipStats::Get().Count(OwnershipViolation::kUseWhileLentExclusive), 1u);
}

TEST_F(OwnershipTest, DisjointExclusiveLendsAreClean) {
  auto cell = Owned<Payload>::Make(0);
  for (int i = 0; i < 1000; ++i) {
    auto lend = cell.LendExclusive();
    lend->value += 1;
  }
  EXPECT_EQ(cell.Get().value, 1000);
  EXPECT_EQ(OwnershipStats::Get().Total(), 0u);
}

// --- leak detector ---

TEST_F(OwnershipTest, LeakScopeCleanWhenBalanced) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  {
    LeakScope scope;
    uint64_t ticket = LeakDetector::Get().OnAlloc("test.obj", 64);
    EXPECT_EQ(scope.PendingLeaks(), 1u);
    LeakDetector::Get().OnFree(ticket);
    EXPECT_EQ(scope.PendingLeaks(), 0u);
  }
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kLeak), 0u);
}

TEST_F(OwnershipTest, LeakScopeReportsUnfreed) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  {
    LeakScope scope;
    LeakDetector::Get().OnAlloc("test.leak", 64);
    LeakDetector::Get().OnAlloc("test.leak", 64);
  }
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kLeak), 2u);
}

TEST_F(OwnershipTest, LeakScopeIgnoresOuterAllocations) {
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  uint64_t outer = LeakDetector::Get().OnAlloc("test.outer", 8);
  {
    LeakScope scope;
    EXPECT_EQ(scope.PendingLeaks(), 0u);
  }
  EXPECT_EQ(OwnershipStats::Get().Count(OwnershipViolation::kLeak), 0u);
  LeakDetector::Get().OnFree(outer);
}

TEST_F(OwnershipTest, LiveAccounting) {
  uint64_t t1 = LeakDetector::Get().OnAlloc("a", 10);
  uint64_t t2 = LeakDetector::Get().OnAlloc("b", 20);
  EXPECT_EQ(LeakDetector::Get().LiveCount(), 2u);
  EXPECT_EQ(LeakDetector::Get().LiveBytes(), 30u);
  auto labels = LeakDetector::Get().LiveLabels();
  EXPECT_EQ(labels.size(), 2u);
  LeakDetector::Get().OnFree(t1);
  LeakDetector::Get().OnFree(t2);
  EXPECT_EQ(LeakDetector::Get().LiveCount(), 0u);
}

TEST_F(OwnershipTest, ViolationNamesAreDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < static_cast<int>(OwnershipViolation::kCount); ++i) {
    names.push_back(OwnershipViolationName(static_cast<OwnershipViolation>(i)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace skern
