// Permission semantics across the whole syscall surface: one table of
// EACCES/EPERM expectations exercised through the path plane, the descriptor
// plane (both with and without handle acceleration), and the async plane.
//
// The contract under test, matching POSIX errno semantics:
//   * DAC denials (mode-triad failures) are EACCES.
//   * Ownership/capability denials (chmod without owning, chown without
//     kCapChown) are EPERM.
//   * Descriptor rights follow the inode's *current* bits: a chmod or chown
//     after open takes effect on the very next Read/Write, on both planes.
//   * The async plane checks the credential captured at Enqueue, never the
//     executing thread's — identical errnos to the synchronous plane.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/aio/aio.h"
#include "src/base/bytes.h"
#include "src/base/cred.h"
#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

constexpr uint32_t kUserUid = 1000;
constexpr uint32_t kUserGid = 1000;

Bytes B(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Mount a fresh SafeFs and, as root, lay out the fixture namespace:
//   /home        0755 root:root
//   /home/file   0644 root:root   "hello"
//   /tank        0777 root:root   (the anyone-may-create directory)
class PermTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    disk_ = std::make_unique<RamDisk>(512, 99);
    fs_ = SafeFs::Format(*disk_, 96, 64).value();
    ASSERT_TRUE(vfs_.Mount("/", fs_).ok());
    vfs_.SetHandleAcceleration(GetParam());
    ASSERT_TRUE(vfs_.Mkdir("/home").ok());
    ASSERT_TRUE(vfs_.Mkdir("/tank").ok());
    ASSERT_TRUE(vfs_.Chmod("/tank", 0777).ok());
    auto fd = vfs_.Open("/home/file", kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs_.Write(*fd, ByteView(B("hello"))).ok());
    ASSERT_TRUE(vfs_.Close(*fd).ok());
  }

  // Opens as the current credential; fails the test on error.
  Fd MustOpen(const std::string& path, uint32_t flags) {
    auto fd = vfs_.Open(path, flags);
    EXPECT_TRUE(fd.ok()) << path << ": " << ErrnoName(fd.ok() ? Errno::kOk : fd.error());
    return fd.ok() ? *fd : -1;
  }

  std::unique_ptr<RamDisk> disk_;
  std::shared_ptr<SafeFs> fs_;
  Vfs vfs_;
};

INSTANTIATE_TEST_SUITE_P(HandlePlane, PermTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "HandleAccel" : "PathPlane";
                         });

// One row per path syscall: what an unprivileged user gets against the
// root-owned fixture tree. DAC failures are EACCES; ownership failures EPERM.
TEST_P(PermTest, PathSyscallErrnoTable) {
  ScopedCred user(Cred::User(kUserUid, kUserGid));
  struct Row {
    const char* name;
    Errno expect;
    std::function<Status()> op;
  };
  const std::vector<Row> table = {
      // Reads the world can do: /home is 0755 (r-x for others).
      {"stat", Errno::kOk, [&] { return vfs_.Stat("/home/file").ok() ? Status::Ok()
                                                                     : Status::Error(Errno::kEACCES); }},
      {"readdir", Errno::kOk,
       [&] {
         auto r = vfs_.Readdir("/home");
         return r.ok() ? Status::Ok() : Status::Error(r.error());
       }},
      {"open-read", Errno::kOk,
       [&] {
         auto fd = vfs_.Open("/home/file", kOpenRead);
         if (!fd.ok()) return Status::Error(fd.error());
         return vfs_.Close(*fd);
       }},
      // Mutations under a 0755 root-owned parent: parent-write DAC, EACCES.
      {"mkdir", Errno::kEACCES, [&] { return vfs_.Mkdir("/home/sub"); }},
      {"unlink", Errno::kEACCES, [&] { return vfs_.Unlink("/home/file"); }},
      {"rename", Errno::kEACCES, [&] { return vfs_.Rename("/home/file", "/home/moved"); }},
      {"open-create", Errno::kEACCES,
       [&] {
         auto fd = vfs_.Open("/home/new", kOpenWrite | kOpenCreate);
         return fd.ok() ? vfs_.Close(*fd) : Status::Error(fd.error());
       }},
      // Mutations of the 0644 file itself: file-write DAC, EACCES.
      {"open-write", Errno::kEACCES,
       [&] {
         auto fd = vfs_.Open("/home/file", kOpenWrite);
         return fd.ok() ? vfs_.Close(*fd) : Status::Error(fd.error());
       }},
      {"truncate", Errno::kEACCES, [&] { return vfs_.Truncate("/home/file", 0); }},
      // Ownership operations: not "permission denied" but "not permitted".
      {"chmod", Errno::kEPERM, [&] { return vfs_.Chmod("/home/file", 0600); }},
      {"chown", Errno::kEPERM, [&] { return vfs_.Chown("/home/file", kUserUid, kUserGid); }},
      // The 0777 directory: anyone may create there.
      {"mkdir-tank", Errno::kOk, [&] { return vfs_.Mkdir("/tank/mine"); }},
  };
  for (const Row& row : table) {
    EXPECT_EQ(row.op().code(), row.expect) << row.name;
  }
}

// The POSIX triad selection: exactly one of owner/group/other applies.
TEST_P(PermTest, TriadSelection) {
  ASSERT_TRUE(vfs_.Chmod("/home/file", 0640).ok());
  ASSERT_TRUE(vfs_.Chown("/home/file", kUserUid, 2000).ok());
  struct Row {
    uint32_t uid, gid;
    Errno read, write;
  };
  // 0640: owner rw-, group r--, other ---.
  const std::vector<Row> table = {
      {kUserUid, 999, Errno::kOk, Errno::kOk},       // owner triad
      {1001, 2000, Errno::kOk, Errno::kEACCES},      // group triad
      {1001, 999, Errno::kEACCES, Errno::kEACCES},   // other triad
  };
  for (const Row& row : table) {
    ScopedCred cred(Cred::User(row.uid, row.gid));
    auto rd = vfs_.Open("/home/file", kOpenRead);
    EXPECT_EQ(rd.ok() ? Errno::kOk : rd.error(), row.read) << row.uid << ":" << row.gid;
    if (rd.ok()) ASSERT_TRUE(vfs_.Close(*rd).ok());
    auto wr = vfs_.Open("/home/file", kOpenWrite);
    EXPECT_EQ(wr.ok() ? Errno::kOk : wr.error(), row.write) << row.uid << ":" << row.gid;
    if (wr.ok()) ASSERT_TRUE(vfs_.Close(*wr).ok());
  }
}

// A file created by a user is owned by that user, mode 0644.
TEST_P(PermTest, CreateAssignsCreatorOwnership) {
  ScopedCred user(Cred::User(kUserUid, kUserGid));
  Fd fd = MustOpen("/tank/mine.txt", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(vfs_.Close(fd).ok());
  auto attr = vfs_.Stat("/tank/mine.txt");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->uid, kUserUid);
  EXPECT_EQ(attr->gid, kUserGid);
  EXPECT_EQ(attr->mode, 0644u);
  // ...and the creator may chmod it without any capability (CheckOwner).
  EXPECT_TRUE(vfs_.Chmod("/tank/mine.txt", 0600).ok());
  // ...but may not give it away: chown needs kCapChown even on owned files.
  EXPECT_EQ(vfs_.Chown("/tank/mine.txt", 0, 0).code(), Errno::kEPERM);
}

// Descriptor rights follow the inode's current bits: chmod after open takes
// effect on the next Read/Write — on the path-walking plane and the
// handle-accelerated plane alike.
TEST_P(PermTest, ChmodRevalidatesOpenDescriptor) {
  ASSERT_TRUE(vfs_.Chmod("/home/file", 0666).ok());
  ScopedCred user(Cred::User(kUserUid, kUserGid));
  Fd fd = MustOpen("/home/file", kOpenRead | kOpenWrite);
  EXPECT_TRUE(vfs_.Read(fd, 5).ok());
  EXPECT_TRUE(vfs_.Pwrite(fd, 0, ByteView(B("HELLO"))).ok());
  {
    // Root yanks all access while the descriptor is open.
    ScopedCred root(Cred::Root());
    ASSERT_TRUE(vfs_.Chmod("/home/file", 0000).ok());
  }
  EXPECT_EQ(vfs_.Pread(fd, 0, 5).error(), Errno::kEACCES);
  EXPECT_EQ(vfs_.Pwrite(fd, 0, ByteView(B("x"))).code(), Errno::kEACCES);
  // The unchecked maintenance calls still work on the open descriptor.
  EXPECT_TRUE(vfs_.Seek(fd, 0).ok());
  EXPECT_TRUE(vfs_.Fsync(fd).ok());
  {
    // Restoring read-only restores exactly read.
    ScopedCred root(Cred::Root());
    ASSERT_TRUE(vfs_.Chmod("/home/file", 0444).ok());
  }
  auto back = vfs_.Read(fd, 5);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::string(back->begin(), back->end()), "HELLO");
  EXPECT_EQ(vfs_.Write(fd, ByteView(B("y"))).code(), Errno::kEACCES);
  EXPECT_TRUE(vfs_.Close(fd).ok());
}

// Same revalidation via ownership change: chown moves the descriptor holder
// from the owner triad to the other triad.
TEST_P(PermTest, ChownRevalidatesOpenDescriptor) {
  ASSERT_TRUE(vfs_.Chown("/home/file", kUserUid, kUserGid).ok());
  ASSERT_TRUE(vfs_.Chmod("/home/file", 0600).ok());
  ScopedCred user(Cred::User(kUserUid, kUserGid));
  Fd fd = MustOpen("/home/file", kOpenRead | kOpenWrite);
  EXPECT_TRUE(vfs_.Read(fd, 5).ok());
  {
    ScopedCred root(Cred::Root());
    ASSERT_TRUE(vfs_.Chown("/home/file", 0, 0).ok());
  }
  EXPECT_EQ(vfs_.Pread(fd, 0, 5).error(), Errno::kEACCES);
  EXPECT_TRUE(vfs_.Close(fd).ok());
}

// The capability escapes, each scoped to exactly its operation.
TEST_P(PermTest, CapabilityTable) {
  ASSERT_TRUE(vfs_.Chmod("/home/file", 0600).ok());
  {
    // kCapDacOverride bypasses mode checks but confers no ownership rights.
    ScopedCred cred(Cred{kUserUid, kUserGid, kCapDacOverride});
    Fd fd = MustOpen("/home/file", kOpenRead | kOpenWrite);
    EXPECT_TRUE(vfs_.Pwrite(fd, 0, ByteView(B("CAP"))).ok());
    EXPECT_TRUE(vfs_.Close(fd).ok());
    EXPECT_EQ(vfs_.Chmod("/home/file", 0666).code(), Errno::kEPERM);
    EXPECT_EQ(vfs_.Chown("/home/file", kUserUid, kUserGid).code(), Errno::kEPERM);
  }
  {
    // kCapFowner grants owner-ops (chmod) on any file, nothing else.
    ScopedCred cred(Cred{kUserUid, kUserGid, kCapFowner});
    EXPECT_TRUE(vfs_.Chmod("/home/file", 0644).ok());
    EXPECT_EQ(vfs_.Chown("/home/file", kUserUid, kUserGid).code(), Errno::kEPERM);
    EXPECT_EQ(vfs_.Truncate("/home/file", 0).code(), Errno::kEACCES);
  }
  {
    // kCapChown grants exactly chown.
    ScopedCred cred(Cred{kUserUid, kUserGid, kCapChown});
    EXPECT_TRUE(vfs_.Chown("/home/file", kUserUid, kUserGid).ok());
    EXPECT_EQ(vfs_.Chmod("/home/file", 0600).code(), Errno::kOk)
        << "now the owner, chmod passes CheckOwner without any capability";
  }
}

// The async plane returns the same errnos the synchronous plane does for the
// same descriptor state — completions carry EACCES instead of lost writes.
TEST_P(PermTest, AioPlaneMatchesSyncErrnos) {
  ASSERT_TRUE(vfs_.Chmod("/home/file", 0666).ok());
  ScopedCred user(Cred::User(kUserUid, kUserGid));
  Fd fd = MustOpen("/home/file", kOpenRead | kOpenWrite);
  {
    ScopedCred root(Cred::Root());
    ASSERT_TRUE(vfs_.Chmod("/home/file", 0444).ok());
  }
  // Sync plane: read ok, write denied.
  Errno sync_read = vfs_.Pread(fd, 0, 5).ok() ? Errno::kOk : Errno::kEACCES;
  Errno sync_write = vfs_.Pwrite(fd, 0, ByteView(B("x"))).code();
  EXPECT_EQ(sync_read, Errno::kOk);
  EXPECT_EQ(sync_write, Errno::kEACCES);
  // Async plane, same descriptor: identical errnos in the completions.
  AioQueue queue(vfs_, 8);
  AioOp read_op;
  read_op.kind = AioOpKind::kRead;
  read_op.fd = fd;
  read_op.length = 5;
  read_op.user_data = 1;
  AioOp write_op;
  write_op.kind = AioOpKind::kWrite;
  write_op.fd = fd;
  write_op.data = B("x");
  write_op.user_data = 2;
  ASSERT_TRUE(queue.Enqueue(std::move(read_op)));
  ASSERT_TRUE(queue.Enqueue(std::move(write_op)));
  EXPECT_EQ(queue.Submit(), 2u);
  std::vector<AioCompletion> done;
  ASSERT_EQ(queue.Harvest(done, 8), 2u);
  for (const AioCompletion& c : done) {
    EXPECT_EQ(c.error, c.user_data == 1 ? sync_read : sync_write)
        << "plane divergence on op " << c.user_data;
  }
  EXPECT_TRUE(vfs_.Close(fd).ok());
}

// The credential is captured at Enqueue: submitting (and therefore executing,
// in inline mode) as root must NOT launder a user's denied write.
TEST_P(PermTest, AioChecksSubmitterCredNotExecutor) {
  AioQueue queue(vfs_, 8);
  Fd fd = MustOpen("/home/file", kOpenRead | kOpenWrite);  // as root
  {
    // The op is constructed — and its cred captured — under the user.
    ScopedCred user(Cred::User(kUserUid, kUserGid));
    AioOp op;
    op.kind = AioOpKind::kWrite;
    op.fd = fd;
    op.data = B("steal");
    op.user_data = 7;
    ASSERT_TRUE(queue.Enqueue(std::move(op)));
  }
  // Submit runs on this (root) thread in inline mode.
  EXPECT_EQ(queue.Submit(), 1u);
  std::vector<AioCompletion> done;
  ASSERT_EQ(queue.Harvest(done, 8), 1u);
  EXPECT_EQ(done[0].error, Errno::kEACCES) << "root executor laundered a user write";
  // The same write enqueued as root sails through.
  AioOp root_op;
  root_op.kind = AioOpKind::kWrite;
  root_op.fd = fd;
  root_op.data = B("fine");
  ASSERT_TRUE(queue.Enqueue(std::move(root_op)));
  EXPECT_EQ(queue.Submit(), 1u);
  done.clear();
  ASSERT_EQ(queue.Harvest(done, 8), 1u);
  EXPECT_EQ(done[0].error, Errno::kOk);
  EXPECT_TRUE(vfs_.Close(fd).ok());
}

// Engine mode: the op executes on a root kernel worker thread; the
// completion still carries the submitter's denial.
TEST_P(PermTest, AioEngineWorkerUsesSubmitterCred) {
  AioEngine engine(1);
  AioQueue queue(vfs_, 8, engine);
  Fd fd = MustOpen("/home/file", kOpenRead | kOpenWrite);  // as root
  {
    ScopedCred user(Cred::User(kUserUid, kUserGid));
    AioOp read_op;
    read_op.kind = AioOpKind::kRead;
    read_op.fd = fd;
    read_op.length = 5;
    read_op.user_data = 1;
    AioOp write_op;
    write_op.kind = AioOpKind::kWrite;
    write_op.fd = fd;
    write_op.data = B("no");
    write_op.user_data = 2;
    ASSERT_TRUE(queue.Enqueue(std::move(read_op)));
    ASSERT_TRUE(queue.Enqueue(std::move(write_op)));
  }
  EXPECT_EQ(queue.Submit(), 2u);
  std::vector<AioCompletion> done;
  queue.HarvestBlocking(done, 2);
  ASSERT_EQ(done.size(), 2u);
  for (const AioCompletion& c : done) {
    // 0644 root-owned: the user may read, not write.
    EXPECT_EQ(c.error, c.user_data == 1 ? Errno::kOk : Errno::kEACCES);
  }
  EXPECT_TRUE(vfs_.Close(fd).ok());
}

}  // namespace
}  // namespace skern
