// Tests for procfs: live introspection files, read-only semantics, and
// mounting under the VFS next to writable file systems.
#include <gtest/gtest.h>

#include <memory>

#include "src/base/cred.h"
#include "src/base/log.h"
#include "src/block/block_device.h"
#include "src/block/buffer_head.h"
#include "src/core/module.h"
#include "src/fs/procfs/procfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/ownership/owned.h"
#include "src/ownership/ownership.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

class ProcFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    OwnershipStats::Get().ResetForTesting();
  }
};

TEST_F(ProcFsTest, ListsBuiltinEntries) {
  ProcFs proc;
  auto names = proc.Readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(),
            (std::vector<std::string>{"contention", "landscape", "latency", "locks", "log",
                                      "metrics", "modules", "ownership", "refinement",
                                      "shims", "slabinfo", "spans", "trace"}));
}

TEST_F(ProcFsTest, ReadOnlySemantics) {
  ProcFs proc;
  EXPECT_EQ(proc.Create("/x").code(), Errno::kEROFS);
  EXPECT_EQ(proc.Mkdir("/d").code(), Errno::kEROFS);
  EXPECT_EQ(proc.Unlink("/modules").code(), Errno::kEROFS);
  EXPECT_EQ(proc.Write("/modules", 0, BytesFromString("x")).code(), Errno::kEROFS);
  EXPECT_EQ(proc.Rename("/modules", "/m2").code(), Errno::kEROFS);
  EXPECT_EQ(proc.Truncate("/modules", 0).code(), Errno::kEROFS);
  EXPECT_TRUE(proc.Sync().ok());
}

TEST_F(ProcFsTest, ErrorPaths) {
  ProcFs proc;
  EXPECT_EQ(proc.Read("/nope", 0, 10).error(), Errno::kENOENT);
  EXPECT_EQ(proc.Read("/", 0, 10).error(), Errno::kEISDIR);
  EXPECT_EQ(proc.Stat("/nope").error(), Errno::kENOENT);
  EXPECT_EQ(proc.Readdir("/modules").error(), Errno::kENOTDIR);
  EXPECT_EQ(proc.Read("relative", 0, 1).error(), Errno::kEINVAL);
}

TEST_F(ProcFsTest, OwnershipFileReflectsLiveCounters) {
  ProcFs proc;
  auto before = proc.Read("/ownership", 0, 4096);
  ASSERT_TRUE(before.ok());
  EXPECT_NE(StringFromBytes(before.value()).find("total 0"), std::string::npos);

  // Cause one recorded violation; the file must change on the next read.
  {
    ScopedOwnershipMode mode(OwnershipMode::kRecording);
    auto cell = Owned<int>::Make(1);
    auto lend = cell.LendExclusive();
    (void)cell.Get();
  }
  auto after = proc.Read("/ownership", 0, 4096);
  ASSERT_TRUE(after.ok());
  std::string text = StringFromBytes(after.value());
  EXPECT_NE(text.find("use-while-lent-exclusive 1"), std::string::npos) << text;
}

TEST_F(ProcFsTest, ModulesFileShowsRegistry) {
  ModuleRegistry::Get().ResetForTesting();
  RegisterBuiltinModules();
  ProcFs proc;
  auto content = proc.Read("/modules", 0, 65536);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("safefs"), std::string::npos);
  EXPECT_NE(text.find("ownership-safe"), std::string::npos);
  ModuleRegistry::Get().ResetForTesting();
}

TEST_F(ProcFsTest, StatSizesMatchContent) {
  ProcFs proc;
  auto attr = proc.Stat("/locks");
  ASSERT_TRUE(attr.ok());
  auto content = proc.Read("/locks", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(attr->size, content->size());
  EXPECT_FALSE(attr->is_dir);
  EXPECT_TRUE(proc.Stat("/")->is_dir);
}

TEST_F(ProcFsTest, OffsetReads) {
  ProcFs proc;
  proc.AddEntry("fixed", [] { return std::string("0123456789"); });
  EXPECT_EQ(StringFromBytes(proc.Read("/fixed", 0, 4).value()), "0123");
  EXPECT_EQ(StringFromBytes(proc.Read("/fixed", 4, 4).value()), "4567");
  EXPECT_EQ(StringFromBytes(proc.Read("/fixed", 8, 100).value()), "89");
  EXPECT_TRUE(proc.Read("/fixed", 100, 4)->empty());
}

TEST_F(ProcFsTest, MountsUnderVfsBesideWritableFs) {
  RamDisk disk(256, 9);
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", SafeFs::Format(disk, 64, 16).value()).ok());
  ASSERT_TRUE(vfs.Mkdir("/proc").ok());
  ASSERT_TRUE(vfs.Mount("/proc", std::make_shared<ProcFs>()).ok());

  // cat /proc/ownership through file descriptors.
  auto fd = vfs.Open("/proc/ownership", kOpenRead);
  ASSERT_TRUE(fd.ok());
  auto content = vfs.Read(*fd, 4096);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(StringFromBytes(content.value()).find("use-after-free"), std::string::npos);
  ASSERT_TRUE(vfs.Close(*fd).ok());

  // Writes are refused with the filesystem's own errno.
  EXPECT_EQ(vfs.Open("/proc/new", kOpenWrite | kOpenCreate).error(), Errno::kEROFS);
  // The writable root is unaffected.
  EXPECT_TRUE(vfs.Open("/real", kOpenWrite | kOpenCreate).ok());
}

TEST_F(ProcFsTest, MetricsFileReflectsLiveRegistry) {
  ProcFs proc;
  obs::MetricsRegistry::Get().GetCounter("proctest.reads").Inc();
  obs::MetricsRegistry::Get().GetCounter("proctest.reads").Inc();
  obs::MetricsRegistry::Get().GetHistogram("proctest.latency_ns").Observe(100);

  auto content = proc.Read("/metrics", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("proctest.reads 2"), std::string::npos) << text;
  EXPECT_NE(text.find("proctest.latency_ns count=1"), std::string::npos) << text;

  // The file is live: a third increment shows up on the next read.
  obs::MetricsRegistry::Get().GetCounter("proctest.reads").Inc();
  content = proc.Read("/metrics", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(StringFromBytes(content.value()).find("proctest.reads 3"), std::string::npos);
}

TEST_F(ProcFsTest, MetricsFileExportsDcacheCounters) {
  // Drive a SafeFs through the lookup fast path: hits (repeat stats),
  // negative hits (repeat stats of a missing name), misses (first touches),
  // and an invalidation (rename). Every dcache counter must then be visible
  // through /metrics — including the ones still at zero, which the cache
  // registers eagerly at construction.
  RamDisk disk(256, 11);
  auto fs = SafeFs::Format(disk, 64, 16).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->Create("/d/f").ok());
  EXPECT_TRUE(fs->Stat("/d/f").ok());
  EXPECT_TRUE(fs->Stat("/d/f").ok());
  EXPECT_EQ(fs->Stat("/d/missing").error(), Errno::kENOENT);
  EXPECT_EQ(fs->Stat("/d/missing").error(), Errno::kENOENT);
  ASSERT_TRUE(fs->Rename("/d/f", "/d/g").ok());

  auto stats = fs->dcache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.negative_hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.invalidations, 0u);

  ProcFs proc;
  auto content = proc.Read("/metrics", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  for (const char* name :
       {"vfs.dcache.hits ", "vfs.dcache.misses ", "vfs.dcache.negative_hits ",
        "vfs.dcache.inserts ", "vfs.dcache.invalidations ",
        "vfs.dcache.evictions ", "vfs.dcache.entries "}) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing " << name << " in:\n" << text;
  }
  // The hot counters carry real traffic, not just their registration zeros.
  EXPECT_EQ(text.find("vfs.dcache.hits 0"), std::string::npos) << text;
  EXPECT_EQ(text.find("vfs.dcache.invalidations 0"), std::string::npos) << text;
}

TEST_F(ProcFsTest, MetricsFileExportsPermissionCounters) {
  // Drive the VFS access checks: a passing stat and a denied write as an
  // unprivileged user. Both the check counter and the denial counter must
  // then be visible — and moving — through /metrics.
  RamDisk disk(256, 13);
  auto fs = SafeFs::Format(disk, 64, 16).value();
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", fs).ok());
  {
    auto fd = vfs.Open("/secret", kOpenWrite | kOpenCreate);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs.Close(*fd).ok());
    ASSERT_TRUE(vfs.Chmod("/secret", 0600).ok());
  }
  uint64_t checks_before = obs::MetricsRegistry::Get().GetCounter("vfs.perm.checks").Value();
  uint64_t denied_before = obs::MetricsRegistry::Get().GetCounter("vfs.perm.denied").Value();
  {
    ScopedCred user(Cred::User(1000, 1000));
    EXPECT_TRUE(vfs.Stat("/secret").ok());  // 0755 root dir grants lookup
    EXPECT_EQ(vfs.Open("/secret", kOpenWrite).error(), Errno::kEACCES);
  }
  EXPECT_GT(obs::MetricsRegistry::Get().GetCounter("vfs.perm.checks").Value(), checks_before);
  EXPECT_GT(obs::MetricsRegistry::Get().GetCounter("vfs.perm.denied").Value(), denied_before);

  ProcFs proc;
  auto content = proc.Read("/metrics", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("vfs.perm.checks "), std::string::npos) << text;
  EXPECT_NE(text.find("vfs.perm.denied "), std::string::npos) << text;
  // The denial above means neither counter can render as zero.
  EXPECT_EQ(text.find("vfs.perm.checks 0\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("vfs.perm.denied 0\n"), std::string::npos) << text;
}

TEST_F(ProcFsTest, MetricsFileExportsIoFastpathCounters) {
  // Drive the handle data plane: a cold write (slow, warms the mirrors), a
  // buffered fast write, fsync (drains write-back), then sequential fast
  // reads that trigger read-ahead — plus one read of a path-API-written file
  // whose block map is still cold, which must take the slow path. Every
  // data-plane counter must then be visible through /metrics — including the
  // ones still at zero, which SafeFs registers eagerly at construction.
  RamDisk disk(256, 12);
  auto fs = SafeFs::Format(disk, 64, 16).value();
  ASSERT_TRUE(fs->Create("/hot").ok());
  auto handle = fs->OpenByPath("/hot");
  ASSERT_TRUE(handle.ok());
  Bytes data(8 * kBlockSize, 0xab);  // long enough that a sequential streak
                                     // still has blocks ahead to prefetch
  ASSERT_TRUE(fs->WriteAt(*handle, 0, ByteView(data)).ok());  // cold: slow write
  ASSERT_TRUE(fs->WriteAt(*handle, 0, ByteView(data)).ok());  // warm: buffered
  ASSERT_TRUE(fs->FsyncHandle(*handle).ok());
  for (uint64_t offset = 0; offset < data.size(); offset += kBlockSize) {
    auto chunk = fs->ReadAt(*handle, offset, kBlockSize);
    ASSERT_TRUE(chunk.ok());
    ASSERT_EQ(chunk->size(), kBlockSize);
  }
  fs->CloseHandle(*handle);
  ASSERT_TRUE(fs->Create("/cold").ok());
  ASSERT_TRUE(fs->Write("/cold", 0, Bytes(kBlockSize, 0xcd)).ok());
  auto cold_handle = fs->OpenByPath("/cold");
  ASSERT_TRUE(cold_handle.ok());
  auto cold_read = fs->ReadAt(*cold_handle, 0, kBlockSize);
  ASSERT_TRUE(cold_read.ok());
  fs->CloseHandle(*cold_handle);

  auto io = fs->io_stats();
  EXPECT_GT(io.fast_reads, 0u);
  EXPECT_GT(io.slow_reads, 0u);
  EXPECT_GT(io.blockmap_hits, 0u);
  EXPECT_GT(io.readahead_issued, 0u);
  EXPECT_GT(io.fast_writes, 0u);
  EXPECT_GT(io.slow_writes, 0u);
  EXPECT_GT(io.wb_drains, 0u);
  EXPECT_GT(io.wb_drained_cells, 0u);

  ProcFs proc;
  auto content = proc.Read("/metrics", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  for (const char* name :
       {"safefs.io.fast_reads ", "safefs.io.slow_reads ", "safefs.readahead.issued ",
        "safefs.readahead.hits ", "safefs.blockmap.hits ", "safefs.blockmap.misses ",
        "safefs.io.fast_writes ", "safefs.io.slow_writes ",
        "safefs.writeback.fast_writes ", "safefs.writeback.drains ",
        "safefs.writeback.drained_cells ", "safefs.writeback.dirty_cells ",
        "journal.txs_open ", "journal.checkpoints ", "sync.rwlock.contended "}) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing " << name << " in:\n" << text;
  }
  // The hot counters carry real traffic, not just their registration zeros.
  EXPECT_EQ(text.find("safefs.io.fast_reads 0"), std::string::npos) << text;
  EXPECT_EQ(text.find("safefs.blockmap.hits 0"), std::string::npos) << text;
  EXPECT_EQ(text.find("safefs.writeback.fast_writes 0"), std::string::npos) << text;
  EXPECT_EQ(text.find("safefs.writeback.drains 0"), std::string::npos) << text;
}

TEST_F(ProcFsTest, TraceFileShowsBufferedEvents) {
  auto& session = obs::TraceSession::Get();
  session.ResetForTesting();
  session.Start();
  SKERN_TRACE("proctest", "ping", 7, 9);
  session.Stop();

  ProcFs proc;
  auto content = proc.Read("/trace", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("session stopped"), std::string::npos) << text;
  EXPECT_NE(text.find("dropped 0"), std::string::npos) << text;
  EXPECT_NE(text.find("proctest.ping 7 9"), std::string::npos) << text;

  // Reading /trace peeks; the records survive for a second read.
  content = proc.Read("/trace", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(StringFromBytes(content.value()).find("proctest.ping 7 9"), std::string::npos);
  session.ResetForTesting();
}

TEST_F(ProcFsTest, SpansAndLatencyFilesReflectClosedSpans) {
  obs::MetricsRegistry::Get().ResetAllForTesting();
  {
    SKERN_SPAN("proctest", "op");
  }
  ProcFs proc;
  auto spans = proc.Read("/spans", 0, 1 << 20);
  ASSERT_TRUE(spans.ok());
  std::string spans_text = StringFromBytes(spans.value());
  EXPECT_NE(spans_text.find("span.proctest.op.ns count=1"), std::string::npos) << spans_text;

  auto latency = proc.Read("/latency", 0, 1 << 20);
  ASSERT_TRUE(latency.ok());
  std::string latency_text = StringFromBytes(latency.value());
  EXPECT_NE(latency_text.find("proctest.op count=1"), std::string::npos) << latency_text;
  EXPECT_NE(latency_text.find("p99="), std::string::npos) << latency_text;
  obs::MetricsRegistry::Get().ResetAllForTesting();
}

TEST_F(ProcFsTest, LatencyFileMergesPlanesPerOperation) {
  // Two closes of the same op on different planes must collapse to ONE
  // /latency line whose count covers both, while /spans keeps the raw
  // per-plane series distinct.
  obs::MetricsRegistry::Get().ResetAllForTesting();
  {
    SKERN_SPAN("proctest", "mixed");
    skern_span_scope_.set_plane(obs::SpanPlane::kFast);
  }
  {
    SKERN_SPAN("proctest", "mixed");
    skern_span_scope_.set_plane(obs::SpanPlane::kSlow);
  }
  ProcFs proc;
  std::string spans_text = StringFromBytes(proc.Read("/spans", 0, 1 << 20).value());
  EXPECT_NE(spans_text.find("span.proctest.mixed.fast.ns count=1"), std::string::npos)
      << spans_text;
  EXPECT_NE(spans_text.find("span.proctest.mixed.slow.ns count=1"), std::string::npos)
      << spans_text;
  std::string latency_text = StringFromBytes(proc.Read("/latency", 0, 1 << 20).value());
  EXPECT_NE(latency_text.find("proctest.mixed count=2"), std::string::npos) << latency_text;
  obs::MetricsRegistry::Get().ResetAllForTesting();
}

TEST_F(ProcFsTest, LatencyFileNonEmptyAfterIoWorkload) {
  // Acceptance check from the issue: after the io_coherence-style handle
  // workload, /latency reports real span populations for the instrumented
  // layers (safefs handle plane feeding the block append path).
  obs::MetricsRegistry::Get().ResetAllForTesting();
  RamDisk disk(256, 13);
  auto fs = SafeFs::Format(disk, 64, 16).value();
  ASSERT_TRUE(fs->Create("/hot").ok());
  auto handle = fs->OpenByPath("/hot");
  ASSERT_TRUE(handle.ok());
  Bytes data(8 * kBlockSize, 0xcd);
  ASSERT_TRUE(fs->WriteAt(*handle, 0, ByteView(data)).ok());
  ASSERT_TRUE(fs->FsyncHandle(*handle).ok());
  for (uint64_t offset = 0; offset < data.size(); offset += kBlockSize) {
    ASSERT_TRUE(fs->ReadAt(*handle, offset, kBlockSize).ok());
  }
  fs->CloseHandle(*handle);

  ProcFs proc;
  std::string text = StringFromBytes(proc.Read("/latency", 0, 1 << 20).value());
  for (const char* op : {"safefs.read_at ", "safefs.write_at ", "safefs.open_handle ",
                         "safefs.fsync_handle "}) {
    EXPECT_NE(text.find(op), std::string::npos) << "missing " << op << " in:\n" << text;
  }
  obs::MetricsRegistry::Get().ResetAllForTesting();
}

TEST_F(ProcFsTest, ContentionFileShowsTopContendedLocks) {
  // Fabricate contention directly through the registry hook: procfs must
  // surface the class name with count, totals, and wait quantiles, sorted
  // by total wait.
  LockClassId hot = LockRegistry::Get().RegisterClass("proctest.hot_lock");
  LockClassId cold = LockRegistry::Get().RegisterClass("proctest.cold_lock");
  LockRegistry::Get().OnContended(hot, 10000);
  LockRegistry::Get().OnContended(hot, 20000);
  LockRegistry::Get().OnContended(cold, 500);

  ProcFs proc;
  auto content = proc.Read("/contention", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("classes 2"), std::string::npos) << text;
  size_t hot_at = text.find("proctest.hot_lock count=2 total_ns=30000 max_ns=20000");
  size_t cold_at = text.find("proctest.cold_lock count=1 total_ns=500 max_ns=500");
  EXPECT_NE(hot_at, std::string::npos) << text;
  EXPECT_NE(cold_at, std::string::npos) << text;
  EXPECT_LT(hot_at, cold_at) << "sorted by total wait desc:\n" << text;
}

TEST_F(ProcFsTest, LogFileShowsLevelAndCounts) {
  ProcFs proc;
  uint64_t warns_before = LogCount(LogLevel::kWarn);
  SKERN_WARN() << "procfs log test";
  auto content = proc.Read("/log", 0, 4096);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("level "), std::string::npos) << text;
  EXPECT_NE(text.find("warn " + std::to_string(warns_before + 1)), std::string::npos) << text;
}

TEST_F(ProcFsTest, SlabinfoFileShowsNamedCachesAndCounters) {
  // Touch a named cache so the table has a hot row to show.
  auto bh = std::unique_ptr<BufferHead>(new BufferHead(7, 0));
  bh.reset();

  ProcFs proc;
  auto content = proc.Read("/slabinfo", 0, 1 << 20);
  ASSERT_TRUE(content.ok());
  std::string text = StringFromBytes(content.value());
  EXPECT_NE(text.find("# name"), std::string::npos) << text;
  EXPECT_NE(text.find("block.bufferhead"), std::string::npos) << text;
  // The payload Bytes rides the power-of-two size classes via the bridge.
  EXPECT_NE(text.find("size.4096"), std::string::npos) << text;

  // The same render published the aggregate counters into the obs registry.
  auto metrics = proc.Read("/metrics", 0, 1 << 20);
  ASSERT_TRUE(metrics.ok());
  std::string mtext = StringFromBytes(metrics.value());
  for (const char* name : {"mem.slab.alloc ", "mem.slab.free ", "mem.slab.magazine_hit ",
                           "mem.slab.depot_refill ", "mem.slab.depot_drain ",
                           "mem.slab.slab_grow "}) {
    EXPECT_NE(mtext.find(name), std::string::npos) << "missing " << name << " in:\n" << mtext;
  }
  // The named-cache traffic above makes the hot counters non-zero.
  EXPECT_EQ(mtext.find("mem.slab.alloc 0\n"), std::string::npos) << mtext;
  EXPECT_EQ(mtext.find("mem.slab.slab_grow 0\n"), std::string::npos) << mtext;
}

TEST_F(ProcFsTest, CustomEntryGeneratorRunsPerRead) {
  ProcFs proc;
  int calls = 0;
  proc.AddEntry("counter", [&calls] { return std::to_string(++calls); });
  EXPECT_EQ(StringFromBytes(proc.Read("/counter", 0, 16).value()), "1");
  EXPECT_EQ(StringFromBytes(proc.Read("/counter", 0, 16).value()), "2");
}

}  // namespace
}  // namespace skern
