// Tests for the refinement checker: agreement, mismatch reporting, and the
// three modes.
#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/spec/refinement.h"

namespace skern {
namespace {

class RefinementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RefinementStats::Get().ResetForTesting();
    SetRefinementMode(RefinementMode::kEnforcing);
  }
  void TearDown() override { SetRefinementMode(RefinementMode::kEnforcing); }
};

TEST_F(RefinementTest, AgreeingStatusesPass) {
  EXPECT_TRUE(CheckRefinement("op", Status::Ok(), Status::Ok()));
  EXPECT_TRUE(
      CheckRefinement("op", Status::Error(Errno::kENOENT), Status::Error(Errno::kENOENT)));
  EXPECT_EQ(RefinementStats::Get().checks(), 2u);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

TEST_F(RefinementTest, MismatchPanicsWhenEnforcing) {
  ScopedPanicAsException guard;
  EXPECT_THROW(CheckRefinement("unlink(/f)", Status::Ok(), Status::Error(Errno::kEIO)),
               PanicException);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 1u);
}

TEST_F(RefinementTest, RecordingModeContinues) {
  ScopedRefinementMode mode(RefinementMode::kRecording);
  EXPECT_FALSE(CheckRefinement("op", Status::Ok(), Status::Error(Errno::kEIO)));
  EXPECT_FALSE(
      CheckRefinement("op2", Status::Error(Errno::kENOENT), Status::Error(Errno::kEEXIST)));
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 2u);
  auto mismatches = RefinementStats::Get().Mismatches();
  EXPECT_EQ(mismatches[0].operation, "op");
}

TEST_F(RefinementTest, DisabledModeSkips) {
  ScopedRefinementMode mode(RefinementMode::kDisabled);
  EXPECT_TRUE(CheckRefinement("op", Status::Ok(), Status::Error(Errno::kEIO)));
  EXPECT_EQ(RefinementStats::Get().checks(), 0u);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

TEST_F(RefinementTest, ResultValueComparison) {
  ScopedRefinementMode mode(RefinementMode::kRecording);
  Result<int> spec(42);
  Result<int> impl_ok(42);
  Result<int> impl_wrong(41);
  Result<int> impl_err(Errno::kEIO);
  EXPECT_TRUE(CheckRefinement("r1", spec, impl_ok));
  EXPECT_FALSE(CheckRefinement("r2", spec, impl_wrong));
  EXPECT_FALSE(CheckRefinement("r3", spec, impl_err));
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 2u);
}

TEST_F(RefinementTest, ResultErrorComparison) {
  ScopedRefinementMode mode(RefinementMode::kRecording);
  Result<int> spec(Errno::kENOENT);
  Result<int> impl_same(Errno::kENOENT);
  Result<int> impl_diff(Errno::kEEXIST);
  Result<int> impl_ok(1);
  EXPECT_TRUE(CheckRefinement("e1", spec, impl_same));
  EXPECT_FALSE(CheckRefinement("e2", spec, impl_diff));
  EXPECT_FALSE(CheckRefinement("e3", spec, impl_ok));
}

TEST_F(RefinementTest, MismatchRecordsBothSides) {
  ScopedRefinementMode mode(RefinementMode::kRecording);
  CheckRefinement("write(/f)", Status::Error(Errno::kENOSPC), Status::Ok());
  auto m = RefinementStats::Get().Mismatches().front();
  EXPECT_EQ(m.operation, "write(/f)");
  EXPECT_NE(m.expected.find("ENOSPC"), std::string::npos);
  EXPECT_NE(m.actual.find("OK"), std::string::npos);
}

}  // namespace
}  // namespace skern
