// Tests for safefs: operation semantics, persistence across remount,
// resource errors, and the crash-recovery contract.
#include <gtest/gtest.h>

#include <memory>

#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 256;
constexpr uint64_t kInodes = 64;
constexpr uint64_t kJournalBlocks = 32;

class SafeFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    disk_ = std::make_unique<RamDisk>(kDiskBlocks, 42);
    auto fs = SafeFs::Format(*disk_, kInodes, kJournalBlocks);
    ASSERT_TRUE(fs.ok());
    fs_ = fs.value();
  }

  std::unique_ptr<RamDisk> disk_;
  std::shared_ptr<SafeFs> fs_;
};

TEST_F(SafeFsTest, FreshFsHasEmptyRoot) {
  auto names = fs_->Readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty());
  auto attr = fs_->Stat("/");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(attr->is_dir);
}

TEST_F(SafeFsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(fs_->Create("/hello").ok());
  ASSERT_TRUE(fs_->Write("/hello", 0, BytesFromString("world")).ok());
  auto data = fs_->Read("/hello", 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringFromBytes(data.value()), "world");
}

TEST_F(SafeFsTest, ErrorSemantics) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->Create("/f").code(), Errno::kEEXIST);
  EXPECT_EQ(fs_->Create("/nope/f").code(), Errno::kENOENT);
  EXPECT_EQ(fs_->Create("/f/x").code(), Errno::kENOTDIR);
  EXPECT_EQ(fs_->Unlink("/d").code(), Errno::kEISDIR);
  EXPECT_EQ(fs_->Rmdir("/f").code(), Errno::kENOTDIR);
  EXPECT_EQ(fs_->Read("/d", 0, 1).error(), Errno::kEISDIR);
  EXPECT_EQ(fs_->Write("/d", 0, BytesFromString("x")).code(), Errno::kEISDIR);
  EXPECT_EQ(fs_->Stat("/missing").error(), Errno::kENOENT);
  EXPECT_EQ(fs_->Readdir("/f").error(), Errno::kENOTDIR);
}

TEST_F(SafeFsTest, NestedDirectories) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Create("/a/b/c").ok());
  auto names = fs_->Readdir("/a/b");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"c"});
  EXPECT_EQ(fs_->Rmdir("/a").code(), Errno::kENOTEMPTY);
}

TEST_F(SafeFsTest, SparseWriteAndHoles) {
  ASSERT_TRUE(fs_->Create("/sparse").ok());
  // Write past several block boundaries, leaving holes.
  ASSERT_TRUE(fs_->Write("/sparse", 3 * kBlockSize + 100, BytesFromString("tail")).ok());
  auto attr = fs_->Stat("/sparse");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 3 * kBlockSize + 104);
  // Holes read as zeroes.
  auto hole = fs_->Read("/sparse", kBlockSize, 16);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(hole.value(), Bytes(16, 0));
  auto tail = fs_->Read("/sparse", 3 * kBlockSize + 100, 10);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(StringFromBytes(tail.value()), "tail");
}

TEST_F(SafeFsTest, LargeFileThroughIndirectBlocks) {
  ASSERT_TRUE(fs_->Create("/big").ok());
  // Past the direct area (10 blocks) into the indirect range.
  uint64_t offset = (kDirectBlocks + 5) * kBlockSize;
  ASSERT_TRUE(fs_->Write("/big", offset, BytesFromString("indirect!")).ok());
  auto back = fs_->Read("/big", offset, 9);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(StringFromBytes(back.value()), "indirect!");
}

TEST_F(SafeFsTest, FileTooBigRejected) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  uint64_t max = kMaxFileBlocks * kBlockSize;
  EXPECT_EQ(fs_->Write("/f", max, BytesFromString("x")).code(), Errno::kEFBIG);
  EXPECT_EQ(fs_->Truncate("/f", max + 1).code(), Errno::kEFBIG);
  EXPECT_TRUE(fs_->Truncate("/f", max).ok());
}

TEST_F(SafeFsTest, TruncateShrinkGrowZeroes) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Bytes(100, 0xaa)).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 10).ok());
  ASSERT_TRUE(fs_->Truncate("/f", 100).ok());
  auto data = fs_->Read("/f", 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 100u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*data)[i], 0xaa) << i;
  }
  for (size_t i = 10; i < 100; ++i) {
    ASSERT_EQ((*data)[i], 0) << i;
  }
}

TEST_F(SafeFsTest, TruncateReleasesSpace) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  uint64_t free_before = fs_->FreeDataBlocks();
  ASSERT_TRUE(fs_->Write("/f", 0, Bytes(8 * kBlockSize, 1)).ok());
  EXPECT_LT(fs_->FreeDataBlocks(), free_before);
  ASSERT_TRUE(fs_->Truncate("/f", 0).ok());
  EXPECT_EQ(fs_->FreeDataBlocks(), free_before);
}

TEST_F(SafeFsTest, UnlinkReleasesEverything) {
  // Measure after Create so the root directory's own block (which persists
  // by design) is not counted against the unlink.
  ASSERT_TRUE(fs_->Create("/f").ok());
  uint64_t free_before = fs_->FreeDataBlocks();
  ASSERT_TRUE(fs_->Write("/f", 0, Bytes(20 * kBlockSize, 1)).ok());  // uses indirect too
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  EXPECT_EQ(fs_->FreeDataBlocks(), free_before);
  EXPECT_EQ(fs_->Stat("/f").error(), Errno::kENOENT);
}

TEST_F(SafeFsTest, RenameFileAndDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Create("/src/f").ok());
  ASSERT_TRUE(fs_->Write("/src/f", 0, BytesFromString("data")).ok());
  ASSERT_TRUE(fs_->Rename("/src", "/dst").ok());
  EXPECT_EQ(fs_->Stat("/src").error(), Errno::kENOENT);
  auto data = fs_->Read("/dst/f", 0, 4);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringFromBytes(data.value()), "data");
  // File rename with replacement.
  ASSERT_TRUE(fs_->Create("/other").ok());
  ASSERT_TRUE(fs_->Rename("/dst/f", "/other").ok());
  EXPECT_EQ(StringFromBytes(fs_->Read("/other", 0, 4).value()), "data");
}

TEST_F(SafeFsTest, RenameRejectsCycles) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  EXPECT_EQ(fs_->Rename("/a", "/a/b/c").code(), Errno::kEINVAL);
}

TEST_F(SafeFsTest, OutOfSpaceIsAtomic) {
  RamDisk tiny(32, 7);  // tiny data area
  auto fs = SafeFs::Format(tiny, 8, 8);
  ASSERT_TRUE(fs.ok());
  auto& f = *fs.value();
  ASSERT_TRUE(f.Create("/f").ok());
  uint64_t free_blocks = f.FreeDataBlocks();
  // Ask for more than fits.
  Status s = f.Write("/f", 0, Bytes((free_blocks + 2) * kBlockSize, 1));
  EXPECT_EQ(s.code(), Errno::kENOSPC);
  // Nothing changed: file still empty, space intact.
  EXPECT_EQ(f.Stat("/f")->size, 0u);
  EXPECT_EQ(f.FreeDataBlocks(), free_blocks);
}

TEST_F(SafeFsTest, InodeExhaustion) {
  RamDisk disk2(128, 9);
  auto fs = SafeFs::Format(disk2, 4, 8);
  ASSERT_TRUE(fs.ok());
  auto& f = *fs.value();
  ASSERT_TRUE(f.Create("/a").ok());
  ASSERT_TRUE(f.Create("/b").ok());
  ASSERT_TRUE(f.Create("/c").ok());
  EXPECT_EQ(f.Create("/d").code(), Errno::kENOSPC);  // root uses ino 1
  ASSERT_TRUE(f.Unlink("/a").ok());
  EXPECT_TRUE(f.Create("/d").ok());  // inode reuse
}

TEST_F(SafeFsTest, PersistsAcrossRemount) {
  ASSERT_TRUE(fs_->Mkdir("/docs").ok());
  ASSERT_TRUE(fs_->Create("/docs/a").ok());
  ASSERT_TRUE(fs_->Write("/docs/a", 0, BytesFromString("persistent")).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_.reset();

  auto remounted = SafeFs::Mount(*disk_);
  ASSERT_TRUE(remounted.ok());
  auto data = remounted.value()->Read("/docs/a", 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringFromBytes(data.value()), "persistent");
}

TEST_F(SafeFsTest, OwnershipAndModePersistAcrossRemount) {
  // chmod/chown land in the on-disk inode, not just in memory: the exact
  // bits and owners come back after an unmount/Mount cycle.
  ASSERT_TRUE(fs_->Mkdir("/srv").ok());
  ASSERT_TRUE(fs_->Create("/srv/app.conf").ok());
  ASSERT_TRUE(fs_->Chmod("/srv/app.conf", 0640).ok());
  ASSERT_TRUE(fs_->Chown("/srv/app.conf", 1000, 2000).ok());
  ASSERT_TRUE(fs_->Chmod("/srv", 0750).ok());
  // Untouched files keep the format-time defaults.
  ASSERT_TRUE(fs_->Create("/srv/plain").ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_.reset();

  auto remounted = SafeFs::Mount(*disk_);
  ASSERT_TRUE(remounted.ok());
  auto& f = *remounted.value();
  auto conf = f.Stat("/srv/app.conf");
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(conf->mode, 0640u);
  EXPECT_EQ(conf->uid, 1000u);
  EXPECT_EQ(conf->gid, 2000u);
  auto dir = f.Stat("/srv");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->mode, 0750u);
  auto plain = f.Stat("/srv/plain");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->mode, 0644u) << "default file perm";
  EXPECT_EQ(plain->uid, 0u);
  auto root = f.Stat("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->mode, 0755u) << "mkfs root default";
}

TEST_F(SafeFsTest, CrashBeforeSyncLosesNothingSynced) {
  ASSERT_TRUE(fs_->Create("/durable").ok());
  ASSERT_TRUE(fs_->Write("/durable", 0, BytesFromString("safe")).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  // Unsynced changes.
  ASSERT_TRUE(fs_->Create("/volatile").ok());
  ASSERT_TRUE(fs_->Write("/durable", 0, BytesFromString("gone")).ok());
  fs_.reset();
  disk_->CrashNow(CrashPersistence::kLoseAll);

  auto remounted = SafeFs::Mount(*disk_);
  ASSERT_TRUE(remounted.ok());
  auto& f = *remounted.value();
  EXPECT_EQ(StringFromBytes(f.Read("/durable", 0, 100).value()), "safe");
  EXPECT_EQ(f.Stat("/volatile").error(), Errno::kENOENT);
}

TEST_F(SafeFsTest, FsyncIsDurable) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, BytesFromString("fsynced")).ok());
  ASSERT_TRUE(fs_->Fsync("/f").ok());
  fs_.reset();
  disk_->CrashNow(CrashPersistence::kLoseAll);
  auto remounted = SafeFs::Mount(*disk_);
  ASSERT_TRUE(remounted.ok());
  EXPECT_EQ(StringFromBytes(remounted.value()->Read("/f", 0, 100).value()), "fsynced");
}

TEST_F(SafeFsTest, JournalStatsAdvance) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_GE(fs_->journal_stats().commits, 1u);
  EXPECT_GE(fs_->stats().syncs, 1u);
}

TEST_F(SafeFsTest, EmptySyncIsFree) {
  ASSERT_TRUE(fs_->Sync().ok());
  uint64_t commits = fs_->journal_stats().commits;
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_EQ(fs_->journal_stats().commits, commits);
}

TEST_F(SafeFsTest, NameTooLongRejected) {
  std::string long_name(60, 'x');
  EXPECT_EQ(fs_->Create("/" + long_name).code(), Errno::kENAMETOOLONG);
}

TEST_F(SafeFsTest, ManyFilesInOneDirectory) {
  // Forces the directory to grow past one block (64 entries per block);
  // needs its own fs with enough inodes.
  RamDisk disk(512, 17);
  auto made = SafeFs::Format(disk, 256, 16);
  ASSERT_TRUE(made.ok());
  auto& f = *made.value();
  ASSERT_TRUE(f.Mkdir("/many").ok());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(f.Create("/many/f" + std::to_string(i)).ok()) << i;
  }
  auto names = f.Readdir("/many");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 150u);
  // Remove some and reuse slots.
  for (int i = 0; i < 150; i += 2) {
    ASSERT_TRUE(f.Unlink("/many/f" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(f.Readdir("/many")->size(), 75u);
  ASSERT_TRUE(f.Create("/many/fresh").ok());
  EXPECT_EQ(f.Readdir("/many")->size(), 76u);
}

// Regression guard for the read EOF clamp: reads that straddle EOF return
// exactly the readable span, reads at or past EOF return empty, and a huge
// requested length never inflates the result — on both the path plane and
// the handle plane, which share the post-resolution read core.
TEST_F(SafeFsTest, ReadClampsAtEofOnBothPlanes) {
  ASSERT_TRUE(fs_->Create("/clamp").ok());
  Bytes data(kBlockSize + 100, 0x5a);  // EOF mid-way into the second block
  ASSERT_TRUE(fs_->Write("/clamp", 0, ByteView(data)).ok());
  auto handle = fs_->OpenByPath("/clamp");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs_->Sync().ok());  // let the handle plane go fast too

  struct Case {
    uint64_t offset;
    uint64_t length;
    uint64_t expect;
  };
  const Case cases[] = {
      {0, data.size(), data.size()},            // exact
      {0, data.size() + 1, data.size()},        // one past
      {0, 1u << 30, data.size()},               // huge length
      {kBlockSize, kBlockSize, 100},            // straddles EOF
      {data.size() - 1, 4096, 1},               // last byte
      {data.size(), 1, 0},                      // at EOF
      {data.size() + 4096, 4096, 0},            // far past EOF
      {1u << 30, 1u << 30, 0},                  // absurdly past EOF
  };
  for (const Case& c : cases) {
    auto via_path = fs_->Read("/clamp", c.offset, c.length);
    ASSERT_TRUE(via_path.ok()) << c.offset << "+" << c.length;
    EXPECT_EQ(via_path->size(), c.expect) << c.offset << "+" << c.length;
    auto via_handle = fs_->ReadAt(*handle, c.offset, c.length);
    ASSERT_TRUE(via_handle.ok()) << c.offset << "+" << c.length;
    EXPECT_EQ(*via_handle, *via_path) << c.offset << "+" << c.length;
  }
  fs_->CloseHandle(*handle);
}

// The clamp must track truncation immediately: shrinking moves EOF for the
// very next read, growing exposes zero-filled bytes, on both planes.
TEST_F(SafeFsTest, ReadClampFollowsTruncate) {
  ASSERT_TRUE(fs_->Create("/moving").ok());
  ASSERT_TRUE(fs_->Write("/moving", 0, Bytes(3000, 0x77)).ok());
  auto handle = fs_->OpenByPath("/moving");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_EQ(fs_->ReadAt(*handle, 0, 1 << 20)->size(), 3000u);

  ASSERT_TRUE(fs_->Truncate("/moving", 1000).ok());
  EXPECT_EQ(fs_->Read("/moving", 0, 1 << 20)->size(), 1000u);
  EXPECT_EQ(fs_->ReadAt(*handle, 0, 1 << 20)->size(), 1000u);
  EXPECT_TRUE(fs_->ReadAt(*handle, 1000, 16)->empty());

  ASSERT_TRUE(fs_->Truncate("/moving", 5000).ok());
  auto grown = fs_->ReadAt(*handle, 0, 1 << 20);
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ(grown->size(), 5000u);
  EXPECT_EQ((*grown)[999], 0x77);
  EXPECT_EQ((*grown)[1000], 0);  // the re-exposed tail reads zero
  EXPECT_EQ((*grown)[4999], 0);
  EXPECT_EQ(*grown, *fs_->Read("/moving", 0, 1 << 20));
  fs_->CloseHandle(*handle);
}

// --- the write-back plane ---

TEST_F(SafeFsTest, BufferedWritesAreCoherentThroughEveryReadPath) {
  ASSERT_TRUE(fs_->Create("/wb").ok());
  auto handle = fs_->OpenByPath("/wb");
  ASSERT_TRUE(handle.ok());

  // First write takes the slow path (cold inode) and warms the block map;
  // later writes buffer into write-back without touching the global lock.
  Bytes first(kBlockSize, 0x11);
  ASSERT_TRUE(fs_->WriteAt(*handle, 0, ByteView(first)).ok());
  Bytes second(1000, 0x22);
  ASSERT_TRUE(fs_->WriteAt(*handle, 100, ByteView(second)).ok());
  Bytes third(500, 0x33);
  ASSERT_TRUE(fs_->WriteAt(*handle, kBlockSize + 50, ByteView(third)).ok());
  EXPECT_GT(fs_->io_stats().fast_writes, 0u);

  Bytes expect(kBlockSize + 50 + 500, 0);
  std::fill(expect.begin(), expect.begin() + kBlockSize, 0x11);
  std::fill(expect.begin() + 100, expect.begin() + 1100, 0x22);
  std::fill(expect.begin() + kBlockSize + 50, expect.end(), 0x33);

  // Fast reads patch the dirty overlay over cached blocks; path reads drain
  // first. Both must see the same bytes.
  auto via_handle = fs_->ReadAt(*handle, 0, 1 << 20);
  ASSERT_TRUE(via_handle.ok());
  EXPECT_EQ(*via_handle, expect);
  auto via_path = fs_->Read("/wb", 0, 1 << 20);
  ASSERT_TRUE(via_path.ok());
  EXPECT_EQ(*via_path, expect);
  EXPECT_GT(fs_->io_stats().wb_drains, 0u);
  fs_->CloseHandle(*handle);
}

TEST_F(SafeFsTest, PathStatAndHandleStatSeeBufferedGrowth) {
  ASSERT_TRUE(fs_->Create("/grow").ok());
  auto handle = fs_->OpenByPath("/grow");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs_->WriteAt(*handle, 0, Bytes(64, 1)).ok());       // warms
  ASSERT_TRUE(fs_->WriteAt(*handle, 7000, Bytes(100, 2)).ok());   // buffers
  ASSERT_EQ(fs_->io_stats().fast_writes, 1u);

  // StatHandle answers from the cached size without draining; path Stat
  // drains first. Both must report the buffered growth.
  auto via_handle = fs_->StatHandle(*handle);
  ASSERT_TRUE(via_handle.ok());
  EXPECT_EQ(via_handle->size, 7100u);
  uint64_t drains_before = fs_->io_stats().wb_drains;
  auto via_path = fs_->Stat("/grow");
  ASSERT_TRUE(via_path.ok());
  EXPECT_EQ(via_path->size, 7100u);
  EXPECT_GT(fs_->io_stats().wb_drains, drains_before);
  fs_->CloseHandle(*handle);
}

// ENOSPC parity: delayed allocation must not change *when* a write fails or
// what the file looks like afterwards. The same overflowing script runs on a
// buffered stack and a synchronous stack; per-op codes and final content
// must match exactly (reservations make buffered acceptance = sync success).
TEST_F(SafeFsTest, DelayedAllocationKeepsEnospcParityWithSyncPlane) {
  auto run = [](bool write_back, std::vector<Errno>& codes) {
    RamDisk tiny(48, 9);
    auto fs = SafeFs::Format(tiny, 16, 16).value();
    fs->SetWriteBack(write_back);
    EXPECT_TRUE(fs->Create("/big").ok());
    auto handle = fs->OpenByPath("/big");
    EXPECT_TRUE(handle.ok());
    for (uint64_t i = 0; i < 40; ++i) {
      Bytes chunk(kBlockSize, static_cast<uint8_t>(i + 1));
      codes.push_back(fs->WriteAt(*handle, i * kBlockSize, ByteView(chunk)).code());
    }
    auto content = fs->Read("/big", 0, 1 << 22);
    EXPECT_TRUE(content.ok());
    fs->CloseHandle(*handle);
    return *content;
  };

  std::vector<Errno> wb_codes;
  std::vector<Errno> sync_codes;
  Bytes wb_content = run(true, wb_codes);
  Bytes sync_content = run(false, sync_codes);
  ASSERT_EQ(wb_codes.size(), sync_codes.size());
  for (size_t i = 0; i < wb_codes.size(); ++i) {
    EXPECT_EQ(wb_codes[i], sync_codes[i]) << "write " << i;
  }
  EXPECT_EQ(wb_content, sync_content);
  // The script must actually have hit the wall.
  EXPECT_NE(std::find(wb_codes.begin(), wb_codes.end(), Errno::kENOSPC),
            wb_codes.end());
}

TEST_F(SafeFsTest, DisablingWriteBackRestoresSynchronousWrites) {
  fs_->SetWriteBack(false);
  ASSERT_TRUE(fs_->Create("/sync").ok());
  auto handle = fs_->OpenByPath("/sync");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs_->WriteAt(*handle, 0, Bytes(100, 1)).ok());
  ASSERT_TRUE(fs_->WriteAt(*handle, 100, Bytes(100, 2)).ok());
  EXPECT_EQ(fs_->io_stats().fast_writes, 0u);
  EXPECT_EQ(fs_->io_stats().slow_writes, 2u);
  fs_->CloseHandle(*handle);
}

}  // namespace
}  // namespace skern
