// Tests for the slab/magazine allocator: size-class rounding, magazine and
// depot traffic, cross-thread alloc-here-free-there, the debug redzone /
// poison / quarantine machinery, the ablation switch, and the leak-detector
// census that reports leaked cache objects by name.
#include "src/mem/slab.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/block/buffer_head.h"
#include "src/ownership/leak_detector.h"

namespace skern {
namespace mem {
namespace {

// The debug caches report violations through a plain function pointer, so
// the capture target has to be static state.
std::string g_violation_cache;   // NOLINT
std::string g_violation_kind;    // NOLINT
void* g_violation_ptr = nullptr; // NOLINT
int g_violation_count = 0;       // NOLINT

void RecordViolation(const char* cache, const char* kind, void* ptr) {
  g_violation_cache = cache;
  g_violation_kind = kind;
  g_violation_ptr = ptr;
  ++g_violation_count;
}

class SlabTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetSlabAllocation(true);
    g_violation_cache.clear();
    g_violation_kind.clear();
    g_violation_ptr = nullptr;
    g_violation_count = 0;
  }
};

TEST_F(SlabTest, SizeClassRounding) {
  EXPECT_EQ(SizeClassFor(1), kMinClassSize);
  EXPECT_EQ(SizeClassFor(16), 16u);
  EXPECT_EQ(SizeClassFor(17), 32u);
  EXPECT_EQ(SizeClassFor(100), 128u);
  EXPECT_EQ(SizeClassFor(4096), 4096u);
  EXPECT_EQ(SizeClassFor(4097), 8192u);
  EXPECT_EQ(SizeClassFor(kMaxClassSize), kMaxClassSize);
  // Above the largest class the request belongs to the global heap.
  EXPECT_EQ(SizeClassFor(kMaxClassSize + 1), 0u);
}

TEST_F(SlabTest, SizedAllocRoutesThroughClassesAndHeap) {
  // In-class: lands in the "size.128" cache and frees back to it.
  void* p = SizedAlloc(100);
  ASSERT_NE(p, nullptr);
  SizedFree(p, 100);

  // Above the classes: plain heap round trip, no cache involved.
  void* big = SizedAlloc(1 << 20);
  ASSERT_NE(big, nullptr);
  SizedFree(big, 1 << 20);

  DrainThisThreadCache();
  bool found = false;
  for (const CacheStats& s : SnapshotAllCaches()) {
    if (s.name == "size.128") {
      found = true;
      EXPECT_GT(s.allocs, 0u);
      EXPECT_EQ(s.allocs, s.frees + s.objs_in_use);
    }
  }
  EXPECT_TRUE(found) << "size.128 cache never materialized";
}

TEST_F(SlabTest, MagazineSwapAndDepotHandoff) {
  SlabCache& cache = NamedCache("test.mag", 64);
  const CacheStats before = cache.Stats();

  // Hold enough objects to overflow loaded+prev magazines several times
  // over, forcing depot refills on the way down and depot drains on the way
  // back up.
  std::vector<void*> held;
  for (int i = 0; i < 512; ++i) {
    held.push_back(cache.Alloc());
  }
  for (void* p : held) {
    cache.Free(p);
  }
  held.clear();

  // A second pass over the same working set should be served almost
  // entirely from magazines recirculated through the depot.
  for (int i = 0; i < 512; ++i) {
    held.push_back(cache.Alloc());
  }
  for (void* p : held) {
    cache.Free(p);
  }

  DrainThisThreadCache();
  const CacheStats after = cache.Stats();
  EXPECT_EQ(after.allocs - before.allocs, 1024u);
  EXPECT_EQ(after.frees - before.frees, 1024u);
  EXPECT_EQ(after.objs_in_use, 0u);
  EXPECT_GT(after.magazine_hits, before.magazine_hits);
  EXPECT_GT(after.depot_refills, before.depot_refills);
  EXPECT_GT(after.depot_drains, before.depot_drains);
  EXPECT_GT(after.slabs, 0u);
}

TEST_F(SlabTest, CrossThreadAllocHereFreeThere) {
  SlabCache& cache = NamedCache("test.xthread", 96);
  constexpr int kObjects = 2048;

  // Producer allocates, consumer frees: every object migrates threads. The
  // depot hand-off provides the happens-before edge TSan checks.
  std::vector<void*> objs(kObjects);
  std::thread producer([&] {
    for (int i = 0; i < kObjects; ++i) {
      objs[i] = cache.Alloc();
      // Touch the object so a racing reuse would be visible.
      *static_cast<uint64_t*>(objs[i]) = static_cast<uint64_t>(i);
    }
    DrainThisThreadCache();
  });
  producer.join();

  std::thread consumer([&] {
    for (int i = 0; i < kObjects; ++i) {
      cache.Free(objs[i]);
    }
    DrainThisThreadCache();
  });
  consumer.join();

  DrainThisThreadCache();
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.objs_in_use, 0u);
  EXPECT_GE(stats.allocs, static_cast<uint64_t>(kObjects));
  EXPECT_EQ(stats.allocs, stats.frees);
}

TEST_F(SlabTest, AblationSwitchIsSafeWithLiveObjects) {
  SlabCache& cache = NamedCache("test.ablate", 48);
  // Allocate on the slab path, flip the switch, then free: RouteFree routes
  // by pointer, so the object must return to its slab regardless.
  void* slab_obj = cache.Alloc();
  SetSlabAllocation(false);
  RouteFree(slab_obj, 48);

  // Allocate while disabled (heap), re-enable, then free: RouteFree sees a
  // non-slab address and sends it to the global heap.
  void* heap_obj = cache.Alloc();
  SetSlabAllocation(true);
  RouteFree(heap_obj, 48);

  DrainThisThreadCache();
  EXPECT_EQ(cache.Stats().objs_in_use, 0u);
}

TEST_F(SlabTest, DebugRedzoneDetectsOverrun) {
  SlabCache& cache = NamedCache("test.redzone", 40, {.debug = true});
  ASSERT_TRUE(cache.debug());
  ViolationHandler prev = SetSlabViolationHandlerForTesting(&RecordViolation);

  // Clean round trip: no violation.
  void* ok = cache.Alloc();
  cache.Free(ok);
  EXPECT_EQ(g_violation_count, 0);

  // One byte past the object tramples the redzone word; the free detects it.
  void* p = cache.Alloc();
  static_cast<uint8_t*>(p)[cache.obj_size()] = 0x41;
  cache.Free(p);
  EXPECT_EQ(g_violation_count, 1);
  EXPECT_EQ(g_violation_kind, "redzone");
  EXPECT_EQ(g_violation_cache, "test.redzone");
  EXPECT_EQ(g_violation_ptr, p);
  EXPECT_GE(cache.Stats().redzone_violations, 1u);

  SetSlabViolationHandlerForTesting(prev);
}

TEST_F(SlabTest, DebugPoisonDetectsUseAfterFree) {
  SlabCache& cache =
      NamedCache("test.poison", 40, {.debug = true, .quarantine_objects = 2});
  ViolationHandler prev = SetSlabViolationHandlerForTesting(&RecordViolation);

  void* p = cache.Alloc();
  cache.Free(p);
  // Use-after-free: the object sits poisoned in quarantine; dirty one byte.
  static_cast<uint8_t*>(p)[8] = 0xAA;

  // Push the quarantine past capacity so `p` is evicted and its poison
  // checked.
  void* a = cache.Alloc();
  void* b = cache.Alloc();
  cache.Free(a);
  cache.Free(b);

  EXPECT_EQ(g_violation_count, 1);
  EXPECT_EQ(g_violation_kind, "poison");
  EXPECT_EQ(g_violation_ptr, p);
  EXPECT_GE(cache.Stats().poison_violations, 1u);

  SetSlabViolationHandlerForTesting(prev);
}

TEST_F(SlabTest, QuarantineRecyclesInFifoOrder) {
  SlabCache& cache =
      NamedCache("test.quarantine", 40, {.debug = true, .quarantine_objects = 4});

  // Five distinct objects. Freeing all five overflows the 4-deep quarantine
  // exactly once, evicting the oldest (p[0]) to the freelist head — so the
  // next allocation must recycle p[0], not any later free.
  std::vector<void*> p;
  for (int i = 0; i < 5; ++i) {
    p.push_back(cache.Alloc());
  }
  for (void* obj : p) {
    cache.Free(obj);
  }
  EXPECT_EQ(cache.Alloc(), p[0]);

  // The next free evicts p[1] (still FIFO), which the following alloc
  // recycles.
  cache.Free(p[0]);
  EXPECT_EQ(cache.Alloc(), p[1]);
  cache.Free(p[1]);
}

TEST_F(SlabTest, LeakedNamedCacheObjectIsReportedByCensus) {
  SlabCache& cache = NamedCache("test.census", 48);
  void* leaked = cache.Alloc();
  DrainThisThreadCache();

  bool found = false;
  for (const std::string& line : LeakDetector::Get().ShutdownCensusReport()) {
    if (line.find("mem.slab cache=test.census live=1 obj_size=48") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "leaked test.census object missing from census";

  // Freeing it clears the report.
  cache.Free(leaked);
  DrainThisThreadCache();
  for (const std::string& line : LeakDetector::Get().ShutdownCensusReport()) {
    EXPECT_EQ(line.find("cache=test.census"), std::string::npos) << line;
  }
}

TEST_F(SlabTest, LeakedHotTypeIsReportedByName) {
  // The real conversion: a leaked BufferHead shows up under its named cache,
  // not as an anonymous heap block.
  auto* bh = new BufferHead(42, 0);  // class operator new -> named cache
  DrainThisThreadCache();

  bool found = false;
  for (const std::string& line : LeakDetector::Get().ShutdownCensusReport()) {
    if (line.find("cache=block.bufferhead") != std::string::npos &&
        line.find("live=") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "leaked BufferHead missing from shutdown census";

  std::unique_ptr<BufferHead> adopt(bh);
  adopt.reset();
  DrainThisThreadCache();
  for (const std::string& line : LeakDetector::Get().ShutdownCensusReport()) {
    EXPECT_EQ(line.find("cache=block.bufferhead"), std::string::npos) << line;
  }
}

TEST_F(SlabTest, SlabinfoTextListsEveryCache) {
  NamedCache("test.infotable", 64).Free(NamedCache("test.infotable", 64).Alloc());
  std::string text = SlabInfoText();
  EXPECT_NE(text.find("# name"), std::string::npos);
  EXPECT_NE(text.find("test.infotable"), std::string::npos);
}

}  // namespace
}  // namespace mem
}  // namespace skern
