// §4.5 "Rate of Change": do the checks keep up when the code evolves?
//
// "Doing this while keeping up with Linux's rate of change requires that
// local changes to code require similarly local changes to proofs."
//
// Experiment: change safefs's block-allocation policy — a real
// implementation change that alters on-disk layout — and run the *unchanged*
// specification against both variants. Because the spec speaks only about
// observable file content (never block placement), refinement passes for
// both: the "proof" needed zero changes for this class of code change.
// Contrast with a change that alters observable behaviour (the semantic
// faults), which the unchanged spec immediately rejects — exactly the
// regression-resistance the paper wants from maintained safety.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 64;

void RunWorkload(SpecFs& spec, uint64_t seed, int ops) {
  Rng rng(seed);
  const std::vector<std::string> pool{"/a", "/b", "/c", "/d", "/d/x", "/d/y"};
  for (int i = 0; i < ops; ++i) {
    const std::string& p = pool[rng.NextBelow(pool.size())];
    const std::string& q = pool[rng.NextBelow(pool.size())];
    switch (rng.NextBelow(9)) {
      case 0:
        (void)spec.Create(p);
        break;
      case 1:
        (void)spec.Mkdir(p);
        break;
      case 2:
        (void)spec.Unlink(p);
        break;
      case 3:
        (void)spec.Write(p, rng.NextBelow(8000), rng.NextBytes(1 + rng.NextBelow(600)));
        break;
      case 4:
        (void)spec.Truncate(p, rng.NextBelow(4000));
        break;
      case 5:
        (void)spec.Rename(p, q);
        break;
      case 6:
        (void)spec.Read(p, rng.NextBelow(4000), 256);
        break;
      case 7:
        (void)spec.Readdir(p);
        break;
      case 8:
        (void)spec.Sync();
        break;
    }
  }
}

class SpecEvolutionTest : public ::testing::TestWithParam<AllocPolicy> {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    RefinementStats::Get().ResetForTesting();
    SetRefinementMode(RefinementMode::kEnforcing);
  }
};

TEST_P(SpecEvolutionTest, UnchangedSpecAcceptsBothAllocationPolicies) {
  RamDisk disk(kDiskBlocks, 11);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  fs->SetAllocPolicy(GetParam());
  SpecFs spec(fs);
  RunWorkload(spec, 99, 600);  // enforcing: any mismatch panics the test
  EXPECT_GT(RefinementStats::Get().checks(), 400u);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, SpecEvolutionTest,
                         ::testing::Values(AllocPolicy::kFirstFit, AllocPolicy::kNextFit));

TEST(SpecEvolutionTest2, PoliciesActuallyDifferOnDisk) {
  // Guard against the experiment being vacuous: the two policies must place
  // blocks differently for the same logical workload.
  auto layout_fingerprint = [](AllocPolicy policy) {
    RamDisk disk(kDiskBlocks, 5);
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    fs->SetAllocPolicy(policy);
    SKERN_CHECK(fs->Create("/a").ok());
    SKERN_CHECK(fs->Write("/a", 0, Bytes(3 * kBlockSize, 1)).ok());
    SKERN_CHECK(fs->Truncate("/a", 0).ok());  // free the blocks
    SKERN_CHECK(fs->Create("/b").ok());
    SKERN_CHECK(fs->Write("/b", 0, Bytes(kBlockSize, 2)).ok());  // re-allocate
    // Checkpoint, not just Sync: the journal checkpoints lazily, so a plain
    // Sync leaves /b's content in the ring rather than at its home block —
    // and the ring position is policy-independent.
    SKERN_CHECK(fs->Checkpoint().ok());
    // Fingerprint: which device blocks hold /b's content byte.
    uint64_t fingerprint = 0;
    for (uint64_t block = 0; block < kDiskBlocks; ++block) {
      Bytes content(kBlockSize, 0);
      SKERN_CHECK(disk.ReadBlock(block, MutableByteView(content)).ok());
      if (content[0] == 2 && content == Bytes(kBlockSize, 2)) {
        fingerprint = fingerprint * 131 + block;
      }
    }
    return fingerprint;
  };
  EXPECT_NE(layout_fingerprint(AllocPolicy::kFirstFit),
            layout_fingerprint(AllocPolicy::kNextFit));
}

TEST(SpecEvolutionTest2, ObservableChangeIsRejectedByUnchangedSpec) {
  // The counterpoint: a code change that leaks into observable behaviour is
  // caught by the same unchanged spec.
  LockRegistry::Get().ResetForTesting();
  RefinementStats::Get().ResetForTesting();
  ScopedRefinementMode mode(RefinementMode::kRecording);
  RamDisk disk(kDiskBlocks, 13);
  auto fs = SafeFs::Format(disk, kInodes, 64).value();
  fs->SetSemanticFault(SafeFsSemanticFault::kStatSizeOffByOne);
  SpecFs spec(fs);
  (void)spec.Create("/f");
  (void)spec.Write("/f", 0, BytesFromString("abc"));
  (void)spec.Stat("/f");
  EXPECT_GT(RefinementStats::Get().mismatch_count(), 0u);
}

TEST(SpecEvolutionTest2, PolicySurvivesRemountAndCrash) {
  // The policy change composes with crash recovery: next-fit images recover
  // exactly like first-fit images (the journal does not care where blocks
  // live either).
  RamDisk disk(kDiskBlocks, 17);
  {
    auto fs = SafeFs::Format(disk, kInodes, 64).value();
    fs->SetAllocPolicy(AllocPolicy::kNextFit);
    SKERN_CHECK(fs->Create("/persist").ok());
    SKERN_CHECK(fs->Write("/persist", 0, BytesFromString("next-fit data")).ok());
    SKERN_CHECK(fs->Sync().ok());
    SKERN_CHECK(fs->Create("/volatile").ok());
  }
  disk.CrashNow(CrashPersistence::kLoseAll);
  auto remounted = SafeFs::Mount(disk);
  ASSERT_TRUE(remounted.ok());
  EXPECT_EQ(StringFromBytes(remounted.value()->Read("/persist", 0, 100).value()),
            "next-fit data");
  EXPECT_EQ(remounted.value()->Stat("/volatile").error(), Errno::kENOENT);
}

}  // namespace
}  // namespace skern
