// Tests for the executable file-system specification (FsModel), including the
// paper's worked example: directory rename as prefix substitution over the
// path map, and the crash/sync contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/spec/fs_model.h"

namespace skern {
namespace {

Bytes B(const std::string& s) { return BytesFromString(s); }

// --- path normalization ---

TEST(SpecPathTest, NormalizeBasics) {
  EXPECT_EQ(specpath::Normalize("/").value(), "/");
  EXPECT_EQ(specpath::Normalize("/a/b").value(), "/a/b");
  EXPECT_EQ(specpath::Normalize("//a///b/").value(), "/a/b");
  EXPECT_EQ(specpath::Normalize("/a/./b").value(), "/a/b");
}

TEST(SpecPathTest, RejectsRelativeAndDotDot) {
  EXPECT_FALSE(specpath::Normalize("").ok());
  EXPECT_FALSE(specpath::Normalize("a/b").ok());
  EXPECT_FALSE(specpath::Normalize("/a/../b").ok());
}

TEST(SpecPathTest, RejectsOverlongName) {
  std::string long_name(300, 'x');
  EXPECT_EQ(specpath::Normalize("/" + long_name).error(), Errno::kENAMETOOLONG);
}

TEST(SpecPathTest, ParentAndBasename) {
  EXPECT_EQ(specpath::Parent("/a/b/c"), "/a/b");
  EXPECT_EQ(specpath::Parent("/a"), "/");
  EXPECT_EQ(specpath::Parent("/"), "/");
  EXPECT_EQ(specpath::Basename("/a/b"), "b");
  EXPECT_EQ(specpath::Basename("/"), "");
}

TEST(SpecPathTest, PrefixRelation) {
  EXPECT_TRUE(specpath::IsPrefix("/a", "/a"));
  EXPECT_TRUE(specpath::IsPrefix("/a", "/a/b"));
  EXPECT_FALSE(specpath::IsPrefix("/a", "/ab"));
  EXPECT_TRUE(specpath::IsPrefix("/", "/anything"));
}

TEST(SpecPathTest, SubstitutePrefix) {
  EXPECT_EQ(specpath::SubstitutePrefix("/a", "/z", "/a/b/c"), "/z/b/c");
  EXPECT_EQ(specpath::SubstitutePrefix("/a", "/z", "/a"), "/z");
}

// --- basic operations ---

TEST(FsModelTest, CreateAndStat) {
  FsModel m;
  EXPECT_TRUE(m.Create("/f").ok());
  auto attr = m.Stat("/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_FALSE(attr->is_dir);
  EXPECT_EQ(attr->size, 0u);
}

TEST(FsModelTest, CreateErrors) {
  FsModel m;
  EXPECT_EQ(m.Create("/f").code(), Errno::kOk);
  EXPECT_EQ(m.Create("/f").code(), Errno::kEEXIST);
  EXPECT_EQ(m.Create("/missing/f").code(), Errno::kENOENT);
  EXPECT_EQ(m.Create("/f/child").code(), Errno::kENOTDIR);
  EXPECT_EQ(m.Create("/").code(), Errno::kEEXIST);
  EXPECT_EQ(m.Create("relative").code(), Errno::kEINVAL);
}

TEST(FsModelTest, MkdirAndNested) {
  FsModel m;
  EXPECT_TRUE(m.Mkdir("/d").ok());
  EXPECT_TRUE(m.Mkdir("/d/e").ok());
  EXPECT_EQ(m.Mkdir("/d").code(), Errno::kEEXIST);
  auto attr = m.Stat("/d/e");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(attr->is_dir);
}

TEST(FsModelTest, WriteReadRoundTrip) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  ASSERT_TRUE(m.Write("/f", 0, B("hello")).ok());
  auto r = m.Read("/f", 0, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(StringFromBytes(r.value()), "hello");
}

TEST(FsModelTest, WriteAtOffsetZeroFillsGap) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  ASSERT_TRUE(m.Write("/f", 4, B("xy")).ok());
  auto r = m.Read("/f", 0, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 6u);
  EXPECT_EQ((*r)[0], 0);
  EXPECT_EQ((*r)[3], 0);
  EXPECT_EQ((*r)[4], 'x');
}

TEST(FsModelTest, ReadBeyondEofIsShort) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  ASSERT_TRUE(m.Write("/f", 0, B("abc")).ok());
  EXPECT_EQ(m.Read("/f", 1, 100)->size(), 2u);
  EXPECT_EQ(m.Read("/f", 3, 100)->size(), 0u);
  EXPECT_EQ(m.Read("/f", 99, 100)->size(), 0u);
}

TEST(FsModelTest, ReadWriteErrors) {
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/d").ok());
  EXPECT_EQ(m.Read("/nope", 0, 1).error(), Errno::kENOENT);
  EXPECT_EQ(m.Read("/d", 0, 1).error(), Errno::kEISDIR);
  EXPECT_EQ(m.Write("/nope", 0, B("x")).code(), Errno::kENOENT);
  EXPECT_EQ(m.Write("/d", 0, B("x")).code(), Errno::kEISDIR);
}

TEST(FsModelTest, TruncateGrowAndShrink) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  ASSERT_TRUE(m.Write("/f", 0, B("abcdef")).ok());
  ASSERT_TRUE(m.Truncate("/f", 3).ok());
  EXPECT_EQ(StringFromBytes(m.Read("/f", 0, 100).value()), "abc");
  ASSERT_TRUE(m.Truncate("/f", 5).ok());
  auto r = m.Read("/f", 0, 100).value();
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r[4], 0);
}

TEST(FsModelTest, UnlinkSemantics) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  ASSERT_TRUE(m.Mkdir("/d").ok());
  EXPECT_EQ(m.Unlink("/d").code(), Errno::kEISDIR);
  EXPECT_TRUE(m.Unlink("/f").ok());
  EXPECT_EQ(m.Unlink("/f").code(), Errno::kENOENT);
  EXPECT_EQ(m.Stat("/f").error(), Errno::kENOENT);
}

TEST(FsModelTest, RmdirSemantics) {
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/d").ok());
  ASSERT_TRUE(m.Create("/d/f").ok());
  EXPECT_EQ(m.Rmdir("/d").code(), Errno::kENOTEMPTY);
  ASSERT_TRUE(m.Unlink("/d/f").ok());
  EXPECT_TRUE(m.Rmdir("/d").ok());
  EXPECT_EQ(m.Rmdir("/d").code(), Errno::kENOENT);
  EXPECT_EQ(m.Rmdir("/").code(), Errno::kEBUSY);
}

TEST(FsModelTest, ReaddirListsChildren) {
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/d").ok());
  ASSERT_TRUE(m.Create("/d/b").ok());
  ASSERT_TRUE(m.Create("/d/a").ok());
  ASSERT_TRUE(m.Mkdir("/d/sub").ok());
  ASSERT_TRUE(m.Create("/d/sub/deep").ok());  // not an immediate child
  auto names = m.Readdir("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a", "b", "sub"}));
  EXPECT_EQ(m.Readdir("/d/a").error(), Errno::kENOTDIR);
}

// --- rename: the paper's worked example ---

TEST(FsModelRenameTest, FileRename) {
  FsModel m;
  ASSERT_TRUE(m.Create("/a").ok());
  ASSERT_TRUE(m.Write("/a", 0, B("data")).ok());
  ASSERT_TRUE(m.Rename("/a", "/b").ok());
  EXPECT_EQ(m.Stat("/a").error(), Errno::kENOENT);
  EXPECT_EQ(StringFromBytes(m.Read("/b", 0, 100).value()), "data");
}

TEST(FsModelRenameTest, FileRenameReplacesTarget) {
  FsModel m;
  ASSERT_TRUE(m.Create("/a").ok());
  ASSERT_TRUE(m.Write("/a", 0, B("new")).ok());
  ASSERT_TRUE(m.Create("/b").ok());
  ASSERT_TRUE(m.Write("/b", 0, B("old")).ok());
  ASSERT_TRUE(m.Rename("/a", "/b").ok());
  EXPECT_EQ(StringFromBytes(m.Read("/b", 0, 100).value()), "new");
}

TEST(FsModelRenameTest, DirectoryRenameSubstitutesEveryPrefixedKey) {
  // "the directory-rename operation may be modeled as a relation between old
  // and new maps in which every path key with a given prefix is substituted
  // with a new prefix" (§4.4).
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/old").ok());
  ASSERT_TRUE(m.Mkdir("/old/sub").ok());
  ASSERT_TRUE(m.Create("/old/f1").ok());
  ASSERT_TRUE(m.Create("/old/sub/f2").ok());
  ASSERT_TRUE(m.Write("/old/sub/f2", 0, B("deep")).ok());
  ASSERT_TRUE(m.Rename("/old", "/new").ok());
  EXPECT_EQ(m.Stat("/old").error(), Errno::kENOENT);
  EXPECT_TRUE(m.Stat("/new").value().is_dir);
  EXPECT_TRUE(m.Stat("/new/sub").value().is_dir);
  EXPECT_FALSE(m.Stat("/new/f1").value().is_dir);
  EXPECT_EQ(StringFromBytes(m.Read("/new/sub/f2", 0, 100).value()), "deep");
}

TEST(FsModelRenameTest, DirIntoOwnSubtreeRejected) {
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/a").ok());
  ASSERT_TRUE(m.Mkdir("/a/b").ok());
  EXPECT_EQ(m.Rename("/a", "/a/b/c").code(), Errno::kEINVAL);
}

TEST(FsModelRenameTest, DirOntoNonEmptyDirRejected) {
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/a").ok());
  ASSERT_TRUE(m.Mkdir("/b").ok());
  ASSERT_TRUE(m.Create("/b/f").ok());
  EXPECT_EQ(m.Rename("/a", "/b").code(), Errno::kENOTEMPTY);
  ASSERT_TRUE(m.Unlink("/b/f").ok());
  EXPECT_TRUE(m.Rename("/a", "/b").ok());  // empty target dir is replaceable
}

TEST(FsModelRenameTest, MixedKindsRejected) {
  FsModel m;
  ASSERT_TRUE(m.Mkdir("/d").ok());
  ASSERT_TRUE(m.Create("/f").ok());
  EXPECT_EQ(m.Rename("/f", "/d").code(), Errno::kEISDIR);
  EXPECT_EQ(m.Rename("/d", "/f").code(), Errno::kENOTDIR);
}

TEST(FsModelRenameTest, SelfRenameIsNoop) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  ASSERT_TRUE(m.Write("/f", 0, B("x")).ok());
  EXPECT_TRUE(m.Rename("/f", "/f").ok());
  EXPECT_EQ(StringFromBytes(m.Read("/f", 0, 10).value()), "x");
}

TEST(FsModelRenameTest, MissingSourceAndBadTargetParent) {
  FsModel m;
  EXPECT_EQ(m.Rename("/nope", "/x").code(), Errno::kENOENT);
  ASSERT_TRUE(m.Create("/f").ok());
  EXPECT_EQ(m.Rename("/f", "/missing/x").code(), Errno::kENOENT);
  ASSERT_TRUE(m.Create("/plain").ok());
  EXPECT_EQ(m.Rename("/f", "/plain/x").code(), Errno::kENOTDIR);
}

// --- sync / crash contract ---

TEST(FsModelCrashTest, CrashRevertsToSyncedState) {
  FsModel m;
  ASSERT_TRUE(m.Create("/durable").ok());
  ASSERT_TRUE(m.Write("/durable", 0, B("saved")).ok());
  m.Sync();
  ASSERT_TRUE(m.Create("/volatile").ok());
  ASSERT_TRUE(m.Write("/durable", 0, B("UNSAVED!!")).ok());
  m.Crash();
  EXPECT_EQ(StringFromBytes(m.Read("/durable", 0, 100).value()), "saved");
  EXPECT_EQ(m.Stat("/volatile").error(), Errno::kENOENT);
}

TEST(FsModelCrashTest, CrashBeforeAnySyncIsEmpty) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  m.Crash();
  EXPECT_EQ(m.Stat("/f").error(), Errno::kENOENT);
  EXPECT_TRUE(m.Readdir("/").value().empty());
}

TEST(FsModelCrashTest, RepeatedCrashIsIdempotent) {
  FsModel m;
  ASSERT_TRUE(m.Create("/f").ok());
  m.Sync();
  ASSERT_TRUE(m.Create("/g").ok());
  m.Crash();
  auto first = m.state();
  m.Crash();
  EXPECT_TRUE(m.state() == first);
}

TEST(FsModelTest, TotalBytesAccounting) {
  FsModel m;
  ASSERT_TRUE(m.Create("/a").ok());
  ASSERT_TRUE(m.Create("/b").ok());
  ASSERT_TRUE(m.Write("/a", 0, B("12345")).ok());
  ASSERT_TRUE(m.Write("/b", 10, B("xy")).ok());  // 12 bytes incl. gap
  EXPECT_EQ(m.TotalBytes(), 17u);
}

// --- property-style sweep: model invariants under random operations ---

struct SweepParams {
  uint64_t seed;
  int ops;
};

class FsModelSweepTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(FsModelSweepTest, InvariantsHoldUnderRandomOps) {
  const auto params = GetParam();
  Rng rng(params.seed);
  FsModel m;
  std::vector<std::string> pool{"/a", "/b", "/d", "/d/x", "/d/y", "/e", "/e/z"};
  for (int i = 0; i < params.ops; ++i) {
    const std::string& p = pool[rng.NextBelow(pool.size())];
    const std::string& q = pool[rng.NextBelow(pool.size())];
    switch (rng.NextBelow(9)) {
      case 0:
        (void)m.Create(p);
        break;
      case 1:
        (void)m.Mkdir(p);
        break;
      case 2:
        (void)m.Unlink(p);
        break;
      case 3:
        (void)m.Rmdir(p);
        break;
      case 4:
        (void)m.Write(p, rng.NextBelow(64), rng.NextBytes(rng.NextBelow(32)));
        break;
      case 5:
        (void)m.Truncate(p, rng.NextBelow(64));
        break;
      case 6:
        (void)m.Rename(p, q);
        break;
      case 7:
        m.Sync();
        break;
      case 8:
        m.Crash();
        break;
    }
    // Invariant 1: every file's and dir's parent chain consists of dirs.
    const auto& st = m.state();
    for (const auto& [file, bytes] : st.files) {
      EXPECT_EQ(st.files.count(specpath::Parent(file)), 0u) << file;
      EXPECT_EQ(st.dirs.count(specpath::Parent(file)), 1u) << file;
    }
    for (const auto& dir : st.dirs) {
      if (dir != "/") {
        EXPECT_EQ(st.dirs.count(specpath::Parent(dir)), 1u) << dir;
      }
    }
    // Invariant 2: nothing is both a file and a directory.
    for (const auto& [file, bytes] : st.files) {
      EXPECT_EQ(st.dirs.count(file), 0u) << file;
    }
    // Invariant 3: root always exists.
    EXPECT_EQ(st.dirs.count("/"), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweeps, FsModelSweepTest,
                         ::testing::Values(SweepParams{1, 300}, SweepParams{2, 300},
                                           SweepParams{3, 500}, SweepParams{42, 800},
                                           SweepParams{1234, 1000}));

}  // namespace
}  // namespace skern
