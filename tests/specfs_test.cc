// Tests for specfs: lock-step refinement on clean implementations, detection
// of injected semantic bugs, and the crash oracle under randomized workloads
// and crash points.
#include <gtest/gtest.h>

#include <memory>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 512;
constexpr uint64_t kInodes = 64;
constexpr uint64_t kJournalBlocks = 64;

class SpecFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    RefinementStats::Get().ResetForTesting();
    SetRefinementMode(RefinementMode::kEnforcing);
    disk_ = std::make_unique<RamDisk>(kDiskBlocks, 1);
    auto fs = SafeFs::Format(*disk_, kInodes, kJournalBlocks);
    ASSERT_TRUE(fs.ok());
    safefs_ = fs.value();
    spec_ = std::make_unique<SpecFs>(safefs_);
  }
  void TearDown() override { SetRefinementMode(RefinementMode::kEnforcing); }

  std::unique_ptr<RamDisk> disk_;
  std::shared_ptr<SafeFs> safefs_;
  std::unique_ptr<SpecFs> spec_;
};

TEST_F(SpecFsTest, CleanImplementationPassesChecks) {
  ASSERT_TRUE(spec_->Mkdir("/d").ok());
  ASSERT_TRUE(spec_->Create("/d/f").ok());
  ASSERT_TRUE(spec_->Write("/d/f", 0, BytesFromString("spec")).ok());
  EXPECT_EQ(StringFromBytes(spec_->Read("/d/f", 0, 10).value()), "spec");
  ASSERT_TRUE(spec_->Rename("/d/f", "/d/g").ok());
  ASSERT_TRUE(spec_->Truncate("/d/g", 2).ok());
  EXPECT_EQ(spec_->Stat("/d/g")->size, 2u);
  ASSERT_TRUE(spec_->Unlink("/d/g").ok());
  ASSERT_TRUE(spec_->Rmdir("/d").ok());
  EXPECT_GE(RefinementStats::Get().checks(), 10u);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

TEST_F(SpecFsTest, ErrorsAreCheckedToo) {
  // Error paths must match the specification's errno exactly.
  EXPECT_EQ(spec_->Unlink("/missing").code(), Errno::kENOENT);
  EXPECT_EQ(spec_->Create("/a/b").code(), Errno::kENOENT);
  ASSERT_TRUE(spec_->Create("/f").ok());
  EXPECT_EQ(spec_->Mkdir("/f").code(), Errno::kEEXIST);
  EXPECT_EQ(spec_->Readdir("/f").error(), Errno::kENOTDIR);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

// Each semantic fault is invisible to types and ownership but must be caught
// by refinement. Parameterized over the fault catalogue.
class SemanticFaultTest : public ::testing::TestWithParam<SafeFsSemanticFault> {};

TEST_P(SemanticFaultTest, RefinementCatchesInjectedBug) {
  LockRegistry::Get().ResetForTesting();
  RefinementStats::Get().ResetForTesting();
  ScopedRefinementMode mode(RefinementMode::kRecording);
  RamDisk disk(kDiskBlocks, 3);
  auto fs = SafeFs::Format(disk, kInodes, kJournalBlocks);
  ASSERT_TRUE(fs.ok());
  fs.value()->SetSemanticFault(GetParam());
  SpecFs spec(fs.value());

  // A small workload that exercises every injected path.
  (void)spec.Mkdir("/d");
  (void)spec.Create("/d/a");
  (void)spec.Create("/d/b");
  (void)spec.Write("/d/a", 0, BytesFromString("0123456789"));
  (void)spec.Stat("/d/a");
  (void)spec.Truncate("/d/a", 3);
  (void)spec.Truncate("/d/a", 10);
  (void)spec.Read("/d/a", 0, 16);
  (void)spec.Rename("/d/a", "/d/c");
  (void)spec.Readdir("/d");
  (void)spec.Stat("/d/c");

  EXPECT_GT(RefinementStats::Get().mismatch_count(), 0u)
      << "fault " << static_cast<int>(GetParam()) << " slipped through refinement";
}

INSTANTIATE_TEST_SUITE_P(AllSemanticFaults, SemanticFaultTest,
                         ::testing::Values(SafeFsSemanticFault::kStatSizeOffByOne,
                                           SafeFsSemanticFault::kRenameLeavesSource,
                                           SafeFsSemanticFault::kTruncateSkipsZeroing,
                                           SafeFsSemanticFault::kReaddirDropsLastEntry,
                                           SafeFsSemanticFault::kWriteIgnoresTailByte));

TEST_F(SpecFsTest, NoFaultMeansNoMismatch) {
  ScopedRefinementMode mode(RefinementMode::kRecording);
  safefs_->SetSemanticFault(SafeFsSemanticFault::kNone);
  (void)spec_->Create("/x");
  (void)spec_->Write("/x", 0, BytesFromString("abc"));
  (void)spec_->Stat("/x");
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

// --- randomized lock-step refinement ---

struct SweepParams {
  uint64_t seed;
  int ops;
};

class SpecFsSweepTest : public ::testing::TestWithParam<SweepParams> {};

// Applies one random operation to the spec-checked fs. Returns false when the
// underlying device reported a crash (EIO).
bool RandomOp(Rng& rng, SpecFs& spec, const std::vector<std::string>& pool) {
  const std::string& p = pool[rng.NextBelow(pool.size())];
  const std::string& q = pool[rng.NextBelow(pool.size())];
  Status s = Status::Ok();
  switch (rng.NextBelow(10)) {
    case 0:
      s = spec.Create(p);
      break;
    case 1:
      s = spec.Mkdir(p);
      break;
    case 2:
      s = spec.Unlink(p);
      break;
    case 3:
      s = spec.Rmdir(p);
      break;
    case 4:
      s = spec.Write(p, rng.NextBelow(3 * kBlockSize), rng.NextBytes(1 + rng.NextBelow(300)));
      break;
    case 5:
      s = spec.Truncate(p, rng.NextBelow(2 * kBlockSize));
      break;
    case 6:
      s = spec.Rename(p, q);
      break;
    case 7:
      s = spec.Read(p, rng.NextBelow(2 * kBlockSize), rng.NextBelow(256)).status();
      break;
    case 8:
      s = spec.Readdir(p).status();
      break;
    case 9:
      s = spec.Sync();
      break;
  }
  return s.code() != Errno::kEIO;
}

const std::vector<std::string>& PathPool() {
  static const std::vector<std::string> pool{
      "/a", "/b", "/c", "/d",     "/d/x",   "/d/y",   "/d/z",
      "/e", "/e/sub", "/e/sub/w", "/e/sub2", "/f",    "/g"};
  return pool;
}

TEST_P(SpecFsSweepTest, RandomWorkloadNeverDiverges) {
  LockRegistry::Get().ResetForTesting();
  RefinementStats::Get().ResetForTesting();
  SetRefinementMode(RefinementMode::kEnforcing);  // any mismatch panics = test failure
  const auto params = GetParam();
  Rng rng(params.seed);
  RamDisk disk(kDiskBlocks, params.seed);
  auto fs = SafeFs::Format(disk, kInodes, kJournalBlocks);
  ASSERT_TRUE(fs.ok());
  SpecFs spec(fs.value());
  for (int i = 0; i < params.ops; ++i) {
    ASSERT_TRUE(RandomOp(rng, spec, PathPool())) << "unexpected EIO at op " << i;
  }
  // Sync ops emit no per-op check, so the count is slightly below ops.
  EXPECT_GT(RefinementStats::Get().checks(), static_cast<uint64_t>(params.ops) * 3 / 4);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, SpecFsSweepTest,
                         ::testing::Values(SweepParams{101, 400}, SweepParams{202, 400},
                                           SweepParams{303, 600}, SweepParams{404, 600},
                                           SweepParams{505, 800}, SweepParams{606, 1000}));

// --- crash oracle ---

TEST_F(SpecFsTest, CleanCrashRecoversToSyncedState) {
  ASSERT_TRUE(spec_->Create("/keep").ok());
  ASSERT_TRUE(spec_->Write("/keep", 0, BytesFromString("synced data")).ok());
  ASSERT_TRUE(spec_->Sync().ok());
  ASSERT_TRUE(spec_->Create("/lose").ok());
  ASSERT_TRUE(spec_->Write("/keep", 0, BytesFromString("UNSYNCED")).ok());

  FsModel expected = spec_->model();
  expected.Crash();
  safefs_.reset();
  spec_.reset();
  disk_->CrashNow(CrashPersistence::kLoseAll);

  auto remounted = SafeFs::Mount(*disk_);
  ASSERT_TRUE(remounted.ok());
  auto diffs = DiffFsAgainstModel(*remounted.value(), expected.state());
  EXPECT_TRUE(diffs.empty()) << diffs.front();
}

// The full crash-oracle property: random workload with random sync points,
// crash injected at a random device write (which, for safefs, is always
// inside a journal commit), remount, and require the recovered tree to equal
// either the last synced model state or — if the crashed commit's record
// made it to disk — the model state at the crashed sync.
struct CrashSweepParams {
  uint64_t seed;
  int max_ops;
  CrashPersistence persistence;
};

class SpecFsCrashSweepTest : public ::testing::TestWithParam<CrashSweepParams> {};

TEST_P(SpecFsCrashSweepTest, RecoveryMatchesTheOracle) {
  LockRegistry::Get().ResetForTesting();
  RefinementStats::Get().ResetForTesting();
  SetRefinementMode(RefinementMode::kEnforcing);
  const auto params = GetParam();
  Rng rng(params.seed);
  RamDisk disk(kDiskBlocks, params.seed);
  auto fs = SafeFs::Format(disk, kInodes, kJournalBlocks);
  ASSERT_TRUE(fs.ok());
  auto spec = std::make_unique<SpecFs>(fs.value());

  disk.ScheduleCrashAfterWrites(5 + rng.NextBelow(120), params.persistence,
                                /*tear_last=*/true);

  FsModel at_crashed_sync;  // model state captured entering the failed sync
  bool crashed = false;
  for (int i = 0; i < params.max_ops && !crashed; ++i) {
    // Snapshot the model before each op: if this op is the crashing sync,
    // its pre-op state is the alternative legal recovery point.
    FsModel snapshot = spec->model();
    if (!RandomOp(rng, *spec, PathPool())) {
      crashed = true;
      at_crashed_sync = snapshot;
    }
  }
  if (!crashed) {
    GTEST_SKIP() << "crash point beyond workload";
  }

  FsModel synced = spec->model();
  synced.Crash();
  fs.value().reset();
  spec.reset();
  fs = Result<std::shared_ptr<SafeFs>>(Errno::kEINVAL);  // drop old handle

  auto remounted = SafeFs::Mount(disk);
  ASSERT_TRUE(remounted.ok());
  auto diff_old = DiffFsAgainstModel(*remounted.value(), synced.state());
  // The crashed sync would have committed everything dirty at that moment,
  // i.e. the full model state entering the sync.
  auto diff_new = DiffFsAgainstModel(*remounted.value(), at_crashed_sync.state());
  EXPECT_TRUE(diff_old.empty() || diff_new.empty())
      << "recovered state matches neither pre- nor post-crash sync point: "
      << (diff_old.empty() ? "" : diff_old.front()) << " / "
      << (diff_new.empty() ? "" : diff_new.front());
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, SpecFsCrashSweepTest,
    ::testing::Values(CrashSweepParams{1, 300, CrashPersistence::kLoseAll},
                      CrashSweepParams{2, 300, CrashPersistence::kRandomSubset},
                      CrashSweepParams{3, 300, CrashPersistence::kRandomPrefix},
                      CrashSweepParams{4, 300, CrashPersistence::kRandomSubset},
                      CrashSweepParams{5, 300, CrashPersistence::kRandomSubset},
                      CrashSweepParams{6, 300, CrashPersistence::kLoseAll},
                      CrashSweepParams{7, 300, CrashPersistence::kRandomPrefix},
                      CrashSweepParams{8, 300, CrashPersistence::kRandomSubset},
                      CrashSweepParams{9, 300, CrashPersistence::kRandomSubset},
                      CrashSweepParams{10, 300, CrashPersistence::kRandomSubset}));

}  // namespace
}  // namespace skern
