// Tests for tracked locks and the lock-order checker.
#include <gtest/gtest.h>

#include <thread>

#include "src/base/panic.h"
#include "src/sync/lock_registry.h"
#include "src/sync/mutex.h"
#include "src/sync/spinlock.h"

namespace skern {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    LockRegistry::Get().set_panic_on_violation(false);
  }
  void TearDown() override {
    LockRegistry::Get().ResetForTesting();
    LockRegistry::Get().set_panic_on_violation(true);
  }
};

TEST_F(SyncTest, MutexTracksHolder) {
  TrackedMutex mu("test.holder");
  EXPECT_FALSE(mu.HeldByCurrentThread());
  {
    MutexGuard guard(mu);
    EXPECT_TRUE(mu.HeldByCurrentThread());
  }
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST_F(SyncTest, HoldIsPerThread) {
  TrackedMutex mu("test.perthread");
  MutexGuard guard(mu);
  bool other_thread_sees_held = true;
  std::thread t([&] { other_thread_sees_held = mu.HeldByCurrentThread(); });
  t.join();
  EXPECT_FALSE(other_thread_sees_held);
  EXPECT_TRUE(mu.HeldByCurrentThread());
}

TEST_F(SyncTest, TryLockReports) {
  TrackedMutex mu("test.trylock");
  EXPECT_TRUE(mu.TryLock());
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
}

TEST_F(SyncTest, GuardReleaseEarly) {
  TrackedMutex mu("test.release");
  MutexGuard guard(mu);
  guard.Release();
  EXPECT_FALSE(mu.HeldByCurrentThread());
  // Destructor must not double-unlock (would panic in OnRelease).
}

TEST_F(SyncTest, ConsistentOrderIsClean) {
  TrackedMutex a("test.order.a");
  TrackedMutex b("test.order.b");
  for (int i = 0; i < 3; ++i) {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  EXPECT_EQ(LockRegistry::Get().violation_count(), 0u);
}

TEST_F(SyncTest, InvertedOrderIsViolation) {
  TrackedMutex a("test.invert.a");
  TrackedMutex b("test.invert.b");
  {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  {
    MutexGuard gb(b);
    MutexGuard ga(a);  // a-after-b closes the cycle
  }
  ASSERT_GE(LockRegistry::Get().violation_count(), 1u);
  auto v = LockRegistry::Get().Violations().front();
  EXPECT_EQ(v.held_name, "test.invert.b");
  EXPECT_EQ(v.acquired_name, "test.invert.a");
}

TEST_F(SyncTest, ThreeLockCycleDetected) {
  TrackedMutex a("test.cycle3.a");
  TrackedMutex b("test.cycle3.b");
  TrackedMutex c("test.cycle3.c");
  {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  {
    MutexGuard gb(b);
    MutexGuard gc(c);
  }
  {
    MutexGuard gc(c);
    MutexGuard ga(a);  // closes a -> b -> c -> a
  }
  EXPECT_GE(LockRegistry::Get().violation_count(), 1u);
}

TEST_F(SyncTest, ViolationPanicsInStrictMode) {
  LockRegistry::Get().set_panic_on_violation(true);
  TrackedMutex a("test.strict.a");
  TrackedMutex b("test.strict.b");
  {
    MutexGuard ga(a);
    MutexGuard gb(b);
  }
  ScopedPanicAsException panic_guard;
  b.Lock();
  EXPECT_THROW(a.Lock(), PanicException);
  // Clean up: the failed acquire still registered the hold before panicking,
  // and the mutex itself was never locked.
  LockRegistry::Get().OnRelease(a.class_id());
  b.Unlock();
}

TEST_F(SyncTest, SameNameSharesClass) {
  TrackedMutex a("test.shared.class");
  TrackedMutex b("test.shared.class");
  EXPECT_EQ(a.class_id(), b.class_id());
}

TEST_F(SyncTest, HeldCountTracksNesting) {
  TrackedMutex a("test.count.a");
  TrackedMutex b("test.count.b");
  EXPECT_EQ(LockRegistry::Get().CurrentThreadHeldCount(), 0u);
  MutexGuard ga(a);
  EXPECT_EQ(LockRegistry::Get().CurrentThreadHeldCount(), 1u);
  {
    MutexGuard gb(b);
    EXPECT_EQ(LockRegistry::Get().CurrentThreadHeldCount(), 2u);
  }
  EXPECT_EQ(LockRegistry::Get().CurrentThreadHeldCount(), 1u);
}

TEST_F(SyncTest, RwLockSharedAndExclusive) {
  TrackedRwLock rw("test.rw");
  {
    ReadGuard r1(rw);
    EXPECT_TRUE(rw.HeldByCurrentThread());
  }
  {
    WriteGuard w(rw);
    EXPECT_TRUE(rw.HeldByCurrentThread());
  }
  EXPECT_FALSE(rw.HeldByCurrentThread());
}

TEST_F(SyncTest, RwLockConcurrentReaders) {
  TrackedRwLock rw("test.rw.readers");
  rw.LockShared();
  bool other_got_it = false;
  std::thread t([&] {
    rw.LockShared();
    other_got_it = true;
    rw.UnlockShared();
  });
  t.join();
  EXPECT_TRUE(other_got_it);
  rw.UnlockShared();
}

TEST_F(SyncTest, SpinlockMutualExclusion) {
  Spinlock lock;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST_F(SyncTest, SpinlockTryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST_F(SyncTest, ReleaseOfUnheldLockPanics) {
  ScopedPanicAsException panic_guard;
  LockClassId cls = LockRegistry::Get().RegisterClass("test.unheld");
  EXPECT_THROW(LockRegistry::Get().OnRelease(cls), PanicException);
}

}  // namespace
}  // namespace skern
