// Engine-level TCP state machine tests: two TcpConnection instances wired
// directly to each other through the simulated network, with full control of
// time and loss — handshake states, teardown sequences, retransmission
// backoff, RST handling, TIME_WAIT.
#include <gtest/gtest.h>

#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/tcp.h"

namespace skern {
namespace {

constexpr uint32_t kAIp = 1;
constexpr uint32_t kBIp = 2;

// A pair of endpoints with manual SYN plumbing (the stack's demux job,
// minimized for engine tests).
struct Pair {
  Pair() : network(clock, 5) {
    network.Attach(kAIp, [this](const Packet& pkt) {
      if (a != nullptr) {
        a->OnSegment(pkt);
      }
    });
    network.Attach(kBIp, [this](const Packet& pkt) {
      if (b == nullptr && pkt.Has(kTcpSyn) && !pkt.Has(kTcpAck)) {
        b = TcpConnection::FromSyn(
            clock, [this](Packet&& out) { network.Send(std::move(out)); },
            NetAddr{kBIp, 80}, pkt);
        return;
      }
      if (b != nullptr) {
        b->OnSegment(pkt);
      }
    });
  }

  void ConnectA() {
    a = TcpConnection::Connect(
        clock, [this](Packet&& out) { network.Send(std::move(out)); }, NetAddr{kAIp, 1234},
        NetAddr{kBIp, 80});
  }

  void Run(SimTime t = kSecond) { clock.Advance(t); }

  SimClock clock;
  Network network;
  std::unique_ptr<TcpConnection> a;
  std::unique_ptr<TcpConnection> b;
};

TEST(TcpStateTest, ThreeWayHandshake) {
  Pair pair;
  pair.ConnectA();
  EXPECT_EQ(pair.a->state(), TcpState::kSynSent);
  pair.Run();
  ASSERT_NE(pair.b, nullptr);
  EXPECT_EQ(pair.a->state(), TcpState::kEstablished);
  EXPECT_EQ(pair.b->state(), TcpState::kEstablished);
}

TEST(TcpStateTest, DataFlowsBothWays) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  ASSERT_TRUE(pair.a->Send(BytesFromString("to-b")).ok());
  ASSERT_TRUE(pair.b->Send(BytesFromString("to-a")).ok());
  pair.Run();
  EXPECT_EQ(StringFromBytes(pair.b->Recv(16)), "to-b");
  EXPECT_EQ(StringFromBytes(pair.a->Recv(16)), "to-a");
}

TEST(TcpStateTest, SendBeforeEstablishedRejected) {
  Pair pair;
  pair.ConnectA();
  EXPECT_EQ(pair.a->Send(BytesFromString("early")).code(), Errno::kENOTCONN);
}

TEST(TcpStateTest, ActiveCloseWalksFinWait) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  pair.a->Close();
  EXPECT_EQ(pair.a->state(), TcpState::kFinWait1);
  pair.Run();
  // Peer acked the FIN and hasn't closed yet.
  EXPECT_EQ(pair.a->state(), TcpState::kFinWait2);
  EXPECT_EQ(pair.b->state(), TcpState::kCloseWait);
  EXPECT_TRUE(pair.b->PeerClosed());
  // Passive side closes.
  pair.b->Close();
  EXPECT_EQ(pair.b->state(), TcpState::kLastAck);
  pair.Run();
  EXPECT_EQ(pair.b->state(), TcpState::kClosed);
  // Active side waits out TIME_WAIT, then closes.
  pair.Run(10 * kSecond);
  EXPECT_EQ(pair.a->state(), TcpState::kClosed);
}

TEST(TcpStateTest, CloseWithPendingDataDrainsFirst) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  ASSERT_TRUE(pair.a->Send(BytesFromString("last words")).ok());
  pair.a->Close();
  pair.Run();
  EXPECT_EQ(StringFromBytes(pair.b->Recv(32)), "last words");
  EXPECT_TRUE(pair.b->PeerClosed());
}

TEST(TcpStateTest, SendAfterCloseIsPipe) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  pair.a->Close();
  EXPECT_EQ(pair.a->Send(BytesFromString("late")).code(), Errno::kEPIPE);
}

TEST(TcpStateTest, RetransmitBackoffCountsAttempts) {
  Pair pair;
  pair.network.set_drop_rate(1.0);  // black hole
  pair.ConnectA();
  pair.Run(5 * kSecond);
  EXPECT_GT(pair.a->stats().retransmits, 2u);
  EXPECT_EQ(pair.a->state(), TcpState::kSynSent);  // still trying
  pair.Run(600 * kSecond);
  EXPECT_EQ(pair.a->state(), TcpState::kClosed);  // gave up after max retries
}

TEST(TcpStateTest, LossRecoveryDeliversInOrder) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  pair.network.set_drop_rate(0.2);
  Rng rng(21);
  Bytes blob = rng.NextBytes(40'000);
  // 40 separate sends -> 40 wire segments even under LSO (each call emits
  // what is pending): data loss is certain at 20%.
  for (size_t off = 0; off < blob.size(); off += 1000) {
    ASSERT_TRUE(pair.a->Send(ByteView(blob).Subview(off, 1000)).ok());
    pair.Run();
  }
  pair.Run(600 * kSecond);
  // Recv returns up to `max` — the zero-copy move-out path hands back one
  // segment's storage at a time — so drain in a loop.
  Bytes received;
  for (;;) {
    Bytes chunk = pair.b->Recv(50'000);
    if (chunk.empty()) {
      break;
    }
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(received, blob);
  EXPECT_GT(pair.a->stats().retransmits, 0u);
}

TEST(TcpStateTest, AbortSendsRst) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  pair.a->Abort();
  EXPECT_EQ(pair.a->state(), TcpState::kClosed);
  pair.Run();
  EXPECT_EQ(pair.b->state(), TcpState::kClosed);  // RST tore it down
}

TEST(TcpStateTest, StatsCountTraffic) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  ASSERT_TRUE(pair.a->Send(Bytes(2500, 0x66)).ok());  // one jumbo segment (LSO)
  pair.Run();
  EXPECT_EQ(pair.b->stats().bytes_received, 2500u);
  EXPECT_GE(pair.a->stats().segments_sent, 2u);  // SYN + scatter-gather data
  EXPECT_EQ(pair.a->stats().bytes_sent, 2500u);
}

TEST(TcpStateTest, DuplicateDataIsDroppedNotDoubled) {
  Pair pair;
  pair.ConnectA();
  pair.Run();
  ASSERT_TRUE(pair.a->Send(BytesFromString("once")).ok());
  pair.Run();
  // Simulate a duplicated segment arriving again.
  Packet dup;
  dup.proto = kProtoTcp;
  dup.src_ip = kAIp;
  dup.src_port = 1234;
  dup.dst_ip = kBIp;
  dup.dst_port = 80;
  dup.flags = kTcpAck;
  // The engine derives ISS deterministically from the 4-tuple; first data
  // byte is iss + 1 (the SYN consumes one sequence number).
  dup.seq = 1000 + 1234 * 131 + 80 * 17 + 1;
  dup.payload = BytesFromString("once");
  pair.b->OnSegment(dup);
  EXPECT_EQ(StringFromBytes(pair.b->Recv(16)), "once");
  EXPECT_TRUE(pair.b->Recv(16).empty());
  EXPECT_GT(pair.b->stats().out_of_order_drops, 0u);
}

}  // namespace
}  // namespace skern
