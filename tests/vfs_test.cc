// Tests for the VFS façade: mounts, longest-prefix resolution, descriptors,
// and the implementation-slot integration (swapping file systems under a
// running VFS).
#include <gtest/gtest.h>

#include <memory>

#include "src/block/block_device.h"
#include "src/core/migration.h"
#include "src/fs/safefs/safefs.h"
#include "src/sync/lock_registry.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

std::shared_ptr<SafeFs> MakeFs(RamDisk& disk) {
  auto fs = SafeFs::Format(disk, 64, 16);
  EXPECT_TRUE(fs.ok());
  return fs.value();
}

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    disk_ = std::make_unique<RamDisk>(256, 5);
    vfs_ = std::make_unique<Vfs>();
    ASSERT_TRUE(vfs_->Mount("/", MakeFs(*disk_)).ok());
  }

  std::unique_ptr<RamDisk> disk_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(VfsTest, FirstMountMustBeRoot) {
  Vfs vfs;
  RamDisk disk(256, 6);
  EXPECT_EQ(vfs.Mount("/data", MakeFs(disk)).code(), Errno::kEINVAL);
  EXPECT_TRUE(vfs.Mount("/", MakeFs(disk)).ok());
}

TEST_F(VfsTest, DoubleMountRejected) {
  RamDisk disk(256, 7);
  EXPECT_EQ(vfs_->Mount("/", MakeFs(disk)).code(), Errno::kEBUSY);
}

TEST_F(VfsTest, PathSyscallsDispatch) {
  ASSERT_TRUE(vfs_->Mkdir("/dir").ok());
  auto attr = vfs_->Stat("/dir");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(attr->is_dir);
  ASSERT_TRUE(vfs_->Rmdir("/dir").ok());
  EXPECT_EQ(vfs_->Stat("/dir").error(), Errno::kENOENT);
}

TEST_F(VfsTest, OpenCreateWriteReadClose) {
  auto fd = vfs_->Open("/file", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, BytesFromString("hello ")).ok());
  ASSERT_TRUE(vfs_->Write(*fd, BytesFromString("world")).ok());
  ASSERT_TRUE(vfs_->Seek(*fd, 0).ok());
  auto data = vfs_->Read(*fd, 64);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringFromBytes(data.value()), "hello world");
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  EXPECT_EQ(vfs_->Close(*fd).code(), Errno::kEBADF);
}

TEST_F(VfsTest, OpenSemantics) {
  EXPECT_EQ(vfs_->Open("/missing", kOpenRead).error(), Errno::kENOENT);
  EXPECT_EQ(vfs_->Open("/x", 0).error(), Errno::kEINVAL);
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  EXPECT_EQ(vfs_->Open("/d", kOpenRead).error(), Errno::kEISDIR);
}

TEST_F(VfsTest, SequentialOffsetAdvances) {
  auto fd = vfs_->Open("/f", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, BytesFromString("abcdef")).ok());
  ASSERT_TRUE(vfs_->Seek(*fd, 2).ok());
  EXPECT_EQ(StringFromBytes(vfs_->Read(*fd, 2).value()), "cd");
  EXPECT_EQ(StringFromBytes(vfs_->Read(*fd, 2).value()), "ef");
  EXPECT_TRUE(vfs_->Read(*fd, 2)->empty());  // EOF
}

TEST_F(VfsTest, PositionalIoDoesNotMoveOffset) {
  auto fd = vfs_->Open("/f", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Pwrite(*fd, 4, BytesFromString("pos")).ok());
  EXPECT_EQ(StringFromBytes(vfs_->Pread(*fd, 4, 3).value()), "pos");
  // Sequential offset still at 0.
  auto head = vfs_->Read(*fd, 4);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->size(), 4u);
  EXPECT_EQ((*head)[0], 0);
}

TEST_F(VfsTest, TruncateOnOpen) {
  auto fd = vfs_->Open("/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, BytesFromString("0123456789")).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  auto fd2 = vfs_->Open("/f", kOpenWrite | kOpenTrunc);
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(vfs_->Stat("/f")->size, 0u);
  ASSERT_TRUE(vfs_->Close(*fd2).ok());
}

TEST_F(VfsTest, AppendMode) {
  auto fd = vfs_->Open("/log", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, BytesFromString("one")).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  auto fd2 = vfs_->Open("/log", kOpenWrite | kOpenAppend);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(vfs_->Write(*fd2, BytesFromString("two")).ok());
  ASSERT_TRUE(vfs_->Close(*fd2).ok());
  EXPECT_EQ(vfs_->Stat("/log")->size, 6u);
}

TEST_F(VfsTest, ModeBitsEnforced) {
  auto ro = vfs_->Open("/f", kOpenRead | kOpenCreate);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(vfs_->Write(*ro, BytesFromString("x")).code(), Errno::kEBADF);
  auto wo = vfs_->Open("/f", kOpenWrite);
  ASSERT_TRUE(wo.ok());
  EXPECT_EQ(vfs_->Read(*wo, 1).error(), Errno::kEBADF);
}

TEST_F(VfsTest, FdLimit) {
  Vfs small(2);
  RamDisk disk(256, 8);
  ASSERT_TRUE(small.Mount("/", MakeFs(disk)).ok());
  auto a = small.Open("/a", kOpenWrite | kOpenCreate);
  auto b = small.Open("/b", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(small.Open("/c", kOpenWrite | kOpenCreate).error(), Errno::kEMFILE);
}

TEST_F(VfsTest, MultipleMountsLongestPrefixWins) {
  RamDisk disk2(256, 9);
  ASSERT_TRUE(vfs_->Mkdir("/data").ok());
  ASSERT_TRUE(vfs_->Mount("/data", MakeFs(disk2)).ok());
  // Files under /data land on the second fs.
  ASSERT_TRUE(vfs_->Mkdir("/data/inner").ok());
  // The root fs does not see it.
  auto root_names = vfs_->Readdir("/");
  ASSERT_TRUE(root_names.ok());
  // Root lists only the mountpoint directory we made on the root fs.
  EXPECT_EQ(root_names.value(), std::vector<std::string>{"data"});
  auto data_names = vfs_->Readdir("/data");
  ASSERT_TRUE(data_names.ok());
  EXPECT_EQ(data_names.value(), std::vector<std::string>{"inner"});
  EXPECT_EQ(vfs_->Mountpoints().size(), 2u);
}

TEST_F(VfsTest, CrossMountRenameRejected) {
  RamDisk disk2(256, 10);
  ASSERT_TRUE(vfs_->Mkdir("/data").ok());
  ASSERT_TRUE(vfs_->Mount("/data", MakeFs(disk2)).ok());
  ASSERT_TRUE(vfs_->Open("/file", kOpenWrite | kOpenCreate).ok());
  EXPECT_EQ(vfs_->Rename("/file", "/data/file").code(), Errno::kEXDEV);
}

TEST_F(VfsTest, UnmountBusyWithOpenFiles) {
  RamDisk disk2(256, 12);
  ASSERT_TRUE(vfs_->Mkdir("/data").ok());
  ASSERT_TRUE(vfs_->Mount("/data", MakeFs(disk2)).ok());
  auto fd = vfs_->Open("/data/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(vfs_->Unmount("/data").code(), Errno::kEBUSY);
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  EXPECT_TRUE(vfs_->Unmount("/data").ok());
  EXPECT_EQ(vfs_->Unmount("/data").code(), Errno::kEINVAL);
}

TEST_F(VfsTest, SyncAllReachesEveryMount) {
  RamDisk disk2(256, 13);
  ASSERT_TRUE(vfs_->Mkdir("/data").ok());
  auto fs2 = MakeFs(disk2);
  ASSERT_TRUE(vfs_->Mount("/data", fs2).ok());
  ASSERT_TRUE(vfs_->Open("/data/f", kOpenWrite | kOpenCreate).ok());
  uint64_t syncs_before = fs2->stats().syncs;
  ASSERT_TRUE(vfs_->SyncAll().ok());
  EXPECT_GT(fs2->stats().syncs, syncs_before);
}

TEST_F(VfsTest, StatsCountDispatches) {
  uint64_t before = vfs_->stats().dispatches;
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  (void)vfs_->Stat("/d");
  EXPECT_GE(vfs_->stats().dispatches, before + 2);
}

// The step-1 payoff: swap implementations behind a slot without touching the
// calling code.
TEST(VfsMigrationTest, SlotSwapsUnderCaller) {
  LockRegistry::Get().ResetForTesting();
  RamDisk disk_a(256, 20);
  RamDisk disk_b(256, 21);
  ImplementationSlot<FileSystem> slot("skern.FileSystem");
  auto fs_a = SafeFs::Format(disk_a, 64, 16).value();
  auto fs_b = SafeFs::Format(disk_b, 64, 16).value();
  ASSERT_TRUE(fs_a->Create("/on-a").ok());
  ASSERT_TRUE(fs_b->Create("/on-b").ok());
  slot.Install("a", fs_a, SafetyLevel::kOwnershipSafe);
  slot.Install("b", fs_b, SafetyLevel::kVerified);

  auto caller = [&slot](const std::string& path) { return slot.Active()->Stat(path).ok(); };
  EXPECT_TRUE(caller("/on-a"));
  EXPECT_FALSE(caller("/on-b"));
  ASSERT_TRUE(slot.SwitchTo("b").ok());
  EXPECT_FALSE(caller("/on-a"));
  EXPECT_TRUE(caller("/on-b"));
}

}  // namespace
}  // namespace skern
