// Tests for the workload library: every personality runs cleanly on every
// file system, moves the traffic it promises, and — run under enforcing
// refinement — never diverges from the specification.
#include <gtest/gtest.h>

#include <memory>

#include "src/block/block_device.h"
#include "src/core/workload.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

struct WorkloadCase {
  WorkloadKind kind;
  uint64_t seed;
};

class WorkloadTest : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  void SetUp() override {
    LockRegistry::Get().ResetForTesting();
    RefinementStats::Get().ResetForTesting();
    SetRefinementMode(RefinementMode::kEnforcing);
  }
};

TEST_P(WorkloadTest, RunsSpecCheckedWithoutDivergence) {
  const auto param = GetParam();
  RamDisk disk(4096, param.seed);
  auto safefs = SafeFs::Format(disk, 256, 512).value();
  SpecFs spec(safefs);
  WorkloadConfig config;
  config.kind = param.kind;
  config.seed = param.seed;
  config.file_population = 16;
  config.mean_file_size = 2048;
  WorkloadDriver driver(spec, config);
  ASSERT_TRUE(driver.Setup().ok());
  const auto& result = driver.Run(800);  // enforcing mode panics on mismatch
  EXPECT_EQ(result.ops, 800u);
  EXPECT_EQ(RefinementStats::Get().mismatch_count(), 0u);
  EXPECT_GT(result.bytes_read + result.bytes_written, 0u);
}

TEST_P(WorkloadTest, DeterministicPerSeed) {
  const auto param = GetParam();
  auto run = [&](uint64_t seed) {
    MemFs fs;
    WorkloadConfig config;
    config.kind = param.kind;
    config.seed = seed;
    config.file_population = 12;
    WorkloadDriver driver(fs, config);
    SKERN_CHECK(driver.Setup().ok());
    driver.Run(400);
    return driver.result();
  };
  auto a = run(param.seed);
  auto b = run(param.seed);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.fsyncs, b.fsyncs);
}

INSTANTIATE_TEST_SUITE_P(
    Personalities, WorkloadTest,
    ::testing::Values(WorkloadCase{WorkloadKind::kFileserver, 3},
                      WorkloadCase{WorkloadKind::kVarmail, 4},
                      WorkloadCase{WorkloadKind::kWebserver, 5},
                      WorkloadCase{WorkloadKind::kMetadata, 6},
                      WorkloadCase{WorkloadKind::kFileserver, 44},
                      WorkloadCase{WorkloadKind::kVarmail, 45},
                      WorkloadCase{WorkloadKind::kWebserver, 46},
                      WorkloadCase{WorkloadKind::kMetadata, 47}));

TEST(WorkloadPersonalityTest, VarmailIsFsyncHeavy) {
  MemFs fs;
  WorkloadConfig config;
  config.kind = WorkloadKind::kVarmail;
  config.seed = 9;
  WorkloadDriver driver(fs, config);
  ASSERT_TRUE(driver.Setup().ok());
  driver.Run(500);
  EXPECT_GT(driver.result().fsyncs, 100u);
}

TEST(WorkloadPersonalityTest, WebserverIsReadMostly) {
  MemFs fs;
  WorkloadConfig config;
  config.kind = WorkloadKind::kWebserver;
  config.seed = 10;
  WorkloadDriver driver(fs, config);
  ASSERT_TRUE(driver.Setup().ok());
  driver.Run(1000);
  // Setup writes the population; steady-state traffic is dominated by reads.
  EXPECT_GT(driver.result().bytes_read, driver.result().bytes_written * 4);
}

TEST(WorkloadPersonalityTest, NamesComplete) {
  for (auto kind : {WorkloadKind::kFileserver, WorkloadKind::kVarmail,
                    WorkloadKind::kWebserver, WorkloadKind::kMetadata}) {
    EXPECT_STRNE(WorkloadKindName(kind), "?");
  }
}

}  // namespace
}  // namespace skern
