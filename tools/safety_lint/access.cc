#include "tools/safety_lint/access.h"

#include <algorithm>
#include <array>

namespace skern {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Shared token helpers (mirrors of the rule engine's local helpers; small
// enough that sharing them is not worth widening lint.h's surface).
// ---------------------------------------------------------------------------

bool WindowContains(const std::vector<Token>& tokens, size_t begin, size_t end,
                    const std::string& word) {
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].text == word) {
      return true;
    }
  }
  return false;
}

bool HasTopLevelAssign(const std::vector<Token>& tokens, size_t begin, size_t end) {
  int paren = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[") {
      ++paren;
    } else if (t == ")" || t == "]") {
      --paren;
    } else if (t == "=" && paren == 0) {
      return true;
    }
  }
  return false;
}

bool IsCallKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" || t == "return" ||
         t == "sizeof" || t == "alignof" || t == "catch" || t == "throw" || t == "new" ||
         t == "delete" || t == "static_assert" || t == "decltype" || t == "noexcept" ||
         t == "assert";
}

// First identifier in [begin, end) that is immediately followed by `(` — the
// declared/defined function's name. Returns its index or `end`.
size_t FunctionNameIndex(const std::vector<Token>& tokens, size_t begin, size_t end) {
  for (size_t i = begin; i + 1 < end; ++i) {
    if (tokens[i].is_ident && !IsCallKeyword(tokens[i].text) && tokens[i + 1].text == "(") {
      return i;
    }
  }
  return end;
}

// Class qualifier of the name at `name_index`: an explicit `Cls::` wins,
// otherwise the innermost enclosing class scope.
std::string QualifierOf(const std::vector<Token>& tokens, size_t name_index, size_t begin,
                        const std::string& enclosing_class) {
  if (name_index >= 2 && name_index - 2 >= begin && tokens[name_index - 1].text == "::" &&
      tokens[name_index - 2].is_ident) {
    return tokens[name_index - 2].text;
  }
  return enclosing_class;
}

// Union of literal kWant* identifier bits inside the balanced paren group
// opening at `open`. kAccessMaskUnknown when none appear (a computed mask).
uint32_t WantMaskOfArgs(const std::vector<Token>& tokens, size_t open, AccessIndex* index) {
  if (open >= tokens.size() || tokens[open].text != "(") {
    return kAccessMaskUnknown;
  }
  uint32_t mask = 0;
  bool any = false;
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") {
      ++depth;
    } else if (tokens[i].text == ")") {
      if (--depth == 0) {
        break;
      }
    } else if (tokens[i].is_ident && tokens[i].text.rfind("kWant", 0) == 0) {
      auto [it, inserted] = index->want_bits.emplace(
          tokens[i].text, 1u << static_cast<uint32_t>(index->want_bits.size()));
      mask |= it->second;
      any = true;
    }
  }
  return any ? mask : kAccessMaskUnknown;
}

// Processes one declaration/definition statement window for the three access
// annotations, attaching them to the function name in the statement.
void AttachAnnotations(const std::vector<Token>& tokens, size_t begin, size_t end,
                       const std::string& enclosing_class, AccessIndex* index) {
  bool has_entry = false;
  bool has_no_check = false;
  bool has_protected = false;
  for (size_t i = begin; i < end; ++i) {
    if (!tokens[i].is_ident) {
      continue;
    }
    if (i > begin && tokens[i - 1].text == "define") {
      continue;  // the macro's own definition in annotations.h
    }
    if (tokens[i].text == "SKERN_ENTRY") {
      has_entry = true;
    } else if (tokens[i].text == "SKERN_NO_ACCESS_CHECK") {
      has_no_check = true;
    } else if (tokens[i].text == "SKERN_PROTECTED") {
      has_protected = true;
    }
  }
  if (!has_entry && !has_no_check && !has_protected) {
    return;
  }
  size_t name_index = FunctionNameIndex(tokens, begin, end);
  if (name_index == end) {
    return;
  }
  const std::string& name = tokens[name_index].text;
  if (has_protected) {
    index->protected_names.insert(name);
  }
  if (has_entry || has_no_check) {
    std::string cls = QualifierOf(tokens, name_index, begin, enclosing_class);
    std::string qualified = cls.empty() ? name : cls + "::" + name;
    if (has_entry) {
      index->entries.insert(qualified);
    }
    if (has_no_check) {
      index->no_check_entries.insert(qualified);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Indexing
// ---------------------------------------------------------------------------

void IndexFileForAccess(const std::string& virtual_path, const FileTokens& file,
                        AccessIndex* index) {
  const std::vector<Token>& tokens = file.tokens;

  enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };
  struct Scope {
    ScopeKind kind;
    std::string name;  // class name for kClass
  };
  std::vector<Scope> stack;
  int function_depth = 0;
  size_t stmt_start = 0;
  size_t current_def = static_cast<size_t>(-1);

  auto enclosing_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == ScopeKind::kClass) {
        return it->name;
      }
    }
    return "";
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;

    // Inside a function body: record call sites in token (i.e. path) order.
    if (function_depth > 0 && current_def != static_cast<size_t>(-1) && tokens[i].is_ident &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(" && !IsCallKeyword(t)) {
      AccessCall call;
      call.name = t;
      call.line = tokens[i].line;
      const std::string& prev = i > 0 ? tokens[i - 1].text : std::string();
      if (prev == "." || prev == "->") {
        call.member = true;
      } else if (prev == "::" && i >= 2 && tokens[i - 2].is_ident) {
        call.qualifier = tokens[i - 2].text;
      }
      call.mask = WantMaskOfArgs(tokens, i + 1, index);
      index->defs[current_def].calls.push_back(call);
      continue;
    }

    if (t == ";") {
      if (function_depth == 0) {
        AttachAnnotations(tokens, stmt_start, i, enclosing_class(), index);
        stmt_start = i + 1;
      }
      continue;
    }
    if (t == "{") {
      ScopeKind kind = ScopeKind::kBlock;
      std::string name;
      if (function_depth > 0) {
        kind = ScopeKind::kBlock;
      } else if (WindowContains(tokens, stmt_start, i, "namespace")) {
        kind = ScopeKind::kNamespace;
      } else if (WindowContains(tokens, stmt_start, i, "class") ||
                 WindowContains(tokens, stmt_start, i, "struct") ||
                 WindowContains(tokens, stmt_start, i, "union") ||
                 WindowContains(tokens, stmt_start, i, "enum")) {
        kind = ScopeKind::kClass;
        for (size_t j = i; j > stmt_start; --j) {
          const Token& tok = tokens[j - 1];
          if (tok.is_ident && tok.text != "final" && tok.text != "public" &&
              tok.text != "private" && tok.text != "protected" && tok.text != "virtual") {
            name = tok.text;
            break;
          }
        }
      } else if (WindowContains(tokens, stmt_start, i, "(") &&
                 !HasTopLevelAssign(tokens, stmt_start, i)) {
        kind = ScopeKind::kFunction;
        AttachAnnotations(tokens, stmt_start, i, enclosing_class(), index);
        size_t name_index = FunctionNameIndex(tokens, stmt_start, i);
        AccessFunction def;
        def.file = virtual_path;
        def.line = tokens[i].line;
        if (name_index != i) {
          const std::string& fn = tokens[name_index].text;
          std::string cls = QualifierOf(tokens, name_index, stmt_start, enclosing_class());
          def.qualified = cls.empty() ? fn : cls + "::" + fn;
        }
        current_def = index->defs.size();
        index->defs.push_back(def);
        if (!index->defs.back().qualified.empty()) {
          index->defs_by_name[index->defs.back().qualified].push_back(current_def);
        }
        ++function_depth;
      }
      stack.push_back({kind, name});
      stmt_start = i + 1;
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) {
        if (stack.back().kind == ScopeKind::kFunction) {
          if (--function_depth == 0) {
            current_def = static_cast<size_t>(-1);
          }
        }
        stack.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Reachability analysis
// ---------------------------------------------------------------------------

namespace {

struct PathState {
  bool checked = false;
  uint32_t governing = kAccessMaskUnknown;
};

struct AccessorSite {
  std::string file;
  int line = 0;
  std::string entry;
};

struct Analyzer {
  const AccessIndex& index;
  const Config& config;
  AccessResult* result;
  // (def index, checked, governing) states already explored.
  std::set<std::array<uint64_t, 2>> memo;
  // Accessor name -> governing mask -> first site reached under that mask.
  std::map<std::string, std::map<uint32_t, AccessorSite>> sites;
  // A001 dedup: one finding per call site.
  std::set<std::pair<std::string, int>> reported_unchecked;

  std::string MaskToString(uint32_t mask) const {
    if (mask == kAccessMaskUnknown) {
      return "<unknown>";
    }
    std::string out;
    for (const auto& [name, bit] : index.want_bits) {
      if ((mask & bit) != 0) {
        out += (out.empty() ? "" : "|") + name;
      }
    }
    return out.empty() ? "<none>" : out;
  }

  void Walk(size_t def_index, PathState state, const std::string& entry) {
    std::array<uint64_t, 2> key = {def_index * 2 + (state.checked ? 1 : 0), state.governing};
    if (!memo.insert(key).second) {
      return;
    }
    const AccessFunction& def = index.defs[def_index];
    for (const AccessCall& call : def.calls) {
      if (config.access_check_functions.count(call.name) != 0) {
        state.checked = true;
        state.governing = call.mask;
        continue;
      }
      if (call.member) {
        if (index.protected_names.count(call.name) != 0) {
          ++result->accessor_sites_reached;
          if (!state.checked) {
            if (reported_unchecked.emplace(def.file, call.line).second) {
              result->findings.push_back(
                  {def.file, call.line, "A001",
                   "protected accessor `" + call.name + "` is reachable from entry `" + entry +
                       "` with no permission check on the path",
                   "call one of the [access] check_functions before dispatching, or mark "
                   "the entry SKERN_NO_ACCESS_CHECK"});
            }
          } else if (state.governing != kAccessMaskUnknown) {
            sites[call.name].emplace(state.governing, AccessorSite{def.file, call.line, entry});
          }
        }
        continue;  // member calls are never traversed (receiver unknown)
      }
      // Traversable edge: Cls::-qualified, enclosing-class member, or free.
      auto descend = [&](const std::string& target) {
        auto it = index.defs_by_name.find(target);
        if (it == index.defs_by_name.end()) {
          return false;
        }
        for (size_t callee : it->second) {
          Walk(callee, state, entry);
        }
        return true;
      };
      if (!call.qualifier.empty()) {
        if (!descend(call.qualifier + "::" + call.name)) {
          descend(call.name);
        }
        continue;
      }
      size_t scope = def.qualified.rfind("::");
      if (scope != std::string::npos &&
          descend(def.qualified.substr(0, scope) + "::" + call.name)) {
        continue;
      }
      descend(call.name);
    }
  }

  void ReportWeakChecks() {
    for (const auto& [accessor, by_mask] : sites) {
      for (const auto& [weak, weak_site] : by_mask) {
        for (const auto& [strong, strong_site] : by_mask) {
          if (weak == strong || (weak & strong) != weak) {
            continue;  // not a strict subset
          }
          result->findings.push_back(
              {weak_site.file, weak_site.line, "A002",
               "accessor `" + accessor + "` reached under a weaker permission check (" +
                   MaskToString(weak) + " via entry `" + weak_site.entry +
                   "`) than on another path (" + MaskToString(strong) + " via entry `" +
                   strong_site.entry + "`)",
               "check the same want bits on every path that reaches an accessor"});
          break;  // one finding per weak mask is enough
        }
      }
    }
  }
};

}  // namespace

AccessResult AnalyzeAccess(const AccessIndex& index, const Config& config) {
  AccessResult result;
  Analyzer analyzer{index, config, &result, {}, {}, {}};
  for (const std::string& entry : index.entries) {
    if (index.no_check_entries.count(entry) != 0) {
      continue;  // tallied below
    }
    auto it = index.defs_by_name.find(entry);
    if (it == index.defs_by_name.end()) {
      continue;  // declaration with no body in the indexed set
    }
    ++result.entries_analyzed;
    for (size_t def : it->second) {
      analyzer.Walk(def, PathState{}, entry);
    }
  }
  analyzer.ReportWeakChecks();
  result.no_access_check_escapes = static_cast<int>(index.no_check_entries.size());
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return result;
}

}  // namespace lint
}  // namespace skern
