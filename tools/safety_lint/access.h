// ACHyb-style interprocedural permission-check reachability analysis.
//
// The kernel's access-control story (DESIGN.md §4j) is: every syscall-plane
// function is annotated SKERN_ENTRY, every FileSystem resource accessor is
// SKERN_PROTECTED, and a small reviewed list of check functions
// (layers.toml [access] check_functions) is the only way a path becomes
// "checked". This pass builds a cross-file function index and call graph
// from the shared token streams and walks every path from an entry to a
// protected accessor, carrying two pieces of per-path state:
//
//   * checked      — has ANY check function been called on this path?
//   * governing    — the kWant* bit mask of the *last* check before the
//                    accessor (kAccessMaskUnknown when the call site passed
//                    no literal kWant tokens, e.g. a computed mask).
//
// Rules (stable ids, reported as lint Findings):
//   A001  a protected accessor is reachable from an entry with no permission
//         check anywhere on the path (the classic missing-check CVE shape).
//   A002  the same accessor is reached under a strictly weaker governing
//         mask on one path than on another (the weaker-check CVE shape:
//         one caller checks kWantRead|kWantWrite, another only kWantRead).
//
// Escape hatch: SKERN_NO_ACCESS_CHECK on an entry skips it (Close/Seek/
// Fsync/SyncAll touch no permission-bearing namespace object); every use is
// tallied so the exemption count is a visible, reviewable number.
//
// Deliberate limits (this is a linter, not a verifier): paths are the
// linearized token order of each body — branches are not modeled, so a check
// anywhere before an accessor in the same body counts. Member calls
// (`x.F(...)`, `x->F(...)`) are resolved only against the protected-accessor
// and check-function name sets, never traversed (receiver types are
// unknown); unqualified and Class::-qualified calls are traversed through
// the index. Checks do not propagate out of helper functions — only the
// configured check list "counts", which is exactly what makes adding a new
// check wrapper a reviewed config change.
#ifndef SKERN_TOOLS_SAFETY_LINT_ACCESS_H_
#define SKERN_TOOLS_SAFETY_LINT_ACCESS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/safety_lint/lint.h"

namespace skern {
namespace lint {

// Sentinel governing mask: a check ran, but its want bits are not statically
// known at the call site. Counts for A001, excluded from A002 comparisons.
constexpr uint32_t kAccessMaskUnknown = 0xFFFFFFFFu;

// One call site inside a function body, in token order.
struct AccessCall {
  std::string name;       // unqualified callee identifier
  std::string qualifier;  // "Cls" when written Cls::name(...), else ""
  bool member = false;    // written x.name(...) or x->name(...)
  uint32_t mask = kAccessMaskUnknown;  // union of literal kWant* bits in args
  int line = 0;
};

// One function definition (a body) in the indexed tree.
struct AccessFunction {
  std::string qualified;  // "Vfs::Mkdir", or "Normalize" for free functions
  std::string file;       // virtual path of the defining file
  int line = 0;           // line of the body's opening brace
  std::vector<AccessCall> calls;
};

// Cross-file index: definitions, annotations, and the kWant bit universe.
struct AccessIndex {
  std::vector<AccessFunction> defs;
  // Qualified name -> def indices (overload sets share a name; every body
  // is analyzed as an alternative path).
  std::map<std::string, std::vector<size_t>> defs_by_name;
  // Qualified names of SKERN_ENTRY functions, and of the
  // SKERN_NO_ACCESS_CHECK subset among them.
  std::set<std::string> entries;
  std::set<std::string> no_check_entries;
  // Unqualified names of SKERN_PROTECTED accessors.
  std::set<std::string> protected_names;
  // kWant* identifier -> bit, assigned in encounter order so masks compare
  // consistently across files.
  std::map<std::string, uint32_t> want_bits;
};

// Adds one file's function bodies and annotations to the index. Only src/
// files (by virtual path) are expected; the caller filters.
void IndexFileForAccess(const std::string& virtual_path, const FileTokens& file,
                        AccessIndex* index);

struct AccessResult {
  std::vector<Finding> findings;  // A001/A002, sorted by file/line/rule
  int no_access_check_escapes = 0;
  int entries_analyzed = 0;
  int accessor_sites_reached = 0;
};

// Walks every entry -> accessor path and applies A001/A002.
AccessResult AnalyzeAccess(const AccessIndex& index, const Config& config);

}  // namespace lint
}  // namespace skern

#endif  // SKERN_TOOLS_SAFETY_LINT_ACCESS_H_
