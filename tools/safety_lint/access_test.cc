// Self-tests for the interprocedural access-reachability analysis: the
// seeded missing-check and weaker-check fixtures are flagged with A001/A002,
// the clean fixture stays quiet with its escape tallied, and the annotation
// attachment / mask semantics hold on focused inline snippets.
#include "tools/safety_lint/access.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace skern {
namespace lint {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Config ShippedConfig() {
  Config config;
  std::string error;
  EXPECT_TRUE(ParseConfig(ReadFileOrDie(SAFETY_LINT_CONFIG), &config, &error)) << error;
  return config;
}

// Indexes one source blob under `virtual_path` and runs the analysis.
AccessResult AnalyzeSource(const std::string& virtual_path, const std::string& content) {
  AccessIndex index;
  IndexFileForAccess(virtual_path, TokenizeSource(content), &index);
  return AnalyzeAccess(index, ShippedConfig());
}

// Analyzes one testdata fixture and returns (rule -> count, result).
AccessResult AnalyzeFixture(const std::string& name) {
  std::string content = ReadFileOrDie(std::string(SAFETY_LINT_TESTDATA) + "/" + name);
  std::string virtual_path = LintAsOverride(content);
  EXPECT_FALSE(virtual_path.empty()) << name << " is missing its // lint-as: directive";
  return AnalyzeSource(virtual_path, content);
}

std::map<std::string, int> RuleCounts(const AccessResult& result) {
  std::map<std::string, int> counts;
  for (const Finding& finding : result.findings) {
    EXPECT_GT(finding.line, 0);
    EXPECT_FALSE(finding.message.empty());
    EXPECT_FALSE(finding.hint.empty()) << finding.rule << " must carry a fix hint";
    ++counts[finding.rule];
  }
  return counts;
}

TEST(AccessConfig, ShippedCheckFunctionListParses) {
  Config config = ShippedConfig();
  EXPECT_GE(config.access_check_functions.size(), 5u);
  EXPECT_EQ(config.access_check_functions.count("CheckPermission"), 1u);
  EXPECT_EQ(config.access_check_functions.count("HasCap"), 1u);
}

TEST(AccessConfig, UnknownAccessKeyRejected) {
  Config config;
  std::string error;
  EXPECT_FALSE(ParseConfig("[layers]\n\"src/fs\" = 1\n[access]\nbogus = [\"x\"]\n", &config,
                           &error));
  EXPECT_NE(error.find("unknown access key"), std::string::npos);
}

TEST(AccessFixtures, MissingCheckFlagged) {
  AccessResult result = AnalyzeFixture("bad_access_missing.cc");
  auto counts = RuleCounts(result);
  EXPECT_EQ(counts["A001"], 1);
  EXPECT_EQ(counts["A002"], 0);
  EXPECT_EQ(result.no_access_check_escapes, 0);
}

TEST(AccessFixtures, WeakerCheckFlagged) {
  AccessResult result = AnalyzeFixture("bad_access_weak.cc");
  auto counts = RuleCounts(result);
  EXPECT_EQ(counts["A001"], 0);
  EXPECT_EQ(counts["A002"], 1);
  // The finding names both masks and both entries.
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("WeakPath"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("StrongPath"), std::string::npos);
}

// The annotated copy of src/cve/accessctl.cc's write paths: both CVE shapes
// in one translation unit, caught by their respective rules.
TEST(AccessFixtures, CveAccessctlPairCaught) {
  AccessResult result = AnalyzeFixture("cve_accessctl.cc");
  auto counts = RuleCounts(result);
  EXPECT_EQ(counts["A001"], 1);
  EXPECT_EQ(counts["A002"], 1);
  EXPECT_EQ(result.entries_analyzed, 3);
  // A001 lands in the missing-check body, A002 in the weak-check body.
  for (const Finding& finding : result.findings) {
    if (finding.rule == "A001") {
      EXPECT_NE(finding.message.find("WriteMissingCheck"), std::string::npos);
    } else {
      EXPECT_NE(finding.message.find("WriteWeakCheck"), std::string::npos);
      EXPECT_NE(finding.message.find("WriteFixed"), std::string::npos);
    }
  }
}

TEST(AccessFixtures, CleanFixtureQuietWithEscapeTallied) {
  AccessResult result = AnalyzeFixture("good_access.cc");
  EXPECT_TRUE(result.findings.empty())
      << "unexpected: " << FormatFinding(result.findings.front());
  EXPECT_EQ(result.no_access_check_escapes, 1);
  EXPECT_EQ(result.entries_analyzed, 2);
  EXPECT_GE(result.accessor_sites_reached, 2);
}

// Entry attachment works on out-of-class definitions with explicit
// qualification, and the check state flows through a traversed helper.
TEST(AccessAnalysis, QualifiedDefinitionAttachment) {
  const char* src = R"(
    class Store { public: SKERN_PROTECTED int Poke(int b); };
    class Sys { public: SKERN_ENTRY int Go(int b); int CheckPermission(int w); Store s_; };
    int Sys::Go(int b) { return s_.Poke(b); }
  )";
  AccessResult result = AnalyzeSource("src/vfs/t.cc", src);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "A001");
  EXPECT_NE(result.findings[0].message.find("Sys::Go"), std::string::npos);
}

// A computed mask (no literal kWant tokens at the call site) still counts
// for A001 but is excluded from A002's subset comparison.
TEST(AccessAnalysis, UnknownMaskCountsForA001NotA002) {
  const char* src = R"(
    class Store { public: SKERN_PROTECTED int Poke(int b); };
    class Sys {
     public:
      SKERN_ENTRY int Computed(int b, int w);
      SKERN_ENTRY int Literal(int b);
      int CheckPermission(int w);
      Store s_;
    };
    int Sys::Computed(int b, int w) {
      if (CheckPermission(w) != 0) { return -1; }
      return s_.Poke(b);
    }
    int Sys::Literal(int b) {
      if (CheckPermission(kWantRead | kWantWrite) != 0) { return -1; }
      return s_.Poke(b);
    }
  )";
  AccessResult result = AnalyzeSource("src/vfs/t.cc", src);
  EXPECT_TRUE(result.findings.empty())
      << "unexpected: " << FormatFinding(result.findings.front());
}

// A member-syntax call to a configured check function (the aio plane's
// vfs_.CheckFileAccess idiom) counts as a check.
TEST(AccessAnalysis, MemberSyntaxCheckCounts) {
  const char* src = R"(
    class Store { public: SKERN_PROTECTED int Poke(int b); };
    class Sys {
     public:
      SKERN_ENTRY int Go(int b);
      Store s_;
    };
    int Sys::Go(int b) {
      if (helper_.CheckFileAccess(b, kWantWrite) != 0) { return -1; }
      return s_.Poke(b);
    }
  )";
  AccessResult result = AnalyzeSource("src/vfs/t.cc", src);
  EXPECT_TRUE(result.findings.empty())
      << "unexpected: " << FormatFinding(result.findings.front());
}

// Checks inside an UNconfigured helper do not launder the caller's path:
// only the [access] list confers check-ness.
TEST(AccessAnalysis, NoTransitiveCheckPropagation) {
  const char* src = R"(
    class Store { public: SKERN_PROTECTED int Poke(int b); };
    class Sys {
     public:
      SKERN_ENTRY int Go(int b);
      int MyOwnGate(int b);
      int CheckPermission(int w);
      Store s_;
    };
    int Sys::MyOwnGate(int b) { return CheckPermission(kWantWrite); }
    int Sys::Go(int b) {
      MyOwnGate(b);
      return s_.Poke(b);
    }
  )";
  // The helper IS traversed, and its CheckPermission call updates the
  // traversal state inside the helper only; the caller's subsequent
  // accessor is still reached... through the traversal the state is copied
  // per call, so the check inside MyOwnGate does NOT mark Go's path.
  AccessResult result = AnalyzeSource("src/vfs/t.cc", src);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "A001");
}

}  // namespace
}  // namespace lint
}  // namespace skern
