#include "tools/safety_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace skern {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

bool IsIdentCharRaw(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks comments and string/char literal contents, preserving newlines (so
// token line numbers match the file) and the quote characters themselves.
// Also records, per line, whether the line *started* inside a block comment
// (those lines are skipped by the raw-line include scan).
std::string StripCommentsAndStrings(const std::string& src, std::vector<bool>* line_in_comment) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  line_in_comment->clear();
  line_in_comment->push_back(false);
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        state = State::kCode;
      }
      out.push_back('\n');
      line_in_comment->push_back(state == State::kBlockComment);
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back('"');
        } else if (c == '\'') {
          if (i > 0 && IsIdentCharRaw(src[i - 1]) && IsIdentCharRaw(next)) {
            out.push_back(' ');  // C++14 digit separator (0x1234'5678)
          } else {
            state = State::kChar;
            out.push_back('\'');
          }
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        out.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.append("  ");
          ++i;
        } else {
          out.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          out.append("  ");
          ++i;
          if (next == '\n') {
            out.back() = '\n';
            line_in_comment->push_back(false);
          }
        } else if (c == '"') {
          state = State::kCode;
          out.push_back('"');
        } else {
          out.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out.append("  ");
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back('\'');
        } else {
          out.push_back(' ');
        }
        break;
    }
  }
  return out;
}

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

std::vector<Token> Tokenize(const std::string& stripped) {
  std::vector<Token> tokens;
  int line = 1;
  for (size_t i = 0; i < stripped.size();) {
    char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < stripped.size() && IsIdentChar(stripped[j])) {
        ++j;
      }
      tokens.push_back({stripped.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    // Multi-char punctuation the rules care about.
    if (c == ':' && i + 1 < stripped.size() && stripped[i + 1] == ':') {
      tokens.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < stripped.size() && stripped[i + 1] == '>') {
      tokens.push_back({"->", line, false});
      i += 2;
      continue;
    }
    tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool HasPrefixIn(const std::string& path, const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (StartsWith(path, prefix)) {
      return true;
    }
  }
  return false;
}

// "src/fs/safefs/safefs.cc" -> "src/fs"; "" if not under src/.
std::string ModuleOf(const std::string& path) {
  if (!StartsWith(path, "src/")) {
    return "";
  }
  size_t slash = path.find('/', 4);
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(0, slash);
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Include extraction (raw lines; directives never span lines in this tree)
// ---------------------------------------------------------------------------

struct Include {
  std::string target;
  bool angled = false;
  int line = 0;
};

std::vector<Include> ExtractIncludes(const std::string& src, const std::vector<bool>& line_in_comment) {
  std::vector<Include> includes;
  std::istringstream is(src);
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    if (static_cast<size_t>(line - 1) < line_in_comment.size() && line_in_comment[line - 1]) {
      continue;
    }
    size_t cut = raw.find("//");
    std::string text = Trim(cut == std::string::npos ? raw : raw.substr(0, cut));
    if (text.empty() || text[0] != '#') {
      continue;
    }
    std::string body = Trim(text.substr(1));
    if (!StartsWith(body, "include")) {
      continue;
    }
    body = Trim(body.substr(7));
    if (body.size() < 2) {
      continue;
    }
    char open = body[0];
    char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
    if (close == '\0') {
      continue;
    }
    size_t end = body.find(close, 1);
    if (end == std::string::npos) {
      continue;
    }
    includes.push_back({body.substr(1, end - 1), open == '<', line});
  }
  return includes;
}

// ---------------------------------------------------------------------------
// Function-span scanner
// ---------------------------------------------------------------------------
// Token-level brace tracking, enough to answer: is token i inside a function
// body, and what did that function's header say (SKERN_REQUIRES /
// SKERN_NO_TSA / constructor-or-destructor)? Namespace and class scopes are
// distinguished from function bodies by the statement window preceding `{`.

struct FunctionSpan {
  size_t header_start = 0;  // first token of the declaration statement
  size_t body_start = 0;    // index of the opening `{`
  size_t body_end = 0;      // index of the matching `}` (exclusive span)
  std::string name;         // unqualified function name, "" if not found
  bool has_requires = false;
  bool has_no_tsa = false;
  bool is_ctor_dtor = false;
};

// Scope kinds for the context stack.
enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };

struct Scope {
  ScopeKind kind;
  std::string name;       // class name for kClass
  size_t function_index;  // into spans, for kFunction
};

// Does the statement window contain a top-level `=` (i.e. outside parens /
// angle brackets)? A `=` means "initializer", not a function definition —
// but default arguments (`int x = 3` inside the parameter list) must not
// count.
bool HasTopLevelAssign(const std::vector<Token>& tokens, size_t begin, size_t end) {
  int paren = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[") {
      ++paren;
    } else if (t == ")" || t == "]") {
      --paren;
    } else if (t == "=" && paren == 0) {
      return true;
    }
  }
  return false;
}

bool WindowContains(const std::vector<Token>& tokens, size_t begin, size_t end,
                    const std::string& word) {
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].text == word) {
      return true;
    }
  }
  return false;
}

// Analyzes the declaration window [header_start, body_open) of a function.
void AnalyzeHeader(const std::vector<Token>& tokens, size_t header_start, size_t body_open,
                   const std::string& enclosing_class, FunctionSpan* span) {
  span->has_requires = WindowContains(tokens, header_start, body_open, "SKERN_REQUIRES") ||
                       WindowContains(tokens, header_start, body_open, "SKERN_REQUIRES_SHARED");
  span->has_no_tsa = WindowContains(tokens, header_start, body_open, "SKERN_NO_TSA");
  // Constructor / destructor detection: `X::X(`, `X::~X(`, or — inside class
  // X — `X(` / `~X(` as the identifier directly before the parameter list.
  for (size_t i = header_start; i + 1 < body_open; ++i) {
    if (tokens[i].text != "(") {
      continue;
    }
    // Identifier before the first `(` is the function name.
    if (i == header_start || !tokens[i - 1].is_ident) {
      break;
    }
    const std::string& name = tokens[i - 1].text;
    span->name = name;
    bool dtor = i >= 2 && tokens[i - 2].text == "~";
    size_t qual = dtor ? 3 : 2;  // tokens back to a possible `::`
    if (i >= qual && tokens[i - qual].text == "::" && i >= qual + 1 &&
        tokens[i - qual - 1].text == name) {
      span->is_ctor_dtor = true;  // X::X( or X::~X(
    } else if (!enclosing_class.empty() && name == enclosing_class) {
      span->is_ctor_dtor = true;  // in-class X( or ~X(
    }
    break;
  }
}

// Walks the token stream and produces every function body span. Also leaves
// class names on a side map so G001 can skip constructors.
std::vector<FunctionSpan> FindFunctions(const std::vector<Token>& tokens) {
  std::vector<FunctionSpan> spans;
  std::vector<Scope> stack;
  int function_depth = 0;
  size_t stmt_start = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == ";" && function_depth == 0) {
      stmt_start = i + 1;
      continue;
    }
    if (t == "{") {
      ScopeKind kind = ScopeKind::kBlock;
      std::string name;
      size_t function_index = 0;
      if (function_depth > 0) {
        kind = ScopeKind::kBlock;  // any brace inside a function body
      } else if (WindowContains(tokens, stmt_start, i, "namespace")) {
        kind = ScopeKind::kNamespace;
      } else if (WindowContains(tokens, stmt_start, i, "class") ||
                 WindowContains(tokens, stmt_start, i, "struct") ||
                 WindowContains(tokens, stmt_start, i, "union") ||
                 WindowContains(tokens, stmt_start, i, "enum")) {
        kind = ScopeKind::kClass;
        // Class name: last identifier before `{`, `:` or `final`.
        for (size_t j = i; j > stmt_start; --j) {
          const Token& tok = tokens[j - 1];
          if (tok.is_ident && tok.text != "final" && tok.text != "public" &&
              tok.text != "private" && tok.text != "protected" && tok.text != "virtual") {
            name = tok.text;
            break;
          }
          if (tok.text == ":") {
            continue;
          }
        }
        // `enum class X {` has no member functions; treat uniformly.
      } else if (WindowContains(tokens, stmt_start, i, "(") &&
                 !HasTopLevelAssign(tokens, stmt_start, i)) {
        kind = ScopeKind::kFunction;
        std::string enclosing_class;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          if (it->kind == ScopeKind::kClass) {
            enclosing_class = it->name;
            break;
          }
        }
        FunctionSpan span;
        span.header_start = stmt_start;
        span.body_start = i;
        AnalyzeHeader(tokens, stmt_start, i, enclosing_class, &span);
        function_index = spans.size();
        spans.push_back(span);
        ++function_depth;
      }
      stack.push_back({kind, name, function_index});
      stmt_start = i + 1;
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) {
        if (stack.back().kind == ScopeKind::kFunction) {
          --function_depth;
          spans[stack.back().function_index].body_end = i;
        }
        stack.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
  }
  // Unterminated spans (truncated input) close at EOF.
  for (FunctionSpan& span : spans) {
    if (span.body_end == 0) {
      span.body_end = tokens.size();
    }
  }
  return spans;
}

const FunctionSpan* EnclosingFunction(const std::vector<FunctionSpan>& spans, size_t index) {
  const FunctionSpan* best = nullptr;
  for (const FunctionSpan& span : spans) {
    if (span.body_start < index && index < span.body_end) {
      if (best == nullptr || span.body_start > best->body_start) {
        best = &span;  // innermost (lambdas nest)
      }
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// G001 support
// ---------------------------------------------------------------------------

const char* const kGuardTypes[] = {"MutexGuard", "SpinLockGuard", "ReadGuard",   "WriteGuard",
                                   "lock_guard", "unique_lock",   "shared_lock", "scoped_lock"};

bool IsGuardType(const std::string& text) {
  for (const char* guard : kGuardTypes) {
    if (text == guard) {
      return true;
    }
  }
  return false;
}

// Any identifier inside the (...) group starting at `open` equals `name`?
bool ParenGroupMentions(const std::vector<Token>& tokens, size_t open, const std::string& name) {
  if (open >= tokens.size() || tokens[open].text != "(") {
    return false;
  }
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") {
      ++depth;
    } else if (tokens[i].text == ")") {
      if (--depth == 0) {
        return false;
      }
    } else if (tokens[i].is_ident && tokens[i].text == name) {
      return true;
    }
  }
  return false;
}

// Is the named lock visibly acquired between `begin` and `access` (function
// body scan)? Recognizes RAII guards, direct Lock() calls, and held-lock
// assertions.
bool LockVisiblyHeld(const std::vector<Token>& tokens, size_t begin, size_t access,
                     const std::string& lock) {
  for (size_t i = begin; i < access; ++i) {
    const Token& tok = tokens[i];
    if (!tok.is_ident) {
      continue;
    }
    if (IsGuardType(tok.text)) {
      // GuardType name(lock-expr)  /  GuardType<..> name(lock-expr)
      for (size_t j = i + 1; j < std::min(access, i + 10); ++j) {
        if (tokens[j].text == "(") {
          if (ParenGroupMentions(tokens, j, lock)) {
            return true;
          }
          break;
        }
        if (tokens[j].text == ";") {
          break;
        }
      }
      continue;
    }
    if ((tok.text == "SKERN_ASSERT_HELD" || tok.text == "AssertHeld") && i + 1 < access &&
        ParenGroupMentions(tokens, i + 1, lock)) {
      return true;
    }
    if (tok.text == lock && i + 2 < access && (tokens[i + 1].text == "." || tokens[i + 1].text == "->")) {
      const std::string& method = tokens[i + 2].text;
      if (method == "Lock" || method == "lock" || method == "LockExclusive" ||
          method == "LockShared" || method == "lock_shared") {
        return true;
      }
    }
  }
  return false;
}

// Last identifier inside the (...) group at `open` — the lock name of a
// SKERN_GUARDED_BY(fs->mutex_) annotation.
std::string LastIdentInParenGroup(const std::vector<Token>& tokens, size_t open) {
  if (open >= tokens.size() || tokens[open].text != "(") {
    return "";
  }
  std::string last;
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") {
      ++depth;
    } else if (tokens[i].text == ")") {
      if (--depth == 0) {
        break;
      }
    } else if (tokens[i].is_ident) {
      last = tokens[i].text;
    }
  }
  return last;
}

// Function names carrying SKERN_REQUIRES on this declaration/definition:
// `ReturnType Name(args) [const] SKERN_REQUIRES(lock)`. Walks back from the
// macro over the qualifier tokens and the balanced parameter list.
std::set<std::string> CollectRequiresFromTokens(const std::vector<Token>& tokens) {
  std::set<std::string> methods;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text != "SKERN_REQUIRES" && tokens[i].text != "SKERN_REQUIRES_SHARED") {
      continue;
    }
    size_t j = i;
    while (j > 0 && (tokens[j - 1].text == "const" || tokens[j - 1].text == "noexcept" ||
                     tokens[j - 1].text == "override" || tokens[j - 1].text == "final")) {
      --j;
    }
    if (j == 0 || tokens[j - 1].text != ")") {
      continue;  // e.g. the macro's own #define
    }
    int depth = 0;
    size_t open = 0;
    for (size_t k = j; k > 0; --k) {
      if (tokens[k - 1].text == ")") {
        ++depth;
      } else if (tokens[k - 1].text == "(") {
        if (--depth == 0) {
          open = k - 1;
          break;
        }
      }
    }
    if (open > 0 && tokens[open - 1].is_ident) {
      methods.insert(tokens[open - 1].text);
    }
  }
  return methods;
}

std::vector<GuardedField> CollectGuardedFromTokens(const std::vector<Token>& tokens) {
  std::vector<GuardedField> fields;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text != "SKERN_GUARDED_BY" && tokens[i].text != "SKERN_PT_GUARDED_BY") {
      continue;
    }
    // Field name: identifier immediately before the macro.
    if (i == 0 || !tokens[i - 1].is_ident) {
      continue;
    }
    std::string lock = LastIdentInParenGroup(tokens, i + 1);
    if (lock.empty()) {
      continue;
    }
    fields.push_back({tokens[i - 1].text, lock, tokens[i].line});
  }
  return fields;
}

// ---------------------------------------------------------------------------
// Ban-rule allowances
// ---------------------------------------------------------------------------

// Start of the statement containing token i (previous `;`, `{` or `}`).
size_t StatementStart(const std::vector<Token>& tokens, size_t i) {
  for (size_t j = i; j > 0; --j) {
    const std::string& t = tokens[j - 1].text;
    if (t == ";" || t == "{" || t == "}") {
      return j;
    }
  }
  return 0;
}

// `static Foo* x = new Foo(...)` — the leaked-singleton idiom (never
// destroyed, so no shutdown-order use-after-free; allowed).
bool IsLeakedSingleton(const std::vector<Token>& tokens, size_t i) {
  size_t start = StatementStart(tokens, i);
  return WindowContains(tokens, start, i, "static");
}

// `unique_ptr<T>(new T...)` / `shared_ptr<T>(new T...)`: ownership is
// adopted on the same expression, so the raw pointer never escapes.
bool IsSmartPointerAdoption(const std::vector<Token>& tokens, size_t i) {
  size_t start = i > 10 ? i - 10 : 0;
  for (size_t j = i; j > start; --j) {
    const std::string& t = tokens[j - 1].text;
    if (t == "unique_ptr" || t == "shared_ptr" || t == "make_unique" || t == "make_shared" ||
        t == "WrapUnique") {
      return true;
    }
    if (t == ";" || t == "{" || t == "}") {
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// O001 support
// ---------------------------------------------------------------------------

// Does [begin, end) visibly acquire any lock: a RAII guard construction or a
// direct blocking-acquire method call (`x.Lock()`, `x->LockShared()`, ...)?
bool AcquiresAnyLock(const std::vector<Token>& tokens, size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (!tok.is_ident) {
      continue;
    }
    if (IsGuardType(tok.text)) {
      return true;
    }
    if ((tok.text == "Lock" || tok.text == "LockExclusive" || tok.text == "LockShared" ||
         tok.text == "lock" || tok.text == "lock_shared") &&
        i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

FileTokens TokenizeSource(const std::string& content) {
  FileTokens out;
  std::string stripped = StripCommentsAndStrings(content, &out.line_in_comment);
  out.tokens = Tokenize(stripped);
  return out;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ":" << finding.line << ": [" << finding.rule << "] " << finding.message;
  if (!finding.hint.empty()) {
    os << " (fix: " << finding.hint << ")";
  }
  return os.str();
}

bool ParseConfig(const std::string& text, Config* config, std::string* error) {
  std::istringstream is(text);
  std::string raw;
  std::string section;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "layers.toml:" + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  auto unquote = [](std::string s) {
    s = Trim(s);
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
      return s.substr(1, s.size() - 2);
    }
    return s;
  };
  while (std::getline(is, raw)) {
    ++line_no;
    size_t hash = raw.find('#');
    std::string text_line = Trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (text_line.empty()) {
      continue;
    }
    if (text_line.front() == '[') {
      if (text_line.back() != ']') {
        return fail("unterminated section header");
      }
      section = Trim(text_line.substr(1, text_line.size() - 2));
      continue;
    }
    size_t eq = text_line.find('=');
    if (eq == std::string::npos) {
      return fail("expected key = value");
    }
    std::string key = unquote(text_line.substr(0, eq));
    std::string value = Trim(text_line.substr(eq + 1));
    if (section == "layers") {
      try {
        config->layers[key] = std::stoi(value);
      } catch (...) {
        return fail("layer value must be an integer");
      }
    } else if (section == "allow") {
      if (value.empty() || value.front() != '[' || value.back() != ']') {
        return fail("allow values must be string arrays");
      }
      std::vector<std::string> items;
      std::string inner = value.substr(1, value.size() - 2);
      std::istringstream item_stream(inner);
      std::string item;
      while (std::getline(item_stream, item, ',')) {
        std::string cleaned = unquote(item);
        if (!cleaned.empty()) {
          items.push_back(cleaned);
        }
      }
      if (key == "include_everywhere") {
        config->include_everywhere.insert(items.begin(), items.end());
      } else if (key == "mutex_include") {
        config->mutex_include_allowed = items;
      } else if (key == "thread_spawn") {
        config->thread_spawn_allowed = items;
      } else if (key == "grandfathered") {
        config->grandfathered = items;
      } else {
        return fail("unknown allow key: " + key);
      }
    } else if (section == "access" || section == "slab") {
      if (value.empty() || value.front() != '[' || value.back() != ']') {
        return fail(section + " values must be string arrays");
      }
      std::vector<std::string> items;
      std::string inner = value.substr(1, value.size() - 2);
      std::istringstream item_stream(inner);
      std::string item;
      while (std::getline(item_stream, item, ',')) {
        std::string cleaned = unquote(item);
        if (!cleaned.empty()) {
          items.push_back(cleaned);
        }
      }
      if (section == "access" && key == "check_functions") {
        config->access_check_functions.insert(items.begin(), items.end());
      } else if (section == "slab" && key == "types") {
        config->slab_types.insert(items.begin(), items.end());
      } else {
        return fail("unknown " + section + " key: " + key);
      }
    } else {
      return fail("unknown section: " + section);
    }
  }
  if (config->layers.empty()) {
    line_no = 0;
    return fail("no [layers] entries");
  }
  return true;
}

std::string LintAsOverride(const std::string& content) {
  const std::string kDirective = "// lint-as:";
  size_t pos = content.find(kDirective);
  if (pos == std::string::npos) {
    return "";
  }
  size_t end = content.find('\n', pos);
  std::string rest = content.substr(pos + kDirective.size(),
                                    end == std::string::npos ? std::string::npos
                                                             : end - pos - kDirective.size());
  return Trim(rest);
}

std::vector<GuardedField> CollectGuardedFields(const FileTokens& file) {
  return CollectGuardedFromTokens(file.tokens);
}

std::vector<GuardedField> CollectGuardedFields(const std::string& content) {
  return CollectGuardedFields(TokenizeSource(content));
}

std::set<std::string> CollectRequiresMethods(const FileTokens& file) {
  return CollectRequiresFromTokens(file.tokens);
}

std::set<std::string> CollectRequiresMethods(const std::string& content) {
  return CollectRequiresMethods(TokenizeSource(content));
}

std::vector<Finding> LintFile(const std::string& virtual_path, const std::string& content,
                              const Config& config,
                              const std::vector<GuardedField>& companion_fields,
                              const std::set<std::string>& companion_requires,
                              int* no_tsa_escapes, int* no_slab_escapes) {
  return LintFile(virtual_path, content, TokenizeSource(content), config, companion_fields,
                  companion_requires, no_tsa_escapes, no_slab_escapes);
}

std::vector<Finding> LintFile(const std::string& virtual_path, const std::string& content,
                              const FileTokens& file, const Config& config,
                              const std::vector<GuardedField>& companion_fields,
                              const std::set<std::string>& companion_requires,
                              int* no_tsa_escapes, int* no_slab_escapes) {
  std::vector<Finding> findings;
  const std::vector<bool>& line_in_comment = file.line_in_comment;
  const std::vector<Token>& tokens = file.tokens;

  const bool in_src = StartsWith(virtual_path, "src/");
  const bool grandfathered = HasPrefixIn(virtual_path, config.grandfathered);
  const std::string module = ModuleOf(virtual_path);

  // --- include-driven rules (L001, S001) ---
  for (const Include& inc : ExtractIncludes(content, line_in_comment)) {
    if (!inc.angled && in_src && StartsWith(inc.target, "src/") &&
        config.include_everywhere.count(inc.target) == 0) {
      std::string target_module = ModuleOf(inc.target);
      auto from = config.layers.find(module);
      auto to = config.layers.find(target_module);
      if (from != config.layers.end() && to != config.layers.end() && module != target_module &&
          to->second >= from->second) {
        findings.push_back(
            {virtual_path, inc.line, "L001",
             "layering violation: " + module + " (layer " + std::to_string(from->second) +
                 ") may not include " + target_module + " (layer " + std::to_string(to->second) +
                 ")",
             "depend only on lower layers; lift the shared type into a lower module"});
      }
    }
    if (inc.angled && (inc.target == "mutex" || inc.target == "shared_mutex") && in_src &&
        !grandfathered && !HasPrefixIn(virtual_path, config.mutex_include_allowed)) {
      findings.push_back({virtual_path, inc.line, "S001",
                          "direct #include <" + inc.target + "> outside the sync layer",
                          "use skern::TrackedMutex / TrackedRwLock from src/sync/mutex.h"});
    }
  }

  // --- token-driven primitive bans (P00x) ---
  // src/mem is the allocator: the slab layer is built out of the raw
  // primitives the rest of the tree is banned from touching.
  const bool ban_alloc = in_src && !grandfathered && module != "src/base" &&
                         module != "src/ownership" && module != "src/mem";
  const bool ban_thread =
      in_src && !grandfathered && !HasPrefixIn(virtual_path, config.thread_spawn_allowed);
  const bool ban_memfns = in_src && !grandfathered && virtual_path != "src/base/bytes.h";
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (!tok.is_ident) {
      continue;
    }
    if (no_tsa_escapes != nullptr && tok.text == "SKERN_NO_TSA" && i > 0 &&
        tokens[i - 1].text == ")") {
      ++*no_tsa_escapes;  // used on a declaration (not the macro definition)
    }
    if (no_slab_escapes != nullptr && tok.text == "SKERN_NO_SLAB" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(" && (i == 0 || tokens[i - 1].text != "define")) {
      ++*no_slab_escapes;  // wrapped allocation (not the macro definition)
    }
    const std::string& prev = i > 0 ? tokens[i - 1].text : std::string();
    if (ban_alloc && tok.text == "new" && prev != "::" && !IsLeakedSingleton(tokens, i) &&
        !IsSmartPointerAdoption(tokens, i)) {
      findings.push_back({virtual_path, tok.line, "P001",
                          "raw `new` outside src/base and src/ownership",
                          "adopt into Owned<T>/std::unique_ptr on the same expression"});
    }
    if (ban_alloc && tok.text == "delete" && prev != "=" && prev != "::" &&
        !IsLeakedSingleton(tokens, i)) {
      findings.push_back({virtual_path, tok.line, "P001",
                          "raw `delete` outside src/base and src/ownership",
                          "let Owned<T>/std::unique_ptr destroy the object"});
    }
    if (ban_alloc &&
        (tok.text == "malloc" || tok.text == "calloc" || tok.text == "realloc" ||
         tok.text == "free") &&
        prev != "." && prev != "->" && i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      findings.push_back({virtual_path, tok.line, "P002",
                          "C allocator call `" + tok.text + "` in kernel module code",
                          "use Bytes (src/base/bytes.h) or an owning container"});
    }
    if (ban_thread && (tok.text == "thread" || tok.text == "jthread") && prev == "::" && i >= 2 &&
        tokens[i - 2].text == "std") {
      findings.push_back({virtual_path, tok.line, "P003",
                          "raw std::" + tok.text + " inside a kernel module",
                          "kernel modules must not spawn threads; drive concurrency from "
                          "tests/bench harnesses"});
    }
    if (ban_memfns && (tok.text == "memcpy" || tok.text == "memmove" || tok.text == "memset") &&
        prev != "." && prev != "->") {
      findings.push_back({virtual_path, tok.line, "P004",
                          "raw " + tok.text + " outside src/base/bytes.h",
                          "go through Bytes/MutableByteView so sizes stay checked"});
    }
    // M001: a type registered in a named slab cache, allocated in a way that
    // bypasses its class operator new. `new T` and make_unique<T> go through
    // the cache; `::new T` and std::make_shared<T> (which co-allocates the
    // control block through std::allocator) do not. Outside src/mem that
    // silently puts hot objects back on the contended global heap.
    if (in_src && !grandfathered && module != "src/mem" && config.slab_types.count(tok.text) &&
        i >= 2) {
      const bool global_new = tokens[i - 1].text == "new" && tokens[i - 2].text == "::";
      const bool make_shared_bypass =
          tokens[i - 1].text == "<" && tokens[i - 2].text == "make_shared";
      if (global_new || make_shared_bypass) {
        bool escaped = false;
        for (size_t back = i >= 8 ? i - 8 : 0; back < i; ++back) {
          if (tokens[back].text == "SKERN_NO_SLAB") {
            escaped = true;
            break;
          }
        }
        if (!escaped) {
          findings.push_back(
              {virtual_path, tok.line, "M001",
               "slab-cached type `" + tok.text + "` heap-allocated around its named cache",
               "use `new " + tok.text + "`/make_unique (class operator new routes to the "
               "slab), or wrap in SKERN_NO_SLAB(...) if the heap is intended"});
        }
      }
    }
    // B001: BufChain::RawSegment() hands out the refcounted backing storage —
    // the zero-copy plane's own escape hatch. Outside src/net, payload access
    // goes through the view API, so a segment pointer can never outlive the
    // chain that owns it.
    if (module != "src/net" && !grandfathered && tok.text == "RawSegment" &&
        (prev == "." || prev == "->") && i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      findings.push_back({virtual_path, tok.line, "B001",
                          "raw BufChain segment access outside src/net",
                          "read payloads through ForEachView()/CopyTo()/PopBytes(); segment "
                          "storage must not escape the stack"});
    }
  }

  // --- O001: observability-plane hygiene ---
  // Outside the obs plane itself: (a) a plain SKERN_SPAN whose scope goes on
  // to acquire a lock must be SKERN_SPAN_LOCKED, so lock-wait attribution and
  // the contention profile see the span; (b) the raw emit entry points are
  // reserved for src/obs — everything else goes through SKERN_TRACE /
  // SKERN_SPAN, which intern the site and gate on the sink mask.
  if (!StartsWith(virtual_path, "src/obs/") && !grandfathered) {
    std::vector<FunctionSpan> obs_spans = FindFunctions(tokens);
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (!tok.is_ident) {
        continue;
      }
      if ((tok.text == "EmitTrace" || tok.text == "EmitTraceFlags") && i + 1 < tokens.size() &&
          tokens[i + 1].text == "(") {
        findings.push_back({virtual_path, tok.line, "O001",
                            "raw " + tok.text + " call outside src/obs",
                            "emit through SKERN_TRACE / SKERN_SPAN so the site is interned "
                            "and gated"});
        continue;
      }
      if (tok.text == "SKERN_SPAN" && i + 1 < tokens.size() && tokens[i + 1].text == "(") {
        const FunctionSpan* fn = EnclosingFunction(obs_spans, i);
        // The span scope runs to the end of the enclosing function body; a
        // lock acquired anywhere after it is inside the span's scope.
        if (fn != nullptr && AcquiresAnyLock(tokens, i, fn->body_end)) {
          findings.push_back({virtual_path, tok.line, "O001",
                              "SKERN_SPAN scope covers a lock acquisition without the "
                              "locked annotation",
                              "use SKERN_SPAN_LOCKED(subsys, op) so contention is "
                              "attributed to the span"});
        }
      }
    }
  }

  // --- G001: guarded-field access checking ---
  std::vector<GuardedField> fields = CollectGuardedFromTokens(tokens);
  fields.insert(fields.end(), companion_fields.begin(), companion_fields.end());
  if (!fields.empty()) {
    // field name -> set of lock names that guard it (collisions across
    // classes merge; holding any of them satisfies the access).
    std::map<std::string, std::set<std::string>> guard_of;
    for (const GuardedField& field : fields) {
      guard_of[field.field].insert(field.lock);
    }
    std::vector<FunctionSpan> spans = FindFunctions(tokens);
    std::set<std::string> requires_methods = CollectRequiresFromTokens(tokens);
    requires_methods.insert(companion_requires.begin(), companion_requires.end());
    for (FunctionSpan& span : spans) {
      if (!span.name.empty() && requires_methods.count(span.name) != 0) {
        span.has_requires = true;  // attribute declared on another redeclaration
      }
    }
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (!tok.is_ident) {
        continue;
      }
      auto it = guard_of.find(tok.text);
      if (it == guard_of.end()) {
        continue;
      }
      if (i > 0 && tokens[i - 1].text == "::") {
        continue;  // qualified name, not a member access
      }
      if (i + 1 < tokens.size() &&
          (tokens[i + 1].text == "SKERN_GUARDED_BY" || tokens[i + 1].text == "SKERN_PT_GUARDED_BY")) {
        continue;  // the declaration itself
      }
      const FunctionSpan* fn = EnclosingFunction(spans, i);
      if (fn == nullptr) {
        continue;  // class scope (default member init) or global
      }
      if (fn->has_requires || fn->has_no_tsa || fn->is_ctor_dtor) {
        continue;
      }
      bool held = false;
      for (const std::string& lock : it->second) {
        if (LockVisiblyHeld(tokens, fn->body_start, i, lock)) {
          held = true;
          break;
        }
      }
      if (!held) {
        const std::string& lock = *it->second.begin();
        findings.push_back({virtual_path, tok.line, "G001",
                            "field `" + tok.text + "` is SKERN_GUARDED_BY(" + lock +
                                ") but no acquisition of `" + lock +
                                "` is visible in this function",
                            "take MutexGuard/SpinLockGuard on `" + lock +
                                "`, add SKERN_REQUIRES to the function, or SKERN_ASSERT_HELD"});
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return findings;
}

}  // namespace lint
}  // namespace skern
