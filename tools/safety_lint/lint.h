// In-tree safety linter: module layering, raw-primitive bans, and
// lock-annotation checking, with no compiler dependency.
//
// The paper argues for "incremental" safety: rules that can be adopted and
// *enforced* on an existing C/C++ tree today, without waiting for a rewrite.
// This linter is that enforcement point. It is deliberately a plain
// tokenizer + per-file rule engine (no libclang): it runs anywhere the tree
// builds, in milliseconds, as a tier-1 test and a CI gate. Under clang the
// same annotations are additionally checked by -Wthread-safety; the lint is
// the floor every compiler gets.
//
// Rules (stable ids, printed in findings):
//   L001  module layering: a src/ module may include only itself or modules
//         in strictly lower layers (tools/safety_lint/layers.toml).
//   S001  direct <mutex>/<shared_mutex> include outside the allow-listed
//         low-level modules (everything else uses src/sync wrappers).
//   P001  raw new/delete outside src/base and src/ownership.
//   P002  malloc/calloc/realloc/free anywhere in src/.
//   P003  raw std::thread construction inside src/ modules (outside the
//         allow-listed kernel-thread wrapper).
//   P004  memcpy/memmove/memset outside src/base/bytes.h.
//   G001  access to a SKERN_GUARDED_BY field with no visible acquisition of
//         the named lock in the enclosing function.
//   O001  observability hygiene: a plain SKERN_SPAN in a function that goes
//         on to acquire a lock (use SKERN_SPAN_LOCKED), or a raw
//         EmitTrace/EmitTraceFlags call outside src/obs.
//   M001  slab-cache bypass: a type registered in a named slab cache
//         ([slab] types in layers.toml) heap-allocated outside src/mem in a
//         way that skips its class operator new (`::new T`,
//         `std::make_shared<T>`). Escape hatch SKERN_NO_SLAB(...), tallied.
//
// Fixture files may carry a `// lint-as: src/...` directive naming the path
// the rules should pretend the file lives at (testdata snippets).
#ifndef SKERN_TOOLS_SAFETY_LINT_LINT_H_
#define SKERN_TOOLS_SAFETY_LINT_LINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace skern {
namespace lint {

// One lexical token of a stripped source file (comments and literal contents
// blanked, line numbers preserved).
struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

// Tokenized form of one source file. Computed once per file by the driver
// and shared by every rule pass and the access-reachability analysis, so a
// tree-wide run lexes each file exactly once.
struct FileTokens {
  std::vector<Token> tokens;
  // line_in_comment[i] is true when line i+1 *started* inside a block
  // comment (the raw-line include scan skips those lines).
  std::vector<bool> line_in_comment;
};

FileTokens TokenizeSource(const std::string& content);

struct Finding {
  std::string file;  // virtual (lint-as) path
  int line = 0;
  std::string rule;  // "L001", ...
  std::string message;
  std::string hint;  // one-line fix suggestion
};

// Renders "path:line: [RULE] message (fix: hint)".
std::string FormatFinding(const Finding& finding);

struct Config {
  // Module path ("src/fs") -> layer number. Higher layers include lower.
  std::map<std::string, int> layers;
  // Exact header paths includable from any module (macro-only headers).
  std::set<std::string> include_everywhere;
  // Module prefixes allowed to include <mutex>/<shared_mutex> directly.
  std::vector<std::string> mutex_include_allowed;
  // Path prefixes allowed to construct std::thread (P003). Normally only the
  // src/sync kernel-thread wrapper; everything else drives concurrency
  // through it or from test/bench harnesses.
  std::vector<std::string> thread_spawn_allowed;
  // Path prefixes exempt from primitive bans (the deliberately-unsafe
  // legacy/fault-demo code the paper measures against).
  std::vector<std::string> grandfathered;
  // Type names registered in a named slab cache ([slab] types). M001 flags
  // allocations of these that bypass the class operator new outside src/mem.
  std::set<std::string> slab_types;
  // Function names whose calls count as permission checks for the access
  // reachability analysis (A001/A002); [access] check_functions. The list is
  // explicit — the analysis does not propagate "performs a check" through
  // arbitrary helpers, so adding a new check wrapper is a reviewed config
  // change, not something the tool infers.
  std::set<std::string> access_check_functions;
};

// Parses the minimal TOML subset layers.toml uses: [section] headers,
// `"key" = int` and `key = ["a", "b"]` entries. Returns false and sets
// *error on malformed input.
bool ParseConfig(const std::string& text, Config* config, std::string* error);

// A field declared SKERN_GUARDED_BY(lock). `lock` is the final identifier of
// the annotation argument (`fs->mutex_` -> "mutex_").
struct GuardedField {
  std::string field;
  std::string lock;
  int line = 0;
};

// Scans declarations for SKERN_GUARDED_BY annotations. The FileTokens
// overloads are the tokenize-once fast path; the string overloads lex
// internally (tests and one-off callers).
std::vector<GuardedField> CollectGuardedFields(const FileTokens& file);
std::vector<GuardedField> CollectGuardedFields(const std::string& content);

// Names of functions declared with SKERN_REQUIRES / SKERN_REQUIRES_SHARED.
// Clang merges attributes across redeclarations, so a .cc definition of a
// header-annotated method is lock-assumed without restating the attribute;
// the lint honors the same rule via this set.
std::set<std::string> CollectRequiresMethods(const FileTokens& file);
std::set<std::string> CollectRequiresMethods(const std::string& content);

// Lints one file. `virtual_path` is the repo-relative path rules key off
// (after any lint-as override). `companion_fields` supplies annotated fields
// declared in the matching header so a .cc is checked against its .h's
// annotations. `no_tsa_escapes` / `no_slab_escapes`, if non-null, are
// incremented per SKERN_NO_TSA / SKERN_NO_SLAB use seen (the visibility
// tallies for the escape hatches).
std::vector<Finding> LintFile(const std::string& virtual_path, const std::string& content,
                              const FileTokens& file, const Config& config,
                              const std::vector<GuardedField>& companion_fields,
                              const std::set<std::string>& companion_requires = {},
                              int* no_tsa_escapes = nullptr,
                              int* no_slab_escapes = nullptr);
std::vector<Finding> LintFile(const std::string& virtual_path, const std::string& content,
                              const Config& config,
                              const std::vector<GuardedField>& companion_fields,
                              const std::set<std::string>& companion_requires = {},
                              int* no_tsa_escapes = nullptr,
                              int* no_slab_escapes = nullptr);

// Extracts a `// lint-as: path` directive, or "" if absent.
std::string LintAsOverride(const std::string& content);

}  // namespace lint
}  // namespace skern

#endif  // SKERN_TOOLS_SAFETY_LINT_LINT_H_
