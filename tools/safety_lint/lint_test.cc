// Self-tests for the safety linter: the shipped config parses, every
// known-bad fixture is flagged with the expected rule, and the allowance
// fixture stays clean.
#include "tools/safety_lint/lint.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace skern {
namespace lint {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Config ShippedConfig() {
  Config config;
  std::string error;
  EXPECT_TRUE(ParseConfig(ReadFileOrDie(SAFETY_LINT_CONFIG), &config, &error)) << error;
  return config;
}

// Lints one testdata fixture and returns rule-id -> count.
std::map<std::string, int> LintFixture(const std::string& name) {
  std::string content = ReadFileOrDie(std::string(SAFETY_LINT_TESTDATA) + "/" + name);
  std::string virtual_path = LintAsOverride(content);
  EXPECT_FALSE(virtual_path.empty()) << name << " is missing its // lint-as: directive";
  Config config = ShippedConfig();
  std::map<std::string, int> counts;
  for (const Finding& finding : LintFile(virtual_path, content, config, {})) {
    EXPECT_EQ(finding.file, virtual_path);
    EXPECT_GT(finding.line, 0);
    EXPECT_FALSE(finding.message.empty());
    EXPECT_FALSE(finding.hint.empty()) << finding.rule << " must carry a fix hint";
    ++counts[finding.rule];
  }
  return counts;
}

TEST(SafetyLintConfig, ShippedConfigParses) {
  Config config = ShippedConfig();
  EXPECT_GE(config.layers.size(), 10u);
  EXPECT_EQ(config.layers.at("src/obs"), 0);
  EXPECT_LT(config.layers.at("src/block"), config.layers.at("src/fs"));
  EXPECT_EQ(config.include_everywhere.count("src/sync/annotations.h"), 1u);
  EXPECT_FALSE(config.mutex_include_allowed.empty());
  EXPECT_FALSE(config.grandfathered.empty());
}

TEST(SafetyLintConfig, RejectsMalformedInput) {
  Config config;
  std::string error;
  EXPECT_FALSE(ParseConfig("[layers]\n\"src/fs\" = seven\n", &config, &error));
  EXPECT_NE(error.find("integer"), std::string::npos);
  Config empty;
  EXPECT_FALSE(ParseConfig("# nothing\n", &empty, &error));
}

TEST(SafetyLintFixtures, LayeringViolationFlagged) {
  auto counts = LintFixture("bad_layering.cc");
  EXPECT_EQ(counts["L001"], 1);
}

TEST(SafetyLintFixtures, DirectMutexIncludeFlagged) {
  auto counts = LintFixture("bad_mutex_include.cc");
  EXPECT_EQ(counts["S001"], 2);
}

TEST(SafetyLintFixtures, RawNewDeleteFlagged) {
  auto counts = LintFixture("bad_new.cc");
  EXPECT_EQ(counts["P001"], 2);
}

TEST(SafetyLintFixtures, CAllocatorFlagged) {
  auto counts = LintFixture("bad_malloc.cc");
  EXPECT_EQ(counts["P002"], 2);
}

TEST(SafetyLintFixtures, RawThreadFlagged) {
  auto counts = LintFixture("bad_thread.cc");
  EXPECT_EQ(counts["P003"], 1);
}

TEST(SafetyLintFixtures, RawMemcpyFlagged) {
  auto counts = LintFixture("bad_memcpy.cc");
  EXPECT_EQ(counts["P004"], 1);
}

TEST(SafetyLintFixtures, BufChainSegmentEscapeFlagged) {
  auto counts = LintFixture("bad_bufchain_escape.cc");
  EXPECT_EQ(counts["B001"], 2);  // `.RawSegment(` and `->RawSegment(`; the
                                 // ForEachView read passes
}

TEST(SafetyLintFixtures, UnguardedFieldAccessFlagged) {
  auto counts = LintFixture("bad_guarded.cc");
  // Exactly the one BadRead access; the guarded/asserted/REQUIRES methods
  // must all pass.
  EXPECT_EQ(counts["G001"], 1);
  EXPECT_EQ(counts.size(), 1u) << "only G001 expected";
}

TEST(SafetyLintFixtures, SpanOverLockFlagged) {
  auto counts = LintFixture("bad_span_lock.cc");
  EXPECT_EQ(counts["O001"], 2);  // guard form + direct Lock() form; the
                                 // annotated and lock-free functions pass
}

TEST(SafetyLintFixtures, RawEmitTraceFlagged) {
  auto counts = LintFixture("bad_emittrace.cc");
  EXPECT_EQ(counts["O001"], 2);  // EmitTrace + EmitTraceFlags; SKERN_TRACE passes
}

TEST(SafetyLintFixtures, AllowancesStayClean) {
  auto counts = LintFixture("good_clean.cc");
  EXPECT_TRUE(counts.empty());
}

TEST(SafetyLintCore, GuardedFieldCollectionSeesLockName) {
  auto fields = CollectGuardedFields(
      "class C {\n"
      "  int depth_ SKERN_GUARDED_BY(fs->mutex_);\n"
      "};\n");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].field, "depth_");
  EXPECT_EQ(fields[0].lock, "mutex_");
  EXPECT_EQ(fields[0].line, 2);
}

TEST(SafetyLintCore, CompanionHeaderFieldsApplyToSource) {
  Config config = ShippedConfig();
  std::vector<GuardedField> companion = {{"table_", "mutex_", 1}};
  auto findings = LintFile("src/fs/widget.cc",
                           "int Widget::Count() const { return table_; }\n", config, companion);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "G001");
}

TEST(SafetyLintCore, HeaderRequiresCoversSourceDefinition) {
  // The header declares `Count` with SKERN_REQUIRES; clang merges attributes
  // across redeclarations, so the .cc definition is lock-assumed.
  Config config = ShippedConfig();
  std::vector<GuardedField> companion = {{"table_", "mutex_", 1}};
  std::set<std::string> companion_requires = {"Count"};
  auto findings =
      LintFile("src/fs/widget.cc", "int Widget::Count() const { return table_; }\n", config,
               companion, companion_requires);
  EXPECT_TRUE(findings.empty());
}

TEST(SafetyLintCore, RequiresMethodCollection) {
  auto methods = CollectRequiresMethods(
      "class J {\n"
      "  Status FlushLocked() SKERN_REQUIRES(mutex_);\n"
      "  uint64_t Read(int n) const SKERN_REQUIRES_SHARED(mutex_);\n"
      "};\n");
  EXPECT_EQ(methods.size(), 2u);
  EXPECT_EQ(methods.count("FlushLocked"), 1u);
  EXPECT_EQ(methods.count("Read"), 1u);
}

TEST(SafetyLintCore, CommentsAndStringsNeverFire) {
  Config config = ShippedConfig();
  auto findings = LintFile("src/fs/widget.cc",
                           "// new delete malloc(1) memcpy std::thread\n"
                           "const char* kText = \"new delete std::thread\";\n"
                           "/* #include <mutex> */\n",
                           config, {});
  EXPECT_TRUE(findings.empty());
}

TEST(SafetyLintCore, FindingFormatIsStable) {
  Finding finding{"src/fs/x.cc", 12, "P001", "raw `new`", "adopt it"};
  EXPECT_EQ(FormatFinding(finding), "src/fs/x.cc:12: [P001] raw `new` (fix: adopt it)");
}

TEST(SafetyLintCore, NoTsaEscapesAreTallied) {
  Config config = ShippedConfig();
  int escapes = 0;
  LintFile("src/fs/widget.cc", "void Init() SKERN_NO_TSA;\nvoid Shutdown() SKERN_NO_TSA;\n",
           config, {}, {}, &escapes);
  EXPECT_EQ(escapes, 2);
}

TEST(SafetyLintFixtures, SlabCacheBypassFlagged) {
  auto counts = LintFixture("bad_slab_bypass.cc");
  // make_shared<BufferHead> + ::new BufferHead; the adopted `new` and the
  // SKERN_NO_SLAB-wrapped allocation stay clean.
  EXPECT_EQ(counts["M001"], 2);
  EXPECT_EQ(counts["P001"], 0);
}

TEST(SafetyLintCore, SlabTypesParseFromShippedConfig) {
  Config config = ShippedConfig();
  EXPECT_GE(config.slab_types.size(), 3u);
  EXPECT_EQ(config.slab_types.count("BufferHead"), 1u);
}

TEST(SafetyLintCore, SlabRulesIgnoreMemModuleAndPlainNew) {
  Config config = ShippedConfig();
  // Inside src/mem the allocator may do whatever it needs.
  EXPECT_TRUE(LintFile("src/mem/helper.cc",
                       "void F() { auto p = std::make_shared<BufferHead>(); (void)p; }\n",
                       config, {})
                  .empty());
  // Plain `new T` routes through the class operator new: not a bypass.
  EXPECT_TRUE(LintFile("src/block/ok.cc",
                       "void F() { auto p = std::unique_ptr<BufferHead>(new BufferHead()); }\n",
                       config, {})
                  .empty());
}

TEST(SafetyLintCore, NoSlabEscapesAreTallied) {
  Config config = ShippedConfig();
  int tsa = 0;
  int slab = 0;
  LintFile("src/fs/widget.cc",
           "void F() { auto p = SKERN_NO_SLAB(::new BufferHead()); delete p; }\n", config, {},
           {}, &tsa, &slab);
  EXPECT_EQ(slab, 1);
}

}  // namespace
}  // namespace lint
}  // namespace skern
