// safety_lint: tree-wide safety linter (see lint.h for the rule set).
//
// Usage:
//   safety_lint --root <repo> [--config <layers.toml>] [files...]
//
// With no explicit files, scans src/, bench/ and tests/ under --root. Exits
// 0 when clean, 1 when any rule fires, 2 on usage/config errors. Findings
// print as `path:line: [RULE] message (fix: hint)`.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/safety_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path config_path;
  std::vector<fs::path> explicit_files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: safety_lint --root <repo> [--config <layers.toml>] [files...]\n";
      return 0;
    } else {
      explicit_files.emplace_back(arg);
    }
  }
  if (config_path.empty()) {
    config_path = root / "tools" / "safety_lint" / "layers.toml";
  }

  std::string config_text;
  if (!ReadFile(config_path, &config_text)) {
    std::cerr << "safety_lint: cannot read config " << config_path << "\n";
    return 2;
  }
  skern::lint::Config config;
  std::string error;
  if (!skern::lint::ParseConfig(config_text, &config, &error)) {
    std::cerr << "safety_lint: " << error << "\n";
    return 2;
  }

  std::vector<fs::path> files = explicit_files;
  if (files.empty()) {
    for (const char* dir : {"src", "bench", "tests"}) {
      fs::path base = root / dir;
      if (!fs::exists(base)) {
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }

  // Pass 1: contents + virtual paths + per-file guarded-field tables, so a
  // .cc can be checked against annotations declared in its header.
  struct FileInput {
    std::string virtual_path;
    std::string content;
  };
  std::vector<FileInput> inputs;
  std::map<std::string, std::vector<skern::lint::GuardedField>> fields_by_path;
  std::map<std::string, std::set<std::string>> requires_by_path;
  for (const fs::path& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::cerr << "safety_lint: cannot read " << path << "\n";
      return 2;
    }
    std::string virtual_path = skern::lint::LintAsOverride(content);
    if (virtual_path.empty()) {
      virtual_path = fs::relative(path, root).generic_string();
    }
    fields_by_path[virtual_path] = skern::lint::CollectGuardedFields(content);
    requires_by_path[virtual_path] = skern::lint::CollectRequiresMethods(content);
    inputs.push_back({std::move(virtual_path), std::move(content)});
  }

  // Pass 2: rules.
  int finding_count = 0;
  int no_tsa_escapes = 0;
  for (const FileInput& input : inputs) {
    std::vector<skern::lint::GuardedField> companion;
    std::set<std::string> companion_requires;
    if (input.virtual_path.size() > 3 &&
        input.virtual_path.compare(input.virtual_path.size() - 3, 3, ".cc") == 0) {
      const std::string header =
          input.virtual_path.substr(0, input.virtual_path.size() - 3) + ".h";
      auto it = fields_by_path.find(header);
      if (it != fields_by_path.end()) {
        companion = it->second;
      }
      auto rit = requires_by_path.find(header);
      if (rit != requires_by_path.end()) {
        companion_requires = rit->second;
      }
    }
    for (const skern::lint::Finding& finding :
         skern::lint::LintFile(input.virtual_path, input.content, config, companion,
                               companion_requires, &no_tsa_escapes)) {
      std::cout << skern::lint::FormatFinding(finding) << "\n";
      ++finding_count;
    }
  }

  std::cerr << "safety_lint: checked " << inputs.size() << " files: " << finding_count
            << " finding(s), " << no_tsa_escapes << " SKERN_NO_TSA escape(s)\n";
  return finding_count == 0 ? 0 : 1;
}
