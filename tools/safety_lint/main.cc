// safety_lint: tree-wide safety linter (see lint.h for the per-file rule
// set and access.h for the interprocedural access-reachability analysis).
//
// Usage:
//   safety_lint --root <repo> [--config <layers.toml>] [--json] [files...]
//
// With no explicit files, scans src/, bench/ and tests/ under --root. Exits
// 0 when clean, 1 when any rule fires, 2 on usage/config errors. Findings
// print as `path:line: [RULE] message (fix: hint)`, or as a sorted JSON
// array with --json (the format CI diffs against baseline.json).
//
// Every file is tokenized exactly once; the token stream feeds the per-file
// rules, the companion-header annotation tables, and the cross-file access
// index (built from src/ files only — tests and benches call the kernel
// from outside the checked boundary).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/safety_lint/access.h"
#include "tools/safety_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<skern::lint::Finding>& findings) {
  std::cout << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const skern::lint::Finding& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n");
    std::cout << "  {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
              << JsonEscape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "]\n" : "\n]\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path config_path;
  bool json = false;
  std::vector<fs::path> explicit_files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: safety_lint --root <repo> [--config <layers.toml>] [--json] "
                   "[files...]\n";
      return 0;
    } else {
      explicit_files.emplace_back(arg);
    }
  }
  if (config_path.empty()) {
    config_path = root / "tools" / "safety_lint" / "layers.toml";
  }

  std::string config_text;
  if (!ReadFile(config_path, &config_text)) {
    std::cerr << "safety_lint: cannot read config " << config_path << "\n";
    return 2;
  }
  skern::lint::Config config;
  std::string error;
  if (!skern::lint::ParseConfig(config_text, &config, &error)) {
    std::cerr << "safety_lint: " << error << "\n";
    return 2;
  }

  std::vector<fs::path> files = explicit_files;
  if (files.empty()) {
    for (const char* dir : {"src", "bench", "tests"}) {
      fs::path base = root / dir;
      if (!fs::exists(base)) {
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }

  // Pass 1: read + tokenize each file once. The token stream feeds the
  // guarded-field/requires tables, the per-file rules, and the access index.
  struct FileInput {
    std::string virtual_path;
    std::string content;
    skern::lint::FileTokens tokens;
  };
  std::vector<FileInput> inputs;
  std::map<std::string, std::vector<skern::lint::GuardedField>> fields_by_path;
  std::map<std::string, std::set<std::string>> requires_by_path;
  skern::lint::AccessIndex access_index;
  for (const fs::path& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::cerr << "safety_lint: cannot read " << path << "\n";
      return 2;
    }
    std::string virtual_path = skern::lint::LintAsOverride(content);
    if (virtual_path.empty()) {
      virtual_path = fs::relative(path, root).generic_string();
    }
    skern::lint::FileTokens tokens = skern::lint::TokenizeSource(content);
    fields_by_path[virtual_path] = skern::lint::CollectGuardedFields(tokens);
    requires_by_path[virtual_path] = skern::lint::CollectRequiresMethods(tokens);
    if (virtual_path.rfind("src/", 0) == 0) {
      skern::lint::IndexFileForAccess(virtual_path, tokens, &access_index);
    }
    inputs.push_back({std::move(virtual_path), std::move(content), std::move(tokens)});
  }

  // Pass 2: per-file rules.
  std::vector<skern::lint::Finding> findings;
  int no_tsa_escapes = 0;
  int no_slab_escapes = 0;
  for (const FileInput& input : inputs) {
    std::vector<skern::lint::GuardedField> companion;
    std::set<std::string> companion_requires;
    if (input.virtual_path.size() > 3 &&
        input.virtual_path.compare(input.virtual_path.size() - 3, 3, ".cc") == 0) {
      const std::string header =
          input.virtual_path.substr(0, input.virtual_path.size() - 3) + ".h";
      auto it = fields_by_path.find(header);
      if (it != fields_by_path.end()) {
        companion = it->second;
      }
      auto rit = requires_by_path.find(header);
      if (rit != requires_by_path.end()) {
        companion_requires = rit->second;
      }
    }
    for (skern::lint::Finding& finding :
         skern::lint::LintFile(input.virtual_path, input.content, input.tokens, config,
                               companion, companion_requires, &no_tsa_escapes,
                               &no_slab_escapes)) {
      findings.push_back(std::move(finding));
    }
  }

  // Pass 3: interprocedural access-reachability (A001/A002).
  skern::lint::AccessResult access = skern::lint::AnalyzeAccess(access_index, config);
  for (skern::lint::Finding& finding : access.findings) {
    findings.push_back(std::move(finding));
  }

  std::sort(findings.begin(), findings.end(),
            [](const skern::lint::Finding& a, const skern::lint::Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });

  if (json) {
    PrintJson(findings);
  } else {
    for (const skern::lint::Finding& finding : findings) {
      std::cout << skern::lint::FormatFinding(finding) << "\n";
    }
  }

  std::cerr << "safety_lint: checked " << inputs.size() << " files: " << findings.size()
            << " finding(s), " << no_tsa_escapes << " SKERN_NO_TSA escape(s), "
            << no_slab_escapes << " SKERN_NO_SLAB escape(s); access: "
            << access.entries_analyzed << " entries analyzed, "
            << access.accessor_sites_reached << " accessor site(s) reached, "
            << access.no_access_check_escapes << " SKERN_NO_ACCESS_CHECK escape(s)\n";
  return findings.empty() ? 0 : 1;
}
