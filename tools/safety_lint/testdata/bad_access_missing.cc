// lint-as: src/vfs/bad_access_missing.cc
// Seeded A001 fixture: a syscall-plane entry dispatches straight to a
// protected accessor with no permission check on the path — the classic
// missing-check CVE shape (CVE-2016-10044-style: an alternate entry point
// skips the DAC check the primary path performs). Expected: exactly one
// A001 at the store_.Mutate call; the checked entry is clean.
#include "src/sync/annotations.h"

namespace skern {

class Store {
 public:
  SKERN_PROTECTED int Mutate(int block);
};

class Syscalls {
 public:
  SKERN_ENTRY int CheckedWrite(int block);
  SKERN_ENTRY int UncheckedWrite(int block);

 private:
  int CheckPermission(int want);
  Store store_;
};

int Syscalls::CheckedWrite(int block) {
  if (CheckPermission(kWantWrite) != 0) {
    return -1;
  }
  return store_.Mutate(block);
}

int Syscalls::UncheckedWrite(int block) {
  return store_.Mutate(block);  // A001: no check reaches this accessor
}

}  // namespace skern
