// lint-as: src/vfs/bad_access_weak.cc
// Seeded A002 fixture: two entries reach the same protected accessor, one
// under a strictly weaker governing mask than the other — the weaker-check
// CVE shape (one ioctl path validates read|write, a second path added later
// validates only read before the same mutation). Both paths ARE checked, so
// A001 stays quiet; expected: exactly one A002 at the weaker call site.
#include "src/sync/annotations.h"

namespace skern {

class Store {
 public:
  SKERN_PROTECTED int Mutate(int block);
};

class Syscalls {
 public:
  SKERN_ENTRY int StrongPath(int block);
  SKERN_ENTRY int WeakPath(int block);

 private:
  int CheckPermission(int want);
  Store store_;
};

int Syscalls::StrongPath(int block) {
  if (CheckPermission(kWantRead | kWantWrite) != 0) {
    return -1;
  }
  return store_.Mutate(block);
}

int Syscalls::WeakPath(int block) {
  if (CheckPermission(kWantRead) != 0) {
    return -1;
  }
  return store_.Mutate(block);  // A002: {read} is a strict subset of {read|write}
}

}  // namespace skern
