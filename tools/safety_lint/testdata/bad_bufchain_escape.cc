// lint-as: src/fs/bad_bufchain_escape.cc
// Fixture: BufChain raw segment access outside src/net.
// Expect: B001 twice (value and pointer receiver); the view-API reads pass.

#include "src/net/buf_chain.h"

unsigned long PeekFirstSegment(const skern::BufChain& chain) {
  return chain.RawSegment(0).len;  // escapes the refcounted storage
}

const void* StashSegment(const skern::BufChain* chain) {
  return chain->RawSegment(0).data.get();
}

unsigned long SumThroughViews(const skern::BufChain& chain) {
  unsigned long total = 0;
  chain.ForEachView([&total](skern::ByteView view) { total += view.size(); });
  return total;
}
