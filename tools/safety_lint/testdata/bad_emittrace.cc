// lint-as: src/fs/bad_emittrace.cc
// Known-bad fixture for O001: raw trace-emission entry points called outside
// src/obs. Kernel code must go through SKERN_TRACE / SKERN_SPAN, which intern
// the site once and gate on the sink mask.

#include "src/obs/trace.h"

namespace skern {

void EmitsRaw() {
  // BAD: bypasses site interning and the enabled-check.
  obs::EmitTrace(7, 1, 2);
}

void EmitsRawFlags() {
  // BAD: the flags entry point is the span machinery's, not ours.
  obs::EmitTraceFlags(7, 0x8000, 3, 4);
}

void EmitsProperly() {
  // OK: the macro is the sanctioned path.
  SKERN_TRACE("fixture", "proper", 5, 6);
}

}  // namespace skern
