// lint-as: src/fs/bad_guarded.cc
// Fixture: one unguarded access to a SKERN_GUARDED_BY field; every other
// method satisfies the lock discipline a different legal way.
// Expect: G001 once (in BadRead).
#include "src/sync/mutex.h"

class GuardedCounter {
 public:
  int BadRead() const { return value_; }

  int GoodGuardedRead() const {
    skern::MutexGuard guard(mutex_);
    return value_;
  }

  void GoodAssertedWrite() {
    SKERN_ASSERT_HELD(mutex_);
    ++value_;
  }

  void GoodRequiresWrite() SKERN_REQUIRES(mutex_) { ++value_; }

 private:
  mutable skern::TrackedMutex mutex_{"fixture.guarded_counter"};
  int value_ SKERN_GUARDED_BY(mutex_) = 0;
};
