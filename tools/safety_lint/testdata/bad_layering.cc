// lint-as: src/fs/bad_layering.cc
// Fixture: a file-system module reaching *up* into the network layer.
// Expect: L001 on the include below.
#include "src/net/network.h"

void UseTheWire() {}
