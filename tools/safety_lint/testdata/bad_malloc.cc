// lint-as: src/block/bad_malloc.cc
// Fixture: C allocator calls in kernel module code.
// Expect: P002 twice.

void* GrabBuffer(unsigned long n) { return malloc(n); }

void ReleaseBuffer(void* p) { free(p); }
