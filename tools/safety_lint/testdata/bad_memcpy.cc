// lint-as: src/vfs/bad_memcpy.cc
// Fixture: memcpy into a typed struct outside src/base/bytes.h.
// Expect: P004 once.

struct WireHeader {
  unsigned magic;
  unsigned length;
};

void FillHeader(WireHeader* header, const void* raw) {
  memcpy(header, raw, sizeof(*header));
}
