// lint-as: src/vfs/bad_mutex_include.cc
// Fixture: direct standard-mutex includes outside the sync layer.
// Expect: S001 twice.
#include <mutex>
#include <shared_mutex>

void UsesNothing() {}
