// lint-as: src/net/bad_new.cc
// Fixture: raw new/delete in a kernel module (no adoption, no singleton).
// Expect: P001 twice.

int* MakeCounter() { return new int(7); }

void DestroyCounter(int* counter) { delete counter; }
