// lint-as: src/block/slab_bypass_demo.cc
// Fixture: heap-allocating a slab-registered type around its named cache.
// BufferHead is listed in [slab] types; both forms below skip the class
// operator new that routes to the cache (M001).
#include <memory>

struct BufferHead;

void LeakyAllocationPaths() {
  // make_shared co-allocates through std::allocator: cache bypassed.
  auto shared = std::make_shared<BufferHead>();
  // Global-scope new explicitly skips class operator new: cache bypassed.
  BufferHead* raw = ::new BufferHead();
  (void)shared;
  (void)raw;
}

void SanctionedPaths() {
  // Class operator new routes to the named cache: fine.
  auto owned = std::unique_ptr<BufferHead>(new BufferHead());
  // Deliberate heap allocation, tallied: fine.
  auto escape = std::unique_ptr<BufferHead>(SKERN_NO_SLAB(::new BufferHead()));
  (void)owned;
  (void)escape;
}
