// lint-as: src/vfs/bad_span_lock.cc
// Known-bad fixture for O001: plain SKERN_SPAN in functions that acquire a
// lock inside the span's scope. Both the RAII-guard and the direct Lock()
// forms must be flagged; the properly annotated and lock-free functions must
// not be.

#include "src/obs/span.h"
#include "src/sync/mutex.h"

namespace skern {

struct BadSpanLock {
  TrackedMutex mutex_{"fixture.mutex"};
  int value_ = 0;

  // BAD: the span is open across a MutexGuard acquisition.
  int ReadWithGuard() {
    SKERN_SPAN("fixture", "read_guarded");
    MutexGuard guard(mutex_);
    return value_;
  }

  // BAD: direct Lock() call inside the span scope.
  void WriteWithDirectLock(int v) {
    SKERN_SPAN("fixture", "write_locked");
    mutex_.Lock();
    value_ = v;
    mutex_.Unlock();
  }

  // OK: the locked variant announces the acquisition.
  int ReadAnnotated() {
    SKERN_SPAN_LOCKED("fixture", "read_annotated");
    MutexGuard guard(mutex_);
    return value_;
  }

  // OK: no lock anywhere in the span's scope.
  int ReadLockFree() const {
    SKERN_SPAN("fixture", "read_lockfree");
    return 42;
  }
};

}  // namespace skern
