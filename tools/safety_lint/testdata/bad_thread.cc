// lint-as: src/fs/bad_thread.cc
// Fixture: raw std::thread spawned inside a kernel module.
// Expect: P003 once.
#include <thread>

void SpawnWorker() {
  std::thread worker([] {});
  worker.join();
}
