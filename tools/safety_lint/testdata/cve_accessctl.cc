// lint-as: src/cve/cve_accessctl.cc
// Annotated copy of the vulnerable pair in src/cve/accessctl.cc: the live
// file leaves WriteMissingCheck and WriteWeakCheck un-annotated so the tree
// gate stays green; this fixture adds SKERN_ENTRY to all three write paths
// and asserts the analysis catches both bug shapes. Expected: one A001 (the
// missing-check body) and one A002 (the weak-check body, a strict subset of
// WriteFixed's read|write mask over the same accessor).
#include "src/sync/annotations.h"

namespace skern {

class SettingsStore {
 public:
  SKERN_PROTECTED void Put(int index, int value);
  SKERN_PROTECTED int Fetch(int index) const;
};

class SettingsDevice {
 public:
  SKERN_ENTRY Status WriteFixed(int index, int value);
  SKERN_ENTRY Status WriteMissingCheck(int index, int value);
  SKERN_ENTRY Status WriteWeakCheck(int index, int value);

 private:
  SettingsStore store_;
};

Status SettingsDevice::WriteFixed(int index, int value) {
  SKERN_RETURN_IF_ERROR(CheckPermission(CurrentCred(), mode_, uid_, gid_,
                                        kWantRead | kWantWrite));
  store_.Put(index, value);
  return Status::Ok();
}

Status SettingsDevice::WriteMissingCheck(int index, int value) {
  store_.Put(index, value);  // A001: no check on this path
  return Status::Ok();
}

Status SettingsDevice::WriteWeakCheck(int index, int value) {
  SKERN_RETURN_IF_ERROR(CheckPermission(CurrentCred(), mode_, uid_, gid_, kWantRead));
  store_.Put(index, value);  // A002: {read} < {read|write}
  return Status::Ok();
}

}  // namespace skern
