// lint-as: src/vfs/good_access.cc
// Clean access-control fixture: every entry either performs a configured
// permission check before its accessor (including through an intermediate
// helper the analysis traverses) or carries the SKERN_NO_ACCESS_CHECK
// escape. Expected: zero findings, one escape tallied.
#include "src/sync/annotations.h"

namespace skern {

class Store {
 public:
  SKERN_PROTECTED int Mutate(int block);
  SKERN_PROTECTED int Fetch(int block);
};

class Syscalls {
 public:
  SKERN_ENTRY int DoWrite(int block);
  SKERN_ENTRY int DoRead(int block);
  // Maintenance path touching no permission-bearing object; the escape is
  // visible in the tally instead of silently passing.
  SKERN_ENTRY SKERN_NO_ACCESS_CHECK int Flush();

 private:
  int CheckPermission(int want);
  int DispatchMutate(int block);
  Store store_;
};

int Syscalls::DoWrite(int block) {
  if (CheckPermission(kWantWrite) != 0) {
    return -1;
  }
  // The check state flows through the traversed helper to the accessor.
  return DispatchMutate(block);
}

int Syscalls::DispatchMutate(int block) { return store_.Mutate(block); }

int Syscalls::DoRead(int block) {
  if (CheckPermission(kWantRead) != 0) {
    return -1;
  }
  return store_.Fetch(block);
}

int Syscalls::Flush() { return store_.Mutate(0); }

}  // namespace skern
