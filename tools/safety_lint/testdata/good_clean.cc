// lint-as: src/fs/good_clean.cc
// Fixture: every allowance in one file — must produce zero findings.
//   - includes a *lower*-layer module and the everywhere-exempt header
//   - leaked-singleton `static X* = new X()` idiom
//   - `new` adopted by a smart pointer on the same expression
//   - `= delete` for a deleted special member
#include "src/block/buffer_cache.h"
#include "src/sync/annotations.h"

#include <memory>

class LeakedSingleton {
 public:
  LeakedSingleton(const LeakedSingleton&) = delete;
  LeakedSingleton& operator=(const LeakedSingleton&) = delete;

  static LeakedSingleton& Get() {
    static LeakedSingleton* instance = new LeakedSingleton();
    return *instance;
  }

 private:
  LeakedSingleton() = default;
};

std::unique_ptr<int> MakeAdopted() { return std::unique_ptr<int>(new int(3)); }
