// traceview CLI: reconstruct span trees from a drained trace stream.
//
//   traceview [--tree|--latency|--contention] [file]
//
// Reads RenderTraceText output (procfs /trace body, or a saved drain) from
// `file` or stdin and prints the selected view. All three views come from
// the same parse, so piping one stream through each mode is cheap.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tools/traceview/traceview.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: traceview [--tree|--latency|--contention] [file]\n"
               "  --tree        span forest with nested durations (default)\n"
               "  --latency     per-span-name latency rollup\n"
               "  --contention  lock-wait rollup from sync.lock_wait events\n"
               "reads trace text (RenderTraceText format) from file or stdin\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "--tree";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--tree" || arg == "--latency" || arg == "--contention") {
      mode = arg;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }

  std::ostringstream buffer;
  if (path.empty()) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "traceview: cannot open %s\n", path.c_str());
      return 1;
    }
    buffer << in.rdbuf();
  }

  auto events = skern::traceview::ParseText(buffer.str());
  if (mode == "--contention") {
    std::cout << skern::traceview::RenderContention(events);
    return 0;
  }
  auto forest = skern::traceview::BuildSpans(events);
  if (mode == "--latency") {
    std::cout << skern::traceview::RenderLatencySummary(forest);
  } else {
    std::cout << skern::traceview::RenderTree(forest);
  }
  return 0;
}
