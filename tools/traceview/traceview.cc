#include "tools/traceview/traceview.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace skern {
namespace traceview {
namespace {

// Parses "key=value" returning true and the integer value on match.
bool KeyedU64(std::string_view token, std::string_view key, uint64_t* out) {
  if (token.size() <= key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    return false;
  }
  uint64_t value = 0;
  for (char c : token.substr(key.size() + 1)) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::vector<std::string_view> SplitWs(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

// A span currently open during reconstruction: node index plus position in
// the per-thread open stack.
struct OpenSpan {
  size_t node = 0;
};

void RenderNode(const SpanForest& forest, size_t index, int indent, std::ostringstream& os) {
  const SpanNode& node = forest.nodes[index];
  for (int i = 0; i < indent; ++i) {
    os << "  ";
  }
  os << node.name << " id=" << node.id;
  if (node.closed) {
    os << " dur=" << node.dur_ns << "ns";
  } else {
    os << " UNCLOSED";
  }
  if (!node.plane.empty()) {
    os << " plane=" << node.plane;
  }
  os << "\n";
  // Children and interior events interleave by timestamp so the printed
  // order matches execution order.
  size_t child = 0;
  size_t event = 0;
  while (child < node.children.size() || event < node.events.size()) {
    bool take_child =
        event >= node.events.size() ||
        (child < node.children.size() &&
         forest.nodes[node.children[child]].start_ts <= node.events[event].ts);
    if (take_child) {
      RenderNode(forest, node.children[child], indent + 1, os);
      ++child;
    } else {
      for (int i = 0; i < indent + 1; ++i) {
        os << "  ";
      }
      os << "- " << node.events[event].name << " " << node.events[event].arg0 << " "
         << node.events[event].arg1 << "\n";
      ++event;
    }
  }
}

}  // namespace

std::vector<Event> FromRecords(const std::vector<obs::TraceRecord>& records) {
  std::vector<Event> events;
  events.reserve(records.size());
  for (const auto& record : records) {
    Event event;
    event.ts = record.ts;
    event.tid = record.tid;
    event.name = obs::TraceEventName(record.event_id);
    if (record.reserved & obs::kSpanBegin) {
      event.kind = Event::Kind::kBegin;
      event.depth = record.reserved & obs::kSpanDepthMask;
      event.id = record.arg0;
      event.parent = record.arg1;
    } else if (record.reserved & obs::kSpanEnd) {
      event.kind = Event::Kind::kEnd;
      event.depth = record.reserved & obs::kSpanDepthMask;
      event.id = record.arg0;
      event.dur_ns = record.arg1;
      if (record.reserved & obs::kSpanPlaneFast) {
        event.plane = "fast";
      } else if (record.reserved & obs::kSpanPlaneSlow) {
        event.plane = "slow";
      }
    } else {
      event.kind = Event::Kind::kPlain;
      event.arg0 = record.arg0;
      event.arg1 = record.arg1;
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<Event> ParseText(std::string_view text) {
  std::vector<Event> events;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    auto tokens = SplitWs(line);
    // Minimum shape: "ts tid name ..." with numeric ts/tid.
    Event event;
    uint64_t tid64 = 0;
    if (tokens.size() < 4 || !ParseU64(tokens[0], &event.ts) || !ParseU64(tokens[1], &tid64)) {
      continue;
    }
    event.tid = static_cast<uint32_t>(tid64);
    event.name = std::string(tokens[2]);
    if (tokens[3] == "B" || tokens[3] == "E") {
      uint64_t depth = 0;
      bool ok = tokens.size() >= 6 && KeyedU64(tokens[4], "d", &depth) &&
                KeyedU64(tokens[5], "id", &event.id);
      if (!ok) {
        continue;
      }
      event.depth = static_cast<uint32_t>(depth);
      if (tokens[3] == "B") {
        if (tokens.size() < 7 || !KeyedU64(tokens[6], "parent", &event.parent)) {
          continue;
        }
        event.kind = Event::Kind::kBegin;
      } else {
        if (tokens.size() < 7 || !KeyedU64(tokens[6], "dur", &event.dur_ns)) {
          continue;
        }
        event.kind = Event::Kind::kEnd;
        if (tokens.size() >= 8 && tokens[7] == "plane=fast") {
          event.plane = "fast";
        } else if (tokens.size() >= 8 && tokens[7] == "plane=slow") {
          event.plane = "slow";
        }
      }
    } else {
      if (tokens.size() != 5 || !ParseU64(tokens[3], &event.arg0) ||
          !ParseU64(tokens[4], &event.arg1)) {
        continue;
      }
      event.kind = Event::Kind::kPlain;
    }
    events.push_back(std::move(event));
  }
  return events;
}

SpanForest BuildSpans(const std::vector<Event>& events) {
  SpanForest forest;
  // (tid, id) -> node index for open spans; per-tid stack of open spans for
  // plain-event attribution.
  std::map<std::pair<uint32_t, uint64_t>, size_t> open;
  std::map<uint32_t, std::vector<size_t>> stacks;
  for (const auto& event : events) {
    switch (event.kind) {
      case Event::Kind::kBegin: {
        SpanNode node;
        node.name = event.name;
        node.tid = event.tid;
        node.id = event.id;
        node.parent_id = event.parent;
        node.depth = event.depth;
        node.start_ts = event.ts;
        size_t index = forest.nodes.size();
        forest.nodes.push_back(std::move(node));
        auto parent = open.find({event.tid, event.parent});
        if (event.parent != 0 && parent != open.end()) {
          forest.nodes[parent->second].children.push_back(index);
        } else {
          forest.roots.push_back(index);
        }
        open[{event.tid, event.id}] = index;
        stacks[event.tid].push_back(index);
        break;
      }
      case Event::Kind::kEnd: {
        auto it = open.find({event.tid, event.id});
        if (it == open.end()) {
          break;  // end without begin: the ring overwrote the open record
        }
        SpanNode& node = forest.nodes[it->second];
        node.end_ts = event.ts;
        node.dur_ns = event.dur_ns;
        node.plane = event.plane;
        node.closed = true;
        auto& stack = stacks[event.tid];
        // Spans close LIFO per thread; tolerate a missing-end hole by
        // popping through it.
        while (!stack.empty()) {
          size_t top = stack.back();
          stack.pop_back();
          if (top == it->second) {
            break;
          }
        }
        open.erase(it);
        break;
      }
      case Event::Kind::kPlain: {
        auto& stack = stacks[event.tid];
        if (stack.empty()) {
          forest.orphan_events.push_back(event);
        } else {
          forest.nodes[stack.back()].events.push_back(event);
        }
        break;
      }
    }
  }
  return forest;
}

std::string RenderTree(const SpanForest& forest) {
  std::ostringstream os;
  uint32_t current_tid = 0;
  bool first = true;
  for (size_t root : forest.roots) {
    if (first || forest.nodes[root].tid != current_tid) {
      current_tid = forest.nodes[root].tid;
      os << "[tid " << current_tid << "]\n";
      first = false;
    }
    RenderNode(forest, root, 1, os);
  }
  if (!forest.orphan_events.empty()) {
    os << "[unattributed]\n";
    for (const auto& event : forest.orphan_events) {
      os << "  - " << event.name << " " << event.arg0 << " " << event.arg1 << "\n";
    }
  }
  return os.str();
}

std::string RenderLatencySummary(const SpanForest& forest) {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
    uint64_t fast = 0;
    uint64_t slow = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const auto& node : forest.nodes) {
    if (!node.closed) {
      continue;
    }
    Agg& agg = by_name[node.name];
    ++agg.count;
    agg.total_ns += node.dur_ns;
    agg.max_ns = std::max(agg.max_ns, node.dur_ns);
    if (node.plane == "fast") {
      ++agg.fast;
    } else if (node.plane == "slow") {
      ++agg.slow;
    }
  }
  std::ostringstream os;
  for (const auto& [name, agg] : by_name) {
    os << name << " count=" << agg.count << " total_ns=" << agg.total_ns
       << " avg_ns=" << agg.total_ns / agg.count << " max_ns=" << agg.max_ns;
    if (agg.fast + agg.slow > 0) {
      os << " fast=" << agg.fast << " slow=" << agg.slow;
    }
    os << "\n";
  }
  return os.str();
}

std::string RenderContention(const std::vector<Event>& events) {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<uint64_t, Agg> by_class;  // lock class id -> waits
  for (const auto& event : events) {
    if (event.kind != Event::Kind::kPlain || event.name != "sync.lock_wait") {
      continue;
    }
    Agg& agg = by_class[event.arg0];
    ++agg.count;
    agg.total_ns += event.arg1;
    agg.max_ns = std::max(agg.max_ns, event.arg1);
  }
  std::vector<std::pair<uint64_t, Agg>> sorted(by_class.begin(), by_class.end());
  std::stable_sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  std::ostringstream os;
  for (const auto& [cls, agg] : sorted) {
    os << "class=" << cls << " count=" << agg.count << " total_ns=" << agg.total_ns
       << " max_ns=" << agg.max_ns << "\n";
  }
  return os.str();
}

}  // namespace traceview
}  // namespace skern
