// traceview: offline span-tree reconstruction for skern trace streams.
//
// The kernel's tracer emits a flat, time-ordered record stream (SKERN_TRACE
// plain events plus SKERN_SPAN begin/end pairs — src/obs/trace.h). This
// library rebuilds the cross-layer structure from that stream: which VFS
// operation contained which SafeFs handle-plane call contained which buffer
// cache fill, what each level cost, and which locks the operation stalled
// on. It consumes either in-process TraceRecord vectors (tier-1 tests) or
// the text form produced by RenderTraceText / procfs /trace (the CLI).
//
// Reconstruction rules mirror the emitter (src/obs/span.cc):
//   - span ids are unique per thread; (tid, id) keys a span instance;
//   - parent=0 marks a root span; parenting never crosses threads;
//   - a plain event belongs to the innermost span open on its thread at
//     emission time, else it is an orphan;
//   - a begin with no matching end stays in the tree, marked unclosed
//     (flight-recorder dumps routinely truncate mid-operation).
#ifndef SKERN_TOOLS_TRACEVIEW_TRACEVIEW_H_
#define SKERN_TOOLS_TRACEVIEW_TRACEVIEW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"

namespace skern {
namespace traceview {

// One parsed trace line / record, the common input currency.
struct Event {
  enum class Kind { kPlain, kBegin, kEnd };
  Kind kind = Kind::kPlain;
  uint64_t ts = 0;
  uint32_t tid = 0;
  std::string name;     // "subsys.event"
  uint32_t depth = 0;   // spans only
  uint64_t id = 0;      // spans only
  uint64_t parent = 0;  // begin only; 0 = root
  uint64_t dur_ns = 0;  // end only
  std::string plane;    // end only: "", "fast", "slow"
  uint64_t arg0 = 0;    // plain only
  uint64_t arg1 = 0;    // plain only
};

// One reconstructed span with its children and interior plain events.
struct SpanNode {
  std::string name;
  uint32_t tid = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint32_t depth = 0;
  uint64_t start_ts = 0;
  uint64_t end_ts = 0;
  uint64_t dur_ns = 0;
  std::string plane;    // "", "fast", "slow"
  bool closed = false;  // end record seen
  std::vector<size_t> children;  // indices into SpanForest::nodes
  std::vector<Event> events;     // plain events emitted inside this span
};

struct SpanForest {
  std::vector<SpanNode> nodes;
  std::vector<size_t> roots;         // indices of parentless spans
  std::vector<Event> orphan_events;  // plain events outside any span
};

// Converts drained TraceRecords (already (ts, tid)-ordered) to events.
std::vector<Event> FromRecords(const std::vector<obs::TraceRecord>& records);

// Parses RenderTraceText output, one event per line. Unparseable lines
// (e.g. the "session active" / "dropped N" header of procfs /trace) are
// skipped.
std::vector<Event> ParseText(std::string_view text);

// Rebuilds the span forest from a time-ordered event stream.
SpanForest BuildSpans(const std::vector<Event>& events);

// Indented per-thread span tree with durations, planes, and interior events.
std::string RenderTree(const SpanForest& forest);

// Per-span-name latency rollup: count, total/avg/max ns, fast/slow split.
std::string RenderLatencySummary(const SpanForest& forest);

// Lock-contention rollup from "sync.lock_wait" events (class id, wait ns):
// per-class count, total, and max wait, sorted by total descending.
std::string RenderContention(const std::vector<Event>& events);

}  // namespace traceview
}  // namespace skern

#endif  // SKERN_TOOLS_TRACEVIEW_TRACEVIEW_H_
