// traceview self-tests: parsing, span-forest reconstruction, render modes,
// and the cross-layer integration check — a real Vfs::Pread over SafeFs must
// reconstruct to the VFS -> handle-plane -> buffer-cache span chain.
#include "tools/traceview/traceview.h"

#include <gtest/gtest.h>

#include <string>

#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace traceview {
namespace {

TEST(TraceviewParse, PlainSpanAndHeaderLines) {
  const char* text =
      "session stopped\n"
      "dropped 0\n"
      "100 1 vfs.pread B d=1 id=7 parent=0\n"
      "110 1 block.cache_hit 42 0\n"
      "150 1 vfs.pread E d=1 id=7 dur=50 plane=fast\n";
  auto events = ParseText(text);
  ASSERT_EQ(events.size(), 3u);  // both header lines skipped
  EXPECT_EQ(events[0].kind, Event::Kind::kBegin);
  EXPECT_EQ(events[0].name, "vfs.pread");
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].kind, Event::Kind::kPlain);
  EXPECT_EQ(events[1].arg0, 42u);
  EXPECT_EQ(events[2].kind, Event::Kind::kEnd);
  EXPECT_EQ(events[2].dur_ns, 50u);
  EXPECT_EQ(events[2].plane, "fast");
}

TEST(TraceviewBuild, NestsByParentIdAndAttributesEvents) {
  const char* text =
      "100 1 vfs.pread B d=1 id=1 parent=0\n"
      "110 1 safefs.read_at B d=2 id=2 parent=1\n"
      "120 1 block.cache_hit 9 0\n"
      "130 1 safefs.read_at E d=2 id=2 dur=20 plane=fast\n"
      "140 1 vfs.pread E d=1 id=1 dur=40\n";
  auto forest = BuildSpans(ParseText(text));
  ASSERT_EQ(forest.roots.size(), 1u);
  const SpanNode& root = forest.nodes[forest.roots[0]];
  EXPECT_EQ(root.name, "vfs.pread");
  EXPECT_TRUE(root.closed);
  EXPECT_EQ(root.dur_ns, 40u);
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& child = forest.nodes[root.children[0]];
  EXPECT_EQ(child.name, "safefs.read_at");
  EXPECT_EQ(child.plane, "fast");
  ASSERT_EQ(child.events.size(), 1u);  // cache_hit landed inside the leaf
  EXPECT_EQ(child.events[0].name, "block.cache_hit");
  EXPECT_TRUE(root.events.empty());
  EXPECT_TRUE(forest.orphan_events.empty());
}

TEST(TraceviewBuild, ThreadsStayIndependent) {
  // Same span ids on two threads must not cross-link.
  const char* text =
      "100 1 vfs.read B d=1 id=1 parent=0\n"
      "101 2 vfs.write B d=1 id=1 parent=0\n"
      "110 2 vfs.write E d=1 id=1 dur=9\n"
      "120 1 vfs.read E d=1 id=1 dur=20\n";
  auto forest = BuildSpans(ParseText(text));
  ASSERT_EQ(forest.roots.size(), 2u);
  EXPECT_EQ(forest.nodes[forest.roots[0]].tid, 1u);
  EXPECT_EQ(forest.nodes[forest.roots[1]].tid, 2u);
  EXPECT_TRUE(forest.nodes[forest.roots[0]].children.empty());
  EXPECT_TRUE(forest.nodes[forest.roots[1]].children.empty());
}

TEST(TraceviewBuild, UnclosedSpansAndOrphansSurvive) {
  const char* text =
      "90 1 dcache.miss 5 0\n"
      "100 1 vfs.open B d=1 id=3 parent=0\n";
  auto forest = BuildSpans(ParseText(text));
  ASSERT_EQ(forest.roots.size(), 1u);
  EXPECT_FALSE(forest.nodes[forest.roots[0]].closed);
  ASSERT_EQ(forest.orphan_events.size(), 1u);
  EXPECT_EQ(forest.orphan_events[0].name, "dcache.miss");
  std::string tree = RenderTree(forest);
  EXPECT_NE(tree.find("UNCLOSED"), std::string::npos) << tree;
  EXPECT_NE(tree.find("[unattributed]"), std::string::npos) << tree;
}

TEST(TraceviewRender, LatencySummaryAggregatesAcrossPlanes) {
  const char* text =
      "100 1 safefs.read_at B d=1 id=1 parent=0\n"
      "110 1 safefs.read_at E d=1 id=1 dur=10 plane=fast\n"
      "200 1 safefs.read_at B d=1 id=2 parent=0\n"
      "230 1 safefs.read_at E d=1 id=2 dur=30 plane=slow\n";
  auto summary = RenderLatencySummary(BuildSpans(ParseText(text)));
  EXPECT_NE(summary.find("safefs.read_at count=2 total_ns=40 avg_ns=20 max_ns=30 "
                         "fast=1 slow=1"),
            std::string::npos)
      << summary;
}

TEST(TraceviewRender, ContentionSortsByTotalWait) {
  const char* text =
      "100 1 sync.lock_wait 4 500\n"
      "110 1 sync.lock_wait 9 10000\n"
      "120 2 sync.lock_wait 4 700\n";
  auto report = RenderContention(ParseText(text));
  size_t hot = report.find("class=9 count=1 total_ns=10000 max_ns=10000");
  size_t warm = report.find("class=4 count=2 total_ns=1200 max_ns=700");
  ASSERT_NE(hot, std::string::npos) << report;
  ASSERT_NE(warm, std::string::npos) << report;
  EXPECT_LT(hot, warm) << report;
}

// Walks the forest looking for a path root->...->leaf matching `names`.
bool HasChain(const SpanForest& forest, size_t index, const std::vector<std::string>& names,
              size_t at) {
  if (forest.nodes[index].name != names[at]) {
    return false;
  }
  if (at + 1 == names.size()) {
    return true;
  }
  for (size_t child : forest.nodes[index].children) {
    if (HasChain(forest, child, names, at + 1)) {
      return true;
    }
  }
  return false;
}

bool ForestHasChain(const SpanForest& forest, const std::vector<std::string>& names) {
  for (size_t i = 0; i < forest.nodes.size(); ++i) {
    if (HasChain(forest, i, names, 0)) {
      return true;
    }
  }
  return false;
}

TEST(TraceviewIntegration, ReconstructsMultiLayerPreadTree) {
  // The acceptance scenario: Vfs::Pread over SafeFs must reconstruct as
  // vfs.pread -> safefs.read_at -> block.append_from_block once the warm
  // fast path serves reads through the buffer cache. The writer warms the
  // inode's mirrors, so the cold state comes from a fresh mount: its first
  // read is the slow path (block map not yet warmed) and must carry the
  // slow-plane tag; the second is the fast path that traverses the cache.
  RamDisk disk(256, 21);
  {
    Vfs writer_vfs;
    ASSERT_TRUE(writer_vfs.Mount("/", SafeFs::Format(disk, 64, 16).value()).ok());
    auto wfd = writer_vfs.Open("/spanfile", kOpenRead | kOpenWrite | kOpenCreate);
    ASSERT_TRUE(wfd.ok());
    Bytes data(2 * kBlockSize, 0x5a);
    ASSERT_TRUE(writer_vfs.Pwrite(*wfd, 0, ByteView(data)).ok());
    ASSERT_TRUE(writer_vfs.Fsync(*wfd).ok());
    ASSERT_TRUE(writer_vfs.Close(*wfd).ok());
  }
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", SafeFs::Mount(disk).value()).ok());
  auto fd = vfs.Open("/spanfile", kOpenRead);
  ASSERT_TRUE(fd.ok());

  auto& session = obs::TraceSession::Get();
  session.ResetForTesting();
  session.Start();
  auto cold = vfs.Pread(*fd, 0, kBlockSize);
  auto warm = vfs.Pread(*fd, 0, kBlockSize);
  session.Stop();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->size(), kBlockSize);
  ASSERT_TRUE(vfs.Close(*fd).ok());

  // Exercise both input paths: raw records and the rendered text round-trip.
  auto records = session.Drain();
  session.ResetForTesting();
  ASSERT_FALSE(records.empty());
  auto from_records = BuildSpans(FromRecords(records));
  auto from_text = BuildSpans(ParseText(obs::RenderTraceText(records)));

  const std::vector<std::string> chain = {"vfs.pread", "safefs.read_at",
                                          "block.append_from_block"};
  EXPECT_TRUE(ForestHasChain(from_records, chain)) << RenderTree(from_records);
  EXPECT_TRUE(ForestHasChain(from_text, chain)) << RenderTree(from_text);

  // Plane attribution: the cold read fell back to the slow path, the warm
  // one was served fast.
  bool saw_slow_read_at = false;
  bool saw_fast_read_at = false;
  for (const auto& node : from_records.nodes) {
    if (node.name == "safefs.read_at" && node.closed) {
      saw_slow_read_at = saw_slow_read_at || node.plane == "slow";
      saw_fast_read_at = saw_fast_read_at || node.plane == "fast";
    }
  }
  EXPECT_TRUE(saw_slow_read_at) << RenderTree(from_records);
  EXPECT_TRUE(saw_fast_read_at) << RenderTree(from_records);

  auto summary = RenderLatencySummary(from_records);
  EXPECT_NE(summary.find("vfs.pread count=2"), std::string::npos) << summary;
}

}  // namespace
}  // namespace traceview
}  // namespace skern
